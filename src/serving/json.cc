#include "serving/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace serenade {

// --- JsonValue ---------------------------------------------------------------

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::Null() { return JsonValue(); }
JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}
JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}
JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}
JsonValue JsonValue::Array(std::vector<JsonValue> values) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(values);
  return v;
}
JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

// --- parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    SERENADE_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::Corruption("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status ParseValue(JsonValue* out) {
    if (depth_ > kMaxDepth) {
      return Status::Corruption("nesting too deep");
    }
    if (pos_ >= text_.size()) return Status::Corruption("unexpected end");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        SERENADE_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::Ok();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* literal, JsonValue value, JsonValue* out) {
    const size_t length = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, length, literal) != 0) {
      return Status::Corruption("bad literal");
    }
    pos_ += length;
    *out = std::move(value);
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (start == pos_) return Status::Corruption("expected number");
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc()) return Status::Corruption("bad number");
    *out = JsonValue::Number(value);
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::Corruption("bad \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Status::Corruption("bad hex digit");
          }
          // Encode as UTF-8 (basic multilingual plane only).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Status::Corruption("bad escape");
      }
    }
    return Status::Corruption("unterminated string");
  }

  Status ParseArray(JsonValue* out) {
    ++depth_;
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};
    ++pos_;  // '['
    std::vector<JsonValue> values;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::Array(std::move(values));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      SERENADE_RETURN_IF_ERROR(ParseValue(&value));
      values.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Status::Corruption("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::Array(std::move(values));
        return Status::Ok();
      }
      return Status::Corruption("expected , or ] in array");
    }
  }

  Status ParseObject(JsonValue* out) {
    ++depth_;
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::Object(std::move(members));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::Corruption("expected object key");
      }
      std::string key;
      SERENADE_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::Corruption("expected :");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      SERENADE_RETURN_IF_ERROR(ParseValue(&value));
      members.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Status::Corruption("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::Object(std::move(members));
        return Status::Ok();
      }
      return Status::Corruption("expected , or } in object");
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

// --- writer ------------------------------------------------------------------

void JsonWriter::MaybeComma() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = false;
}

void JsonWriter::AppendEscaped(const std::string& value) {
  out_.push_back('"');
  for (char c : value) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\b': out_ += "\\b"; break;
      case '\f': out_ += "\\f"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  return *this;
}
JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  return *this;
}
JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::Key(const std::string& key) {
  MaybeComma();
  AppendEscaped(key);
  out_.push_back(':');
  need_comma_ = false;
  return *this;
}
JsonWriter& JsonWriter::Value(const std::string& value) {
  MaybeComma();
  AppendEscaped(value);
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string(value));
}
JsonWriter& JsonWriter::Value(double value) {
  MaybeComma();
  // to_chars is specified to match printf "%.6g" output (minus locale),
  // and skips the locale machinery — scores dominate response bytes, so
  // this is on the serving hot path.
  char buf[32];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof(buf), value, std::chars_format::general, 6);
  if (ec == std::errc()) {
    out_.append(buf, end);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out_ += buf;
  }
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::Value(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::Value(uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::Value(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::Raw(const std::string& json) {
  MaybeComma();
  out_ += json;
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

namespace {

void WriteValue(const JsonValue& value, JsonWriter& writer) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      writer.Null();
      break;
    case JsonValue::Type::kBool:
      writer.Value(value.AsBool());
      break;
    case JsonValue::Type::kNumber: {
      // Integral values round-trip through the integer path: %.6g would
      // truncate ids above six significant digits.
      const double number = value.AsNumber();
      if (number == std::floor(number) && std::abs(number) < 9.0e18) {
        writer.Value(static_cast<int64_t>(number));
      } else {
        writer.Value(number);
      }
      break;
    }
    case JsonValue::Type::kString:
      writer.Value(value.AsString());
      break;
    case JsonValue::Type::kArray:
      writer.BeginArray();
      for (const JsonValue& element : value.AsArray()) {
        WriteValue(element, writer);
      }
      writer.EndArray();
      break;
    case JsonValue::Type::kObject:
      writer.BeginObject();
      for (const auto& [key, member] : value.AsObject()) {
        writer.Key(key);
        WriteValue(member, writer);
      }
      writer.EndObject();
      break;
  }
}

}  // namespace

std::string SerializeJson(const JsonValue& value) {
  JsonWriter writer;
  WriteValue(value, writer);
  return writer.str();
}

}  // namespace serenade
