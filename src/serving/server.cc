#include "serving/server.h"

#include <charconv>
#include <chrono>

#include "common/stopwatch.h"
#include "core/knn_kernels.h"
#include "index/index_format.h"
#include "serving/json.h"

namespace serenade {

namespace {

// Whole seconds between the freshness watermark (the newest click folded
// into the servable index) and now; 0 until the first delta lands.
uint64_t FreshnessSeconds(uint64_t watermark_unix_ms) {
  if (watermark_unix_ms == 0) return 0;
  const uint64_t now = NowUnixMs();
  return now > watermark_unix_ms ? (now - watermark_unix_ms) / 1000 : 0;
}

// Pod-side stages exported as serenade_stage_duration_microseconds
// labels. kForward is gateway-only and deliberately absent.
constexpr TraceStage kPodStages[] = {
    TraceStage::kParse,       TraceStage::kStoreGet,
    TraceStage::kStorePut,    TraceStage::kSnapshotPin,
    TraceStage::kKnnRetrieve, TraceStage::kRank,
    TraceStage::kSerialize,   TraceStage::kQueueWait,
};

// {"items":[...],"scores":[...]} — the single-recommend success body and
// the per-slot success entry of a batch response.
void WriteRecommendation(const std::vector<ScoredItem>& items,
                         JsonWriter& writer) {
  writer.BeginObject().Key("items").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<uint64_t>(rec.item));
  }
  writer.EndArray().Key("scores").BeginArray();
  for (const ScoredItem& rec : items) {
    writer.Value(static_cast<double>(rec.score));
  }
  writer.EndArray().EndObject();
}

// Decodes one JSON recommend request ({"session_id","item_id","consent"})
// — the POST /v1/recommend body and each /v1/recommend:batch entry.
StatusOr<RecommendRequest> ParseRecommendEntry(const JsonValue& entry) {
  if (entry.type() != JsonValue::Type::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  RecommendRequest request;
  const JsonValue* session = entry.Find("session_id");
  if (session == nullptr || session->type() != JsonValue::Type::kString ||
      session->AsString().empty()) {
    return Status::InvalidArgument("session_id is required");
  }
  request.session_key = session->AsString();
  const JsonValue* item = entry.Find("item_id");
  if (item == nullptr || item->type() != JsonValue::Type::kNumber ||
      item->AsNumber() < 0 || item->AsNumber() > 4294967295.0 ||
      item->AsNumber() != static_cast<double>(item->AsInt())) {
    return Status::InvalidArgument("item_id must be an unsigned integer");
  }
  request.item = static_cast<ItemId>(item->AsInt());
  if (const JsonValue* consent = entry.Find("consent");
      consent != nullptr && consent->type() == JsonValue::Type::kBool) {
    request.consent = consent->AsBool();
  }
  if (const JsonValue* engine = entry.Find("engine"); engine != nullptr) {
    if (engine->type() != JsonValue::Type::kString) {
      return Status::InvalidArgument("engine must be \"vmis\" or \"ann\"");
    }
    const auto kind = ParseEngineKind(engine->AsString());
    if (!kind.has_value()) {
      return Status::InvalidArgument("unknown engine '" + engine->AsString() +
                                     "' (expected \"vmis\" or \"ann\")");
    }
    request.engine = *kind;
  }
  return request;
}

}  // namespace

SerenadeServer::SerenadeServer(std::unique_ptr<SerenadeService> service,
                               ServerConfig config)
    : service_(std::move(service)),
      config_(config),
      slow_logger_(config.trace) {
  executor_ = std::make_unique<BatchExecutor>(service_.get(), config_.batch,
                                              &registry_);
  RegisterMetrics();
  BuildRoutes();
}

SerenadeServer::~SerenadeServer() { Stop(); }

void SerenadeServer::RegisterMetrics() {
  registry_.AddCallback(
      "serenade_requests_total", "HTTP requests served", MetricType::kCounter,
      "", [this]() -> std::vector<MetricSample> {
        return {{"", requests_served()}};
      });
  registry_.AddCallback(
      "serenade_http_deprecated_requests_total",
      "requests served via deprecated unversioned path aliases",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", router_.deprecated_requests()}};
      });
  registry_.AddCallback(
      "serenade_store_reads_total", "session store reads",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->StoreStats().reads}};
      });
  registry_.AddCallback(
      "serenade_store_writes_total", "session store writes",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->StoreStats().writes}};
      });
  registry_.AddCallback(
      "serenade_store_expirations_total", "sessions expired by TTL",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->StoreStats().expirations}};
      });
  registry_.AddCallback(
      "serenade_live_sessions", "evolving sessions currently stored",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->StoreStats().live_entries}};
      });
  registry_.AddCallback(
      "serenade_index_sessions", "historical sessions in the index",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->CurrentSnapshot()->index().num_sessions()}};
      });
  registry_.AddCallback(
      "serenade_index_version", "published index snapshot version",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->CurrentSnapshot()->version()}};
      });
  registry_.AddCallback(
      "serenade_index_reloads_total", "successful index hot swaps",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->index_manager().reloads_total()}};
      });
  registry_.AddCallback(
      "serenade_index_reload_failures_total",
      "rejected index reload attempts", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", service_->index_manager().reload_failures_total()}};
      });
  registry_.AddCallback(
      "serenade_index_deltas_applied_total",
      "freshness deltas layered over the base snapshot",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->index_manager().deltas_applied_total()}};
      });
  registry_.AddCallback(
      "serenade_index_delta_rejects_total",
      "freshness deltas rejected (lineage or CRC mismatch)",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->index_manager().delta_rejects_total()}};
      });
  registry_.AddCallback(
      "serenade_index_applied_delta_version",
      "version of the last applied freshness delta (0 = base only)",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->index_manager().applied_delta_version()}};
      });
  registry_.AddCallback(
      "serenade_index_freshness_seconds",
      "age of the newest click servable from the index (0 until the "
      "first delta lands)",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", FreshnessSeconds(
                         service_->index_manager()
                             .freshness_watermark_unix_ms())}};
      });
  registry_.AddCallback(
      "serenade_shed_responses_total",
      "requests shed with 429 + Retry-After under overload",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", shed_responses_.load(std::memory_order_relaxed)}};
      });
  registry_.AddCallback(
      "serenade_recommender_pool_size", "idle pooled recommenders",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->PooledRecommenders()}};
      });
  registry_.AddCallback(
      "serenade_slow_requests_total",
      "requests over the slow-request threshold", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", slow_logger_.slow_requests_seen()}};
      });

  // Reactor counters: http_ is rebuilt per Start(), so the callbacks read
  // through the pointer and answer 0 before the first Start().
  registry_.AddCallback(
      "serenade_open_connections", "currently open HTTP connections",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", http_ ? http_->stats().open_connections : 0}};
      });
  registry_.AddCallback(
      "serenade_accepted_connections_total", "HTTP connections admitted",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", http_ ? http_->stats().accepted : 0}};
      });
  registry_.AddCallback(
      "serenade_shed_connections_total",
      "connections refused with 503 + Retry-After at the connection cap",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", http_ ? http_->stats().shed : 0}};
      });
  registry_.AddCallback(
      "serenade_reactor_loop_iterations_total", "event-loop wakeups",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", http_ ? http_->stats().loop_iterations : 0}};
      });
  registry_.AddCallback(
      "serenade_connection_timeouts_total",
      "connections closed by the timer wheel", MetricType::kCounter, "kind",
      [this]() -> std::vector<MetricSample> {
        const HttpServerStats stats =
            http_ ? http_->stats() : HttpServerStats{};
        return {{"idle", stats.idle_timeouts},
                {"deadline", stats.deadline_timeouts}};
      });
  reactor_loop_lag_micros_ = &registry_.AddHistogram(
      "serenade_reactor_loop_lag_microseconds",
      "time the event loop spent processing one epoll batch");

  recommend_latency_micros_ = &registry_.AddHistogram(
      "serenade_recommend_latency_microseconds",
      "/recommend handling latency");

  // Second retrieval family: per-arm traffic/latency plus the embedding
  // snapshot lifecycle (all read 0 / stay empty on pods without an ANN
  // arm, so the exposition shape is uniform across the fleet).
  registry_.AddCallback(
      "serenade_engine_requests_total",
      "recommend requests served, by resolved retrieval engine",
      MetricType::kCounter, "engine",
      [this]() -> std::vector<MetricSample> {
        return {{"vmis", engine_requests_[0].load(std::memory_order_relaxed)},
                {"ann", engine_requests_[1].load(std::memory_order_relaxed)}};
      });
  registry_.AddCallback(
      "serenade_ann_requests_total",
      "requests that asked for the ANN engine", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", service_->ann_requests_total()}};
      });
  registry_.AddCallback(
      "serenade_ann_fallbacks_total",
      "ANN requests degraded to VMIS (no embedding snapshot attached)",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->ann_fallbacks_total()}};
      });
  registry_.AddCallback(
      "serenade_embedding_version",
      "published embedding snapshot version (0 = no ANN arm)",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        const auto& manager = service_->embedding_manager();
        return {{"", manager ? manager->current_version() : 0}};
      });
  registry_.AddCallback(
      "serenade_embedding_reloads_total", "successful embedding hot swaps",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        const auto& manager = service_->embedding_manager();
        return {{"", manager ? manager->reloads_total() : 0}};
      });
  registry_.AddCallback(
      "serenade_embedding_reload_failures_total",
      "rejected embedding reload attempts", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        const auto& manager = service_->embedding_manager();
        return {{"", manager ? manager->reload_failures_total() : 0}};
      });
  engine_latency_micros_[0] = &registry_.AddHistogram(
      "serenade_engine_latency_microseconds",
      "single-recommend execution latency by resolved retrieval engine",
      "engine", "vmis");
  engine_latency_micros_[1] = &registry_.AddHistogram(
      "serenade_engine_latency_microseconds",
      "single-recommend execution latency by resolved retrieval engine",
      "engine", "ann");
  click_to_servable_ms_ = &registry_.AddHistogram(
      "serenade_click_to_servable_milliseconds",
      "end-to-end freshness: click observation to servable overlay");
  for (TraceStage stage : kPodStages) {
    stage_micros_[static_cast<size_t>(stage)] = &registry_.AddHistogram(
        "serenade_stage_duration_microseconds",
        "per-request latency attributed to one serving stage", "stage",
        TraceStageName(stage));
  }
}

void SerenadeServer::BuildRoutes() {
  router_.Handle("GET", "/v1/recommend",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleRecommendGet(request, trace);
                 });
  router_.Handle("POST", "/v1/recommend",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleRecommendPost(request, trace);
                 });
  router_.Handle("POST", "/v1/recommend:batch",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleRecommendBatch(request, trace);
                 });
  router_.Handle("GET", "/v1/healthz",
                 [this](const HttpRequest&, Trace*) { return HandleHealthz(); });
  router_.Handle("GET", "/v1/stats",
                 [this](const HttpRequest&, Trace*) { return HandleStats(); });
  router_.Handle("GET", "/v1/metrics",
                 [this](const HttpRequest&, Trace*) {
                   return HttpResponse::Text(registry_.RenderPrometheus(),
                                             MetricsRegistry::ContentType());
                 });
  // Admin endpoints live under the uniform /v1/admin/<subsystem>/<verb>
  // namespace (replication registers /v1/admin/replication/* and
  // /v1/admin/sessions/* on this same router).
  router_.Handle("POST", "/v1/admin/index/reload",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleAdminReload(request, trace);
                 });
  router_.Handle("POST", "/v1/admin/index/delta",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleAdminDelta(request, trace);
                 });
  router_.Handle("POST", "/v1/admin/embeddings/reload",
                 [this](const HttpRequest& request, Trace* trace) {
                   return HandleAdminEmbeddingsReload(request, trace);
                 });

  // Pre-/v1 paths and the pre-namespace admin spellings: same handlers
  // (byte-identical bodies), marked deprecated on the way out.
  router_.Alias("/recommend", "/v1/recommend");
  router_.Alias("/healthz", "/v1/healthz");
  router_.Alias("/stats", "/v1/stats");
  router_.Alias("/metrics", "/v1/metrics");
  router_.Alias("/v1/admin/reload", "/v1/admin/index/reload");
  router_.Alias("/admin/reload", "/v1/admin/index/reload");
  router_.Alias("/v1/admin/delta", "/v1/admin/index/delta");
}

Status SerenadeServer::Start() {
  SERENADE_RETURN_IF_ERROR(executor_->Start());
  HttpServerOptions http_options = config_.http;
  http_options.retry_after_seconds =
      static_cast<int>(config_.retry_after_seconds);
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); },
      http_options);
  http_->set_loop_lag_histogram(reactor_loop_lag_micros_);
  SERENADE_RETURN_IF_ERROR(http_->Start(config_.port));
  if (config_.janitor_interval_ms > 0) {
    stopping_.store(false);
    janitor_ = std::thread([this] {
      while (!stopping_.load()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config_.janitor_interval_ms));
        if (stopping_.load()) break;
        service_->SweepExpiredSessions();
      }
    });
  }
  return Status::Ok();
}

void SerenadeServer::Stop() {
  stopping_.store(true);
  if (janitor_.joinable()) janitor_.join();
  if (http_) http_->Stop();
  // After the listener: accepted requests drain through the executor.
  if (executor_) executor_->Stop();
}

void SerenadeServer::RecordStageMetrics(const Trace& trace) {
  for (TraceStage stage : kPodStages) {
    if (trace.StageCount(stage) == 0) continue;
    stage_micros_[static_cast<size_t>(stage)]->Record(
        trace.StageMicros(stage));
  }
}

HttpResponse SerenadeServer::Handle(const HttpRequest& request) {
  // Adopt the gateway's trace id when one arrived; mint one otherwise.
  const std::string inbound = request.Header(kTraceIdHeader);
  Trace trace = IsValidTraceId(inbound) ? Trace(inbound) : Trace();
  trace.Record(TraceStage::kParse, request.parse_micros);

  HttpResponse response = router_.Dispatch(request, &trace);
  response.headers[kTraceIdHeader] = trace.id();

  // Load-shed contract (S1): every 429 leaving the pod tells clients how
  // long to back off, and counts into serenade_shed_responses_total.
  if (response.status == 429) {
    response.headers["Retry-After"] =
        std::to_string(config_.retry_after_seconds);
    shed_responses_.fetch_add(1, std::memory_order_relaxed);
  }

  // Request-level latency metrics cover the recommend routes only, so
  // metrics scrapes and health probes don't dilute the histograms.
  const std::string& canonical = router_.CanonicalPath(request.path);
  if (canonical == "/v1/recommend" || canonical == "/v1/recommend:batch") {
    recommend_latency_micros_->Record(trace.TotalMicros());
    RecordStageMetrics(trace);
    slow_logger_.MaybeLog(trace, "pod", request.path, response.status);
  }
  return response;
}

HttpResponse SerenadeServer::RunRecommend(const RecommendRequest& request,
                                          Trace* trace) {
  bool admitted = false;
  if (write_hooks_.divert) {
    if (auto diverted =
            write_hooks_.divert(request.session_key, false, std::string())) {
      diverted->headers[kTraceIdHeader] = trace->id();
      return std::move(*diverted);
    }
    admitted = true;
  }
  // The engine that will actually serve: ann only when embeddings are
  // attached, else the vmis fallback (the service counts the fallback).
  const EngineKind resolved =
      request.engine == EngineKind::kAnn && service_->ann_available()
          ? EngineKind::kAnn
          : EngineKind::kVmis;
  const size_t arm = resolved == EngineKind::kAnn ? 1 : 0;
  Stopwatch engine_watch;
  auto result = executor_->Execute(request, trace);
  if (admitted && write_hooks_.done) write_hooks_.done(request.session_key);
  if (!result.ok()) {
    return ApiError(HttpStatusForStatus(result.status()),
                    result.status().message(), trace->id());
  }
  engine_requests_[arm].fetch_add(1, std::memory_order_relaxed);
  if (engine_latency_micros_[arm] != nullptr) {
    engine_latency_micros_[arm]->Record(engine_watch.ElapsedMicros());
  }
  // Accepted click: feed the freshness tap (the builder turns it into a
  // servable overlay delta).
  if (click_observer_) click_observer_(request.session_key, request.item);
  Span serialize_span(trace, TraceStage::kSerialize);
  JsonWriter writer;
  WriteRecommendation(*result, writer);
  HttpResponse response = HttpResponse::Json(writer.str());
  response.headers[kEngineHeader] = EngineName(resolved);
  return response;
}

HttpResponse SerenadeServer::HandleRecommendGet(const HttpRequest& request,
                                                Trace* trace) {
  const std::string session_key = request.Param("session_id");
  const std::string item_text = request.Param("item_id");
  if (session_key.empty() || item_text.empty()) {
    return ApiError(400, "session_id and item_id are required", trace->id());
  }
  uint32_t item = 0;
  const auto parsed = std::from_chars(
      item_text.data(), item_text.data() + item_text.size(), item);
  if (parsed.ec != std::errc() ||
      parsed.ptr != item_text.data() + item_text.size()) {
    return ApiError(400, "item_id must be an unsigned integer", trace->id());
  }
  const bool consent = request.Param("consent", "true") != "false";
  const auto engine = ParseEngineKind(request.Param("engine"));
  if (!engine.has_value()) {
    return ApiError(400,
                    "unknown engine '" + request.Param("engine") +
                        "' (expected \"vmis\" or \"ann\")",
                    trace->id());
  }
  return RunRecommend(RecommendRequest{session_key, item, consent, *engine},
                      trace);
}

HttpResponse SerenadeServer::HandleRecommendPost(const HttpRequest& request,
                                                 Trace* trace) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "malformed JSON body: " + doc.status().message(),
                    trace->id());
  }
  auto parsed = ParseRecommendEntry(*doc);
  if (!parsed.ok()) {
    return ApiError(400, parsed.status().message(), trace->id());
  }
  return RunRecommend(*parsed, trace);
}

HttpResponse SerenadeServer::HandleRecommendBatch(const HttpRequest& request,
                                                  Trace* trace) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "malformed JSON body: " + doc.status().message(),
                    trace->id());
  }
  const JsonValue* entries = doc->Find("requests");
  if (entries == nullptr || entries->type() != JsonValue::Type::kArray) {
    return ApiError(400, "body must carry a \"requests\" array", trace->id());
  }
  const std::vector<JsonValue>& slots = entries->AsArray();
  if (slots.size() > config_.max_batch_items) {
    return ApiError(413,
                    "batch of " + std::to_string(slots.size()) +
                        " exceeds the limit of " +
                        std::to_string(config_.max_batch_items),
                    trace->id());
  }

  // Partial-failure semantics: a slot that fails to parse gets an error
  // entry; the remaining slots still execute as one batch.
  std::vector<BatchExecutor::Result> results(
      slots.size(), Status::Internal("batch slot not filled"));
  // Slots whose key range is mid-hand-off are proxied to the new owner by
  // the replication write hook; their raw result bodies bypass `results`.
  std::vector<std::string> raw_slots(slots.size());
  std::vector<RecommendRequest> requests;
  std::vector<size_t> request_slots;
  requests.reserve(slots.size());
  request_slots.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    auto parsed = ParseRecommendEntry(slots[i]);
    if (!parsed.ok()) {
      results[i] = parsed.status();
      continue;
    }
    if (write_hooks_.divert) {
      if (auto diverted = write_hooks_.divert(parsed->session_key, true,
                                              SerializeJson(slots[i]))) {
        // A 200 body is a single-recommend result — exactly a slot entry;
        // any error body is already the shared envelope a slot carries.
        raw_slots[i] = diverted->body;
        continue;
      }
    }
    requests.push_back(std::move(parsed).value());
    request_slots.push_back(i);
  }
  std::vector<BatchExecutor::Result> executed =
      executor_->ExecuteBatch(requests);
  if (write_hooks_.divert && write_hooks_.done) {
    for (const RecommendRequest& request : requests) {
      write_hooks_.done(request.session_key);
    }
  }
  for (size_t j = 0; j < executed.size(); ++j) {
    if (executed[j].ok() && j < requests.size()) {
      if (click_observer_) {
        click_observer_(requests[j].session_key, requests[j].item);
      }
      const bool ann = requests[j].engine == EngineKind::kAnn &&
                       service_->ann_available();
      engine_requests_[ann ? 1 : 0].fetch_add(1, std::memory_order_relaxed);
    }
    results[request_slots[j]] = std::move(executed[j]);
  }

  Span serialize_span(trace, TraceStage::kSerialize);
  JsonWriter writer;
  writer.BeginObject().Key("results").BeginArray();
  for (size_t i = 0; i < results.size(); ++i) {
    const BatchExecutor::Result& result = results[i];
    if (!raw_slots[i].empty()) {
      writer.Raw(raw_slots[i]);
    } else if (result.ok()) {
      WriteRecommendation(*result, writer);
    } else {
      writer.BeginObject().Key("error").BeginObject();
      writer.Key("code").Value(
          ApiErrorCode(HttpStatusForStatus(result.status())));
      writer.Key("message").Value(result.status().message());
      writer.Key("trace_id").Value(trace->id());
      writer.EndObject().EndObject();
    }
  }
  writer.EndArray().EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse SerenadeServer::HandleHealthz() {
  IndexManager& manager = service_->index_manager();
  JsonWriter writer;
  writer.BeginObject()
      .Key("status")
      .Value("ok")
      .Key("index_version")
      .Value(manager.current_version())
      .Key("applied_delta_version")
      .Value(manager.applied_delta_version())
      .Key("index_freshness_seconds")
      .Value(FreshnessSeconds(manager.freshness_watermark_unix_ms()))
      .Key("ann_ready")
      .Value(service_->ann_available())
      .Key("embedding_version")
      .Value(service_->embedding_manager()
                 ? service_->embedding_manager()->current_version()
                 : 0);
  for (const auto& extra : healthz_extras_) extra(writer);
  writer.EndObject();
  return HttpResponse::Json(writer.str());
}

Status SerenadeServer::ApplyDelta(const IndexDelta& delta) {
  IndexManager::DeltaApplyInfo info;
  const Status applied = service_->ApplyDelta(delta, &info);
  if (applied.code() == StatusCode::kAlreadyExists) return Status::Ok();
  SERENADE_RETURN_IF_ERROR(applied);
  const uint64_t now = NowUnixMs();
  for (uint64_t observed : info.observed_unix_ms) {
    click_to_servable_ms_->Record(now > observed ? now - observed : 0);
  }
  return Status::Ok();
}

HttpResponse SerenadeServer::HandleAdminDelta(const HttpRequest& request,
                                              Trace* trace) {
  auto delta = DeserializeDelta(request.body);
  if (!delta.ok()) {
    return ApiError(HttpStatusForStatus(delta.status()),
                    delta.status().ToString(), trace->id());
  }
  const Status applied = ApplyDelta(*delta);
  if (!applied.ok()) {
    // Lineage / CRC mismatches reject without touching the published
    // snapshot; tell the shipper why.
    return ApiError(HttpStatusForStatus(applied), applied.ToString(),
                    trace->id());
  }
  IndexManager& manager = service_->index_manager();
  JsonWriter writer;
  writer.BeginObject()
      .Key("status")
      .Value("ok")
      .Key("index_version")
      .Value(manager.current_version())
      .Key("applied_delta_version")
      .Value(manager.applied_delta_version())
      .Key("base_version")
      .Value(manager.base_version())
      .EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse SerenadeServer::HandleAdminReload(const HttpRequest& request,
                                               Trace* trace) {
  const std::string path = request.Param("path");
  const Status reloaded = service_->ReloadIndex(path);
  if (!reloaded.ok()) {
    // The previous snapshot stays published; tell the operator why the
    // rollout was rejected.
    return ApiError(HttpStatusForStatus(reloaded), reloaded.ToString(),
                    trace->id());
  }
  const auto snapshot = service_->CurrentSnapshot();
  JsonWriter writer;
  writer.BeginObject()
      .Key("status")
      .Value("ok")
      .Key("index_version")
      .Value(snapshot->version())
      .Key("index_source")
      .Value(snapshot->manifest().source)
      .Key("index_sessions")
      .Value(static_cast<uint64_t>(snapshot->index().num_sessions()))
      .EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse SerenadeServer::HandleAdminEmbeddingsReload(
    const HttpRequest& request, Trace* trace) {
  const std::string path = request.Param("path");
  const Status reloaded = service_->ReloadEmbeddings(path);
  if (!reloaded.ok()) {
    // The previous embedding snapshot (if any) stays published.
    return ApiError(HttpStatusForStatus(reloaded), reloaded.ToString(),
                    trace->id());
  }
  const auto snapshot = service_->embedding_manager()->Current();
  JsonWriter writer;
  writer.BeginObject()
      .Key("status")
      .Value("ok")
      .Key("embedding_version")
      .Value(snapshot->version())
      .Key("embedding_source")
      .Value(snapshot->manifest().source)
      .Key("embedding_items")
      .Value(static_cast<uint64_t>(snapshot->embeddings().num_items))
      .Key("embedding_dim")
      .Value(static_cast<uint64_t>(snapshot->embeddings().dim))
      .EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse SerenadeServer::HandleStats() {
  const SessionStoreStats stats = service_->StoreStats();
  const auto snapshot = service_->CurrentSnapshot();
  IndexManager& manager = service_->index_manager();
  JsonWriter writer;
  writer.BeginObject()
      .Key("requests_served")
      .Value(requests_served())
      .Key("store_reads")
      .Value(stats.reads)
      .Key("store_writes")
      .Value(stats.writes)
      .Key("store_expirations")
      .Value(stats.expirations)
      .Key("live_sessions")
      .Value(stats.live_entries)
      .Key("index_version")
      .Value(snapshot->version())
      .Key("index_source")
      .Value(snapshot->manifest().source)
      .Key("index_build_id")
      .Value(snapshot->manifest().build_id)
      .Key("index_reloads")
      .Value(manager.reloads_total())
      .Key("index_reload_failures")
      .Value(manager.reload_failures_total())
      .Key("index_base_version")
      .Value(manager.base_version())
      .Key("applied_delta_version")
      .Value(manager.applied_delta_version())
      .Key("index_deltas_applied")
      .Value(manager.deltas_applied_total())
      .Key("index_delta_rejects")
      .Value(manager.delta_rejects_total())
      .Key("index_freshness_seconds")
      .Value(FreshnessSeconds(manager.freshness_watermark_unix_ms()))
      .Key("shed_responses")
      .Value(shed_responses_.load(std::memory_order_relaxed))
      .Key("open_connections")
      .Value(http_ ? http_->stats().open_connections : 0)
      .Key("shed_connections")
      .Value(http_ ? http_->stats().shed : 0)
      .Key("index_sessions")
      .Value(static_cast<uint64_t>(snapshot->index().num_sessions()))
      .Key("index_items")
      .Value(static_cast<uint64_t>(snapshot->index().num_items()))
      .Key("recommender_pool_size")
      .Value(static_cast<uint64_t>(service_->PooledRecommenders()))
      .Key("batches_executed")
      .Value(executor_->batches_executed())
      .Key("batched_requests")
      .Value(executor_->requests_executed())
      .Key("batch_rejected")
      .Value(executor_->requests_rejected())
      .Key("slow_requests")
      .Value(slow_logger_.slow_requests_seen())
      .Key("ann_ready")
      .Value(service_->ann_available())
      .Key("embedding_version")
      .Value(service_->embedding_manager()
                 ? service_->embedding_manager()->current_version()
                 : 0)
      .Key("embedding_reloads")
      .Value(service_->embedding_manager()
                 ? service_->embedding_manager()->reloads_total()
                 : 0)
      .Key("embedding_reload_failures")
      .Value(service_->embedding_manager()
                 ? service_->embedding_manager()->reload_failures_total()
                 : 0)
      .Key("ann_requests")
      .Value(service_->ann_requests_total())
      .Key("ann_fallbacks")
      .Value(service_->ann_fallbacks_total())
      .Key("engine_requests_vmis")
      .Value(engine_requests_[0].load(std::memory_order_relaxed))
      .Key("engine_requests_ann")
      .Value(engine_requests_[1].load(std::memory_order_relaxed))
      .Key("simd_level")
      .Value(simd::LevelName(simd::ActiveLevel()));
  for (const auto& extra : stats_extras_) extra(writer);
  writer.EndObject();
  return HttpResponse::Json(writer.str());
}

}  // namespace serenade
