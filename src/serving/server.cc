#include "serving/server.h"

#include <charconv>
#include <chrono>

#include "serving/json.h"

namespace serenade {

namespace {

// Pod-side stages exported as serenade_stage_duration_microseconds
// labels. kForward is gateway-only and deliberately absent.
constexpr TraceStage kPodStages[] = {
    TraceStage::kParse,       TraceStage::kStoreGet,
    TraceStage::kStorePut,    TraceStage::kSnapshotPin,
    TraceStage::kKnnRetrieve, TraceStage::kRank,
    TraceStage::kSerialize,
};

}  // namespace

SerenadeServer::SerenadeServer(std::unique_ptr<SerenadeService> service,
                               ServerConfig config)
    : service_(std::move(service)),
      config_(config),
      slow_logger_(config.trace) {
  RegisterMetrics();
}

SerenadeServer::~SerenadeServer() { Stop(); }

void SerenadeServer::RegisterMetrics() {
  registry_.AddCallback(
      "serenade_requests_total", "HTTP requests served", MetricType::kCounter,
      "", [this]() -> std::vector<MetricSample> {
        return {{"", requests_served()}};
      });
  registry_.AddCallback(
      "serenade_store_reads_total", "session store reads",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->StoreStats().reads}};
      });
  registry_.AddCallback(
      "serenade_store_writes_total", "session store writes",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->StoreStats().writes}};
      });
  registry_.AddCallback(
      "serenade_store_expirations_total", "sessions expired by TTL",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->StoreStats().expirations}};
      });
  registry_.AddCallback(
      "serenade_live_sessions", "evolving sessions currently stored",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->StoreStats().live_entries}};
      });
  registry_.AddCallback(
      "serenade_index_sessions", "historical sessions in the index",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->CurrentSnapshot()->index().num_sessions()}};
      });
  registry_.AddCallback(
      "serenade_index_version", "published index snapshot version",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->CurrentSnapshot()->version()}};
      });
  registry_.AddCallback(
      "serenade_index_reloads_total", "successful index hot swaps",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->index_manager().reloads_total()}};
      });
  registry_.AddCallback(
      "serenade_index_reload_failures_total",
      "rejected index reload attempts", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", service_->index_manager().reload_failures_total()}};
      });
  registry_.AddCallback(
      "serenade_recommender_pool_size", "idle pooled recommenders",
      MetricType::kGauge, "", [this]() -> std::vector<MetricSample> {
        return {{"", service_->PooledRecommenders()}};
      });
  registry_.AddCallback(
      "serenade_slow_requests_total",
      "requests over the slow-request threshold", MetricType::kCounter, "",
      [this]() -> std::vector<MetricSample> {
        return {{"", slow_logger_.slow_requests_seen()}};
      });

  recommend_latency_micros_ = &registry_.AddHistogram(
      "serenade_recommend_latency_microseconds",
      "/recommend handling latency");
  for (TraceStage stage : kPodStages) {
    stage_micros_[static_cast<size_t>(stage)] = &registry_.AddHistogram(
        "serenade_stage_duration_microseconds",
        "per-request latency attributed to one serving stage", "stage",
        TraceStageName(stage));
  }
}

Status SerenadeServer::Start() {
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); });
  SERENADE_RETURN_IF_ERROR(http_->Start(config_.port));
  if (config_.janitor_interval_ms > 0) {
    stopping_.store(false);
    janitor_ = std::thread([this] {
      while (!stopping_.load()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config_.janitor_interval_ms));
        if (stopping_.load()) break;
        service_->SweepExpiredSessions();
      }
    });
  }
  return Status::Ok();
}

void SerenadeServer::Stop() {
  stopping_.store(true);
  if (janitor_.joinable()) janitor_.join();
  if (http_) http_->Stop();
}

void SerenadeServer::RecordStageMetrics(const Trace& trace) {
  for (TraceStage stage : kPodStages) {
    if (trace.StageCount(stage) == 0) continue;
    stage_micros_[static_cast<size_t>(stage)]->Record(
        trace.StageMicros(stage));
  }
}

HttpResponse SerenadeServer::Handle(const HttpRequest& request) {
  if (request.path == "/admin/reload") {
    if (request.method != "POST") {
      return HttpResponse::Error(405, "reload requires POST");
    }
    return HandleAdminReload(request);
  }
  if (request.method != "GET") {
    return HttpResponse::Error(405, "only GET is supported");
  }
  if (request.path == "/recommend") {
    // Adopt the gateway's trace id when one arrived; mint one otherwise.
    const std::string inbound = request.Header(kTraceIdHeader);
    Trace trace = IsValidTraceId(inbound) ? Trace(inbound) : Trace();
    trace.Record(TraceStage::kParse, request.parse_micros);

    HttpResponse response = HandleRecommend(request, &trace);
    response.headers[kTraceIdHeader] = trace.id();

    recommend_latency_micros_->Record(trace.TotalMicros());
    RecordStageMetrics(trace);
    slow_logger_.MaybeLog(trace, "pod", request.path, response.status);
    return response;
  }
  if (request.path == "/healthz") {
    JsonWriter writer;
    writer.BeginObject()
        .Key("status")
        .Value("ok")
        .Key("index_version")
        .Value(service_->index_manager().current_version())
        .EndObject();
    return HttpResponse::Json(writer.str());
  }
  if (request.path == "/stats") return HandleStats();
  if (request.path == "/metrics") {
    return HttpResponse::Text(registry_.RenderPrometheus(),
                              MetricsRegistry::ContentType());
  }
  return HttpResponse::Error(404, "unknown path");
}

HttpResponse SerenadeServer::HandleRecommend(const HttpRequest& request,
                                             Trace* trace) {
  const std::string session_key = request.Param("session_id");
  const std::string item_text = request.Param("item_id");
  if (session_key.empty() || item_text.empty()) {
    return HttpResponse::Error(400, "session_id and item_id are required");
  }
  uint32_t item = 0;
  const auto parsed = std::from_chars(
      item_text.data(), item_text.data() + item_text.size(), item);
  if (parsed.ec != std::errc() ||
      parsed.ptr != item_text.data() + item_text.size()) {
    return HttpResponse::Error(400, "item_id must be an unsigned integer");
  }
  const bool consent = request.Param("consent", "true") != "false";

  auto result = service_->HandleUpdateAndRecommend(
      RecommendRequest{session_key, item, consent}, trace);
  if (!result.ok()) {
    return HttpResponse::Error(
        result.status().code() == StatusCode::kInvalidArgument ? 400 : 500,
        result.status().message());
  }

  Span serialize_span(trace, TraceStage::kSerialize);
  JsonWriter writer;
  writer.BeginObject().Key("items").BeginArray();
  for (const ScoredItem& rec : *result) {
    writer.Value(static_cast<uint64_t>(rec.item));
  }
  writer.EndArray().Key("scores").BeginArray();
  for (const ScoredItem& rec : *result) {
    writer.Value(static_cast<double>(rec.score));
  }
  writer.EndArray().EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse SerenadeServer::HandleAdminReload(const HttpRequest& request) {
  const std::string path = request.Param("path");
  const Status reloaded = service_->ReloadIndex(path);
  if (!reloaded.ok()) {
    // The previous snapshot stays published; tell the operator why the
    // rollout was rejected.
    int status = 500;
    switch (reloaded.code()) {
      case StatusCode::kInvalidArgument:
        status = 400;
        break;
      case StatusCode::kNotFound:
      case StatusCode::kIoError:
        status = 404;
        break;
      case StatusCode::kCorruption:
        status = 409;
        break;
      default:
        break;
    }
    return HttpResponse::Error(status, reloaded.ToString());
  }
  const auto snapshot = service_->CurrentSnapshot();
  JsonWriter writer;
  writer.BeginObject()
      .Key("status")
      .Value("ok")
      .Key("index_version")
      .Value(snapshot->version())
      .Key("index_source")
      .Value(snapshot->manifest().source)
      .Key("index_sessions")
      .Value(static_cast<uint64_t>(snapshot->index().num_sessions()))
      .EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse SerenadeServer::HandleStats() {
  const SessionStoreStats stats = service_->StoreStats();
  const auto snapshot = service_->CurrentSnapshot();
  IndexManager& manager = service_->index_manager();
  JsonWriter writer;
  writer.BeginObject()
      .Key("requests_served")
      .Value(requests_served())
      .Key("store_reads")
      .Value(stats.reads)
      .Key("store_writes")
      .Value(stats.writes)
      .Key("store_expirations")
      .Value(stats.expirations)
      .Key("live_sessions")
      .Value(stats.live_entries)
      .Key("index_version")
      .Value(snapshot->version())
      .Key("index_source")
      .Value(snapshot->manifest().source)
      .Key("index_build_id")
      .Value(snapshot->manifest().build_id)
      .Key("index_reloads")
      .Value(manager.reloads_total())
      .Key("index_reload_failures")
      .Value(manager.reload_failures_total())
      .Key("index_sessions")
      .Value(static_cast<uint64_t>(snapshot->index().num_sessions()))
      .Key("index_items")
      .Value(static_cast<uint64_t>(snapshot->index().num_items()))
      .Key("recommender_pool_size")
      .Value(static_cast<uint64_t>(service_->PooledRecommenders()))
      .Key("slow_requests")
      .Value(slow_logger_.slow_requests_seen())
      .EndObject();
  return HttpResponse::Json(writer.str());
}

}  // namespace serenade
