#include "serving/server.h"

#include <charconv>
#include <chrono>
#include <cstdio>

#include "common/stopwatch.h"
#include "serving/json.h"

namespace serenade {

SerenadeServer::SerenadeServer(std::unique_ptr<SerenadeService> service,
                               ServerConfig config)
    : service_(std::move(service)), config_(config) {}

SerenadeServer::~SerenadeServer() { Stop(); }

Status SerenadeServer::Start() {
  http_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); });
  SERENADE_RETURN_IF_ERROR(http_->Start(config_.port));
  if (config_.janitor_interval_ms > 0) {
    stopping_.store(false);
    janitor_ = std::thread([this] {
      while (!stopping_.load()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config_.janitor_interval_ms));
        if (stopping_.load()) break;
        service_->SweepExpiredSessions();
      }
    });
  }
  return Status::Ok();
}

void SerenadeServer::Stop() {
  stopping_.store(true);
  if (janitor_.joinable()) janitor_.join();
  if (http_) http_->Stop();
}

HttpResponse SerenadeServer::Handle(const HttpRequest& request) {
  if (request.path == "/admin/reload") {
    if (request.method != "POST") {
      return HttpResponse::Error(405, "reload requires POST");
    }
    return HandleAdminReload(request);
  }
  if (request.method != "GET") {
    return HttpResponse::Error(405, "only GET is supported");
  }
  if (request.path == "/recommend") {
    Stopwatch stopwatch;
    HttpResponse response = HandleRecommend(request);
    recommend_latency_micros_.Record(stopwatch.ElapsedMicros());
    return response;
  }
  if (request.path == "/healthz") {
    JsonWriter writer;
    writer.BeginObject()
        .Key("status")
        .Value("ok")
        .Key("index_version")
        .Value(service_->index_manager().current_version())
        .EndObject();
    return HttpResponse::Json(writer.str());
  }
  if (request.path == "/stats") return HandleStats();
  if (request.path == "/metrics") return HandleMetrics();
  return HttpResponse::Error(404, "unknown path");
}

HttpResponse SerenadeServer::HandleRecommend(const HttpRequest& request) {
  const std::string session_key = request.Param("session_id");
  const std::string item_text = request.Param("item_id");
  if (session_key.empty() || item_text.empty()) {
    return HttpResponse::Error(400, "session_id and item_id are required");
  }
  uint32_t item = 0;
  const auto parsed = std::from_chars(
      item_text.data(), item_text.data() + item_text.size(), item);
  if (parsed.ec != std::errc() ||
      parsed.ptr != item_text.data() + item_text.size()) {
    return HttpResponse::Error(400, "item_id must be an unsigned integer");
  }
  const bool consent = request.Param("consent", "true") != "false";

  auto result = service_->HandleUpdateAndRecommend(
      RecommendRequest{session_key, item, consent});
  if (!result.ok()) {
    return HttpResponse::Error(
        result.status().code() == StatusCode::kInvalidArgument ? 400 : 500,
        result.status().message());
  }

  JsonWriter writer;
  writer.BeginObject().Key("items").BeginArray();
  for (const ScoredItem& rec : *result) {
    writer.Value(static_cast<uint64_t>(rec.item));
  }
  writer.EndArray().Key("scores").BeginArray();
  for (const ScoredItem& rec : *result) {
    writer.Value(static_cast<double>(rec.score));
  }
  writer.EndArray().EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse SerenadeServer::HandleAdminReload(const HttpRequest& request) {
  const std::string path = request.Param("path");
  const Status reloaded = service_->ReloadIndex(path);
  if (!reloaded.ok()) {
    // The previous snapshot stays published; tell the operator why the
    // rollout was rejected.
    int status = 500;
    switch (reloaded.code()) {
      case StatusCode::kInvalidArgument:
        status = 400;
        break;
      case StatusCode::kNotFound:
      case StatusCode::kIoError:
        status = 404;
        break;
      case StatusCode::kCorruption:
        status = 409;
        break;
      default:
        break;
    }
    return HttpResponse::Error(status, reloaded.ToString());
  }
  const auto snapshot = service_->CurrentSnapshot();
  JsonWriter writer;
  writer.BeginObject()
      .Key("status")
      .Value("ok")
      .Key("index_version")
      .Value(snapshot->version())
      .Key("index_source")
      .Value(snapshot->manifest().source)
      .Key("index_sessions")
      .Value(static_cast<uint64_t>(snapshot->index().num_sessions()))
      .EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse SerenadeServer::HandleMetrics() {
  const SessionStoreStats stats = service_->StoreStats();
  const Histogram latency = recommend_latency_micros_.Merged();
  const auto snapshot = service_->CurrentSnapshot();
  IndexManager& manager = service_->index_manager();

  std::string body;
  char line[256];
  auto counter = [&](const char* name, const char* help, uint64_t value) {
    std::snprintf(line, sizeof(line),
                  "# HELP %s %s\n# TYPE %s counter\n%s %llu\n", name, help,
                  name, name, static_cast<unsigned long long>(value));
    body += line;
  };
  auto gauge = [&](const char* name, const char* help, uint64_t value) {
    std::snprintf(line, sizeof(line),
                  "# HELP %s %s\n# TYPE %s gauge\n%s %llu\n", name, help,
                  name, name, static_cast<unsigned long long>(value));
    body += line;
  };
  counter("serenade_requests_total", "HTTP requests served",
          http_->requests_served());
  counter("serenade_store_reads_total", "session store reads", stats.reads);
  counter("serenade_store_writes_total", "session store writes",
          stats.writes);
  counter("serenade_store_expirations_total", "sessions expired by TTL",
          stats.expirations);
  gauge("serenade_live_sessions", "evolving sessions currently stored",
        stats.live_entries);
  gauge("serenade_index_sessions", "historical sessions in the index",
        snapshot->index().num_sessions());
  gauge("serenade_index_version", "published index snapshot version",
        snapshot->version());
  counter("serenade_index_reloads_total", "successful index hot swaps",
          manager.reloads_total());
  counter("serenade_index_reload_failures_total",
          "rejected index reload attempts", manager.reload_failures_total());
  gauge("serenade_recommender_pool_size", "idle pooled recommenders",
        service_->PooledRecommenders());

  body +=
      "# HELP serenade_recommend_latency_microseconds /recommend handling "
      "latency\n# TYPE serenade_recommend_latency_microseconds summary\n";
  for (double quantile : {0.5, 0.75, 0.9, 0.99, 0.995}) {
    std::snprintf(line, sizeof(line),
                  "serenade_recommend_latency_microseconds{quantile=\"%g\"} "
                  "%llu\n",
                  quantile,
                  static_cast<unsigned long long>(
                      latency.Percentile(quantile)));
    body += line;
  }
  std::snprintf(line, sizeof(line),
                "serenade_recommend_latency_microseconds_count %llu\n",
                static_cast<unsigned long long>(latency.count()));
  body += line;

  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = std::move(body);
  return response;
}

HttpResponse SerenadeServer::HandleStats() {
  const SessionStoreStats stats = service_->StoreStats();
  const auto snapshot = service_->CurrentSnapshot();
  IndexManager& manager = service_->index_manager();
  JsonWriter writer;
  writer.BeginObject()
      .Key("requests_served")
      .Value(http_->requests_served())
      .Key("store_reads")
      .Value(stats.reads)
      .Key("store_writes")
      .Value(stats.writes)
      .Key("store_expirations")
      .Value(stats.expirations)
      .Key("live_sessions")
      .Value(stats.live_entries)
      .Key("index_version")
      .Value(snapshot->version())
      .Key("index_source")
      .Value(snapshot->manifest().source)
      .Key("index_build_id")
      .Value(snapshot->manifest().build_id)
      .Key("index_reloads")
      .Value(manager.reloads_total())
      .Key("index_reload_failures")
      .Value(manager.reload_failures_total())
      .Key("index_sessions")
      .Value(static_cast<uint64_t>(snapshot->index().num_sessions()))
      .Key("index_items")
      .Value(static_cast<uint64_t>(snapshot->index().num_items()))
      .Key("recommender_pool_size")
      .Value(static_cast<uint64_t>(service_->PooledRecommenders()))
      .EndObject();
  return HttpResponse::Json(writer.str());
}

}  // namespace serenade
