// Micro-batching execution layer for update-and-recommend: a bounded
// per-worker submission queue plus a small worker pool that coalesces
// concurrent requests into micro-batches. Each batch pays the fixed
// per-request costs once — one session-store MultiGet/MultiPut, one
// index-snapshot pin, one recommender-pool checkout — and scores every
// item on the shared recommender before scattering results back to the
// waiting connection threads (the batching analogue of the paper's
// Section 6 low-latency serving loop; cf. xGR's batched inference).
//
// Requests are routed to workers by session-key hash, so all traffic for
// one session flows through one FIFO queue: two clicks of the same
// session can never race in different batches, which preserves the
// read-modify-write atomicity the unbatched path got from
// SessionStore::Update.
//
// At max_batch_size <= 1 (the default) the executor degenerates to a
// pass-through that runs the request inline on the caller's thread —
// zero queues, zero handoffs, same latency as the pre-batching path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/service.h"

namespace serenade {

struct BatchExecutorConfig {
  /// Largest micro-batch one worker drains per wakeup (--batch-max-size).
  /// <= 1 disables batching entirely (inline pass-through).
  size_t max_batch_size = 1;
  /// After the first request arrives, how long a worker waits for the
  /// batch to fill before running it anyway (--batch-max-delay-us).
  /// 0 = drain whatever is queued immediately ("natural" batching only).
  uint64_t max_delay_us = 0;
  /// Worker threads (session keys hash-partition across them).
  size_t num_workers = 2;
  /// Per-worker queue bound; submissions beyond it are rejected with
  /// kUnavailable (load shedding, surfaced as HTTP 503).
  size_t max_queue_per_worker = 1024;
};

/// The executor's only timing dependence: how a worker waits out the
/// coalescing window after the first request of a batch arrives. The
/// default implementation waits on the wall clock; tests substitute a
/// virtual clock (testing/virtual_clock.h) and advance time explicitly,
/// so batch-composition assertions stop depending on scheduler luck.
class BatchClock {
 public:
  virtual ~BatchClock() = default;

  /// Blocks on `cv` (guarded by `lock`) until `pred()` holds or `micros`
  /// of clock time elapses. Like std::condition_variable::wait_for, the
  /// predicate is evaluated only with the lock held.
  virtual void WaitFor(std::condition_variable& cv,
                       std::unique_lock<std::mutex>& lock, uint64_t micros,
                       const std::function<bool()>& pred) = 0;
};

/// Wall-clock BatchClock: a plain wait_for on the condition variable.
class RealBatchClock : public BatchClock {
 public:
  void WaitFor(std::condition_variable& cv,
               std::unique_lock<std::mutex>& lock, uint64_t micros,
               const std::function<bool()>& pred) override;

  /// Shared process-wide instance (stateless).
  static RealBatchClock* Instance();
};

/// Thread-safe executor facade in front of a SerenadeService. Callers
/// block on Execute()/ExecuteBatch() until their slot's result is ready;
/// worker threads own the actual service calls.
class BatchExecutor {
 public:
  using Result = StatusOr<std::vector<ScoredItem>>;

  /// `service` must outlive the executor. A non-null `registry` receives
  /// the batching metrics (occupancy + queue-wait histograms, batch /
  /// request / rejection counters, coalescing-factor gauge). A non-null
  /// `clock` (which must outlive the executor) replaces the wall clock
  /// for the coalescing window — test-only.
  BatchExecutor(SerenadeService* service, BatchExecutorConfig config,
                MetricsRegistry* registry = nullptr,
                BatchClock* clock = nullptr);
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Starts the worker pool (no-op in pass-through mode).
  Status Start();

  /// Drains the queues (every accepted request still completes), then
  /// joins the workers. Subsequent submissions are rejected.
  void Stop();

  /// True when requests run inline on the caller's thread.
  bool passthrough() const {
    return config_.max_batch_size <= 1 || config_.num_workers == 0;
  }

  /// Executes one request, blocking until its result is ready. In
  /// pass-through mode this is exactly SerenadeService::
  /// HandleUpdateAndRecommend; otherwise the request is queued, coalesced
  /// into a micro-batch, and `trace` additionally receives a queue_wait
  /// span (batch-wide store/pin spans cover the whole batch's work).
  Result Execute(const RecommendRequest& request, Trace* trace = nullptr);

  /// Executes an explicit client-side batch (POST /v1/recommend:batch):
  /// results[i] corresponds to requests[i]; a failing slot (validation,
  /// queue rejection) never fails its siblings. Duplicate session keys
  /// are applied in slot order.
  std::vector<Result> ExecuteBatch(
      const std::vector<RecommendRequest>& requests);

  uint64_t batches_executed() const {
    return batches_.load(std::memory_order_relaxed);
  }
  uint64_t requests_executed() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t requests_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  const BatchExecutorConfig& config() const { return config_; }

 private:
  struct PendingOp {
    RecommendRequest request;
    Trace* trace = nullptr;
    Stopwatch queued;  // submission -> batch pickup = queue wait
    std::promise<Result> promise;
  };
  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::unique_ptr<PendingOp>> queue;
    std::thread thread;
  };

  /// Enqueues one op on its session key's worker; fails fast with
  /// kUnavailable when the queue is full or the executor is stopped.
  StatusOr<std::future<Result>> SubmitAsync(const RecommendRequest& request,
                                            Trace* trace);

  void WorkerLoop(Worker& worker);
  void RunBatch(std::vector<std::unique_ptr<PendingOp>> batch);

  SerenadeService* service_;
  BatchExecutorConfig config_;
  BatchClock* clock_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{true};  // Start() arms the queues

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rejected_{0};
  MetricHistogram* batch_size_hist_ = nullptr;
  MetricHistogram* queue_wait_micros_ = nullptr;
};

}  // namespace serenade
