#include "serving/router.h"

#include <cassert>

#include "common/hash.h"

namespace serenade {

StickySessionRouter::StickySessionRouter(size_t num_servers)
    : num_servers_(num_servers) {
  assert(num_servers > 0);
}

size_t StickySessionRouter::ServerFor(const std::string& session_key) const {
  return Mix64(Fnv1a(session_key)) % num_servers_;
}

}  // namespace serenade
