#include "serving/business_rules.h"

namespace serenade {

std::vector<ScoredItem> ApplyBusinessRules(const std::vector<ScoredItem>& raw,
                                           const ItemCatalog& catalog,
                                           const BusinessRulesConfig& config) {
  std::vector<ScoredItem> filtered;
  filtered.reserve(std::min(raw.size(), config.max_items));
  for (const ScoredItem& candidate : raw) {
    if (filtered.size() >= config.max_items) break;
    if (candidate.item >= catalog.num_items()) continue;
    if (config.filter_unavailable && !catalog.available[candidate.item]) {
      continue;
    }
    if (config.filter_adult && catalog.adult[candidate.item]) continue;
    filtered.push_back(candidate);
  }
  return filtered;
}

}  // namespace serenade
