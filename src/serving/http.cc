#include "serving/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "serving/json.h"
#include "testing/fault_injection.h"

namespace serenade {

namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;

enum class ReadResult { kOk, kClosed, kTimeout };

// Reads until the terminator appears in the buffer, the peer closes, or
// the socket's receive timeout elapses (so server threads can re-check
// their stop flag while a keep-alive connection idles).
ReadResult ReadUntil(int fd, std::string* buffer, const char* terminator) {
  char chunk[4096];
  while (buffer->find(terminator) == std::string::npos) {
    if (buffer->size() > kMaxHeaderBytes) return ReadResult::kClosed;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadResult::kClosed;
    if (n < 0) {
      return (errno == EAGAIN || errno == EWOULDBLOCK) ? ReadResult::kTimeout
                                                       : ReadResult::kClosed;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return ReadResult::kOk;
}

ReadResult ReadExact(int fd, std::string* buffer, size_t total) {
  char chunk[4096];
  while (buffer->size() < total) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadResult::kClosed;
    if (n < 0) {
      return (errno == EAGAIN || errno == EWOULDBLOCK) ? ReadResult::kTimeout
                                                       : ReadResult::kClosed;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return ReadResult::kOk;
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

void ParseQuery(const std::string& query,
                std::map<std::string, std::string>* out) {
  size_t start = 0;
  while (start < query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(start, end - start);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      (*out)[UrlDecode(pair)] = "";
    } else {
      (*out)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
    start = end + 1;
  }
}

// Parses one request from `buffer` (which holds at least the full header
// block). Returns bytes consumed, or 0 on malformed input. May read more
// from fd for the body. A declared body over kMaxBodyBytes sets
// `*oversized` (distinguishing 413 from a plain 400) without reading it.
size_t ParseRequest(int fd, std::string* buffer, HttpRequest* request,
                    bool* keep_alive, bool* oversized) {
  const size_t header_end = buffer->find("\r\n\r\n");
  if (header_end == std::string::npos) return 0;
  const std::string head = buffer->substr(0, header_end);

  // Request line.
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return 0;
  request->method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return 0;

  const size_t question = target.find('?');
  if (question == std::string::npos) {
    request->path = UrlDecode(target);
  } else {
    request->path = UrlDecode(target.substr(0, question));
    ParseQuery(target.substr(question + 1), &request->query);
  }

  // Headers.
  size_t cursor = line_end == std::string::npos ? head.size() : line_end + 2;
  while (cursor < head.size()) {
    size_t eol = head.find("\r\n", cursor);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(cursor, eol - cursor);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = ToLower(line.substr(0, colon));
      size_t value_start = colon + 1;
      while (value_start < line.size() && line[value_start] == ' ') {
        ++value_start;
      }
      request->headers[name] = line.substr(value_start);
    }
    cursor = eol + 2;
  }

  *keep_alive = version == "HTTP/1.1";
  auto connection = request->headers.find("connection");
  if (connection != request->headers.end()) {
    const std::string value = ToLower(connection->second);
    if (value == "close") *keep_alive = false;
    if (value == "keep-alive") *keep_alive = true;
  }

  // Body.
  size_t body_length = 0;
  auto content_length = request->headers.find("content-length");
  if (content_length != request->headers.end()) {
    body_length = static_cast<size_t>(std::strtoull(
        content_length->second.c_str(), nullptr, 10));
    if (body_length > kMaxBodyBytes) {
      *oversized = true;
      return 0;
    }
  }
  const size_t total = header_end + 4 + body_length;
  if (buffer->size() < total &&
      ReadExact(fd, buffer, total) != ReadResult::kOk) {
    return 0;
  }
  request->body = buffer->substr(header_end + 4, body_length);
  return total;
}

// Response headers the server owns; application-set duplicates (e.g. a
// proxied backend's parsed Content-Length) are dropped.
bool IsManagedHeader(const std::string& lower_name) {
  return lower_name == "content-type" || lower_name == "content-length" ||
         lower_name == "connection";
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    if (IsManagedHeader(ToLower(name))) continue;
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace

std::string UrlDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(text[i + 1]), lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::string HttpRequest::Param(const std::string& key,
                               const std::string& fallback) const {
  auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

// Server-parsed maps hold lower-cased names, application-set maps may
// hold canonical casing; a case-insensitive scan serves both (header
// maps are tiny).
static std::string FindHeader(
    const std::map<std::string, std::string>& headers,
                       const std::string& name, const std::string& fallback) {
  const std::string lower = ToLower(name);
  for (const auto& [key, value] : headers) {
    if (ToLower(key) == lower) return value;
  }
  return fallback;
}

std::string HttpRequest::Header(const std::string& name,
                                const std::string& fallback) const {
  return FindHeader(headers, name, fallback);
}

std::string HttpResponse::Header(const std::string& name,
                                 const std::string& fallback) const {
  return FindHeader(headers, name, fallback);
}

HttpResponse HttpResponse::Json(std::string body) {
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Text(std::string body, std::string content_type) {
  HttpResponse response;
  response.content_type = std::move(content_type);
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":\"" + message + "\"}";
  return response;
}

const char* ApiErrorCode(int status) {
  switch (status) {
    case 400: return "bad_request";
    case 404: return "not_found";
    case 405: return "method_not_allowed";
    case 409: return "conflict";
    case 413: return "payload_too_large";
    case 429: return "too_many_requests";
    case 503: return "unavailable";
    case 504: return "deadline_exceeded";
    default: return "internal";
  }
}

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound:
    case StatusCode::kIoError: return 404;
    case StatusCode::kCorruption: return 409;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kDeadlineExceeded: return 504;
    default: return 500;
  }
}

HttpResponse ApiError(int status, const std::string& message,
                      const std::string& trace_id) {
  JsonWriter writer;
  writer.BeginObject().Key("error").BeginObject();
  writer.Key("code").Value(ApiErrorCode(status));
  writer.Key("message").Value(message);
  if (!trace_id.empty()) writer.Key("trace_id").Value(trace_id);
  writer.EndObject().EndObject();
  HttpResponse response;
  response.status = status;
  response.body = writer.str();
  return response;
}

// --- router ------------------------------------------------------------------

void Router::Handle(std::string method, std::string path, Handler handler) {
  routes_[std::move(path)][std::move(method)] = std::move(handler);
}

void Router::Alias(std::string legacy_path, std::string canonical_path) {
  aliases_[std::move(legacy_path)] = std::move(canonical_path);
}

const std::string& Router::CanonicalPath(const std::string& path) const {
  auto it = aliases_.find(path);
  return it == aliases_.end() ? path : it->second;
}

HttpResponse Router::Dispatch(const HttpRequest& request,
                              Trace* trace) const {
  bool deprecated = false;
  const std::string* path = &request.path;
  if (auto alias = aliases_.find(request.path); alias != aliases_.end()) {
    path = &alias->second;
    deprecated = true;
  }
  const std::string trace_id = trace == nullptr ? "" : trace->id();

  auto route = routes_.find(*path);
  if (route == routes_.end()) {
    return ApiError(404, "unknown path: " + request.path, trace_id);
  }
  auto method = route->second.find(request.method);
  if (method == route->second.end()) {
    HttpResponse response =
        ApiError(405, "method " + request.method + " not allowed for " +
                          request.path, trace_id);
    std::string allow;
    for (const auto& [name, handler] : route->second) {
      if (!allow.empty()) allow += ", ";
      allow += name;
    }
    response.headers["Allow"] = allow;
    return response;
  }

  HttpResponse response = method->second(request, trace);
  if (deprecated) {
    deprecated_requests_.fetch_add(1, std::memory_order_relaxed);
    response.headers["Deprecation"] = "true";
  }
  return response;
}

// --- server ------------------------------------------------------------------

HttpServer::HttpServer(HttpHandler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind() failed for port " + std::to_string(port));
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed");
  }
  socklen_t length = sizeof(address);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);

  stopping_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(connection_threads_);
  }
  for (auto& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    // Bounded read timeout so connection threads exit on Stop().
    timeval timeout{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void HttpServer::ConnectionLoop(int fd) {
  std::string buffer;
  while (!stopping_.load()) {
    const ReadResult read = ReadUntil(fd, &buffer, "\r\n\r\n");
    if (read == ReadResult::kTimeout) continue;  // idle keep-alive
    if (read == ReadResult::kClosed) break;
    HttpRequest request;
    bool keep_alive = false;
    bool oversized = false;
    Stopwatch parse_watch;
    const size_t consumed =
        ParseRequest(fd, &buffer, &request, &keep_alive, &oversized);
    request.parse_micros = parse_watch.ElapsedMicros();
    if (consumed == 0) {
      // The unread body makes the connection unusable either way; answer
      // and close.
      WriteAll(fd, SerializeResponse(
                       oversized
                           ? ApiError(413, "request body exceeds the " +
                                               std::to_string(kMaxBodyBytes) +
                                               "-byte limit")
                           : ApiError(400, "malformed request"),
                       false));
      break;
    }
    buffer.erase(0, consumed);

    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      LOG_ERROR << "handler threw: " << e.what();
      response = HttpResponse::Error(500, "internal error");
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (!WriteAll(fd, SerializeResponse(response, keep_alive))) break;
    if (!keep_alive) break;
  }
  ::close(fd);
}

// --- client ------------------------------------------------------------------

HttpClient::~HttpClient() { Close(); }

Status HttpClient::Connect(uint16_t port) {
  Close();
  SERENADE_FAULT_POINT(FaultSite::kHttpConnect, {
    return Status::Unavailable("injected: connect refused by port " +
                               std::to_string(port));
  });
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IoError("socket() failed");
  const int enable = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);

  if (options_.connect_timeout_ms > 0) {
    // Non-blocking connect bounded by poll(), so an unresponsive peer
    // (e.g. a SYN-dropping backend) cannot stall the caller.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                             sizeof(address));
    if (rc != 0) {
      if (errno != EINPROGRESS) {
        Close();
        return Status::Unavailable("connect() failed to port " +
                                   std::to_string(port));
      }
      pollfd pending{fd_, POLLOUT, 0};
      const int ready =
          ::poll(&pending, 1, static_cast<int>(options_.connect_timeout_ms));
      if (ready == 0) {
        Close();
        return Status::DeadlineExceeded("connect timed out to port " +
                                        std::to_string(port));
      }
      int error = 0;
      socklen_t length = sizeof(error);
      if (ready < 0 ||
          ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &length) != 0 ||
          error != 0) {
        Close();
        return Status::Unavailable("connect() failed to port " +
                                   std::to_string(port));
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                       sizeof(address)) != 0) {
    Close();
    return Status::Unavailable("connect() failed to port " +
                               std::to_string(port));
  }

  if (options_.io_timeout_ms > 0) {
    timeval timeout{
        static_cast<time_t>(options_.io_timeout_ms / 1000),
        static_cast<suseconds_t>((options_.io_timeout_ms % 1000) * 1000)};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  }
  port_ = port;
  return Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<HttpResponse> HttpClient::RoundTrip(const std::string& request_text) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  SERENADE_FAULT_DELAY(FaultSite::kHttpLatency);
  SERENADE_FAULT_POINT(FaultSite::kHttpSend,
                       { return Status::IoError("injected: send failed"); });
  if (!WriteAll(fd_, request_text)) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("send timed out");
    }
    return Status::IoError("send failed");
  }

  std::string buffer;
  SERENADE_FAULT_POINT(FaultSite::kHttpRecv, {
    return Status::IoError("injected: connection reset mid-response");
  });
  switch (ReadUntil(fd_, &buffer, "\r\n\r\n")) {
    case ReadResult::kOk:
      break;
    case ReadResult::kTimeout:
      return Status::DeadlineExceeded("read timed out waiting for headers");
    case ReadResult::kClosed:
      return Status::IoError("connection closed while reading headers");
  }
  const size_t header_end = buffer.find("\r\n\r\n");
  const std::string head = buffer.substr(0, header_end);

  HttpResponse response;
  const size_t status_start = head.find(' ');
  if (status_start == std::string::npos || head.compare(0, 5, "HTTP/") != 0) {
    return Status::Corruption("bad status line");
  }
  response.status = std::atoi(head.c_str() + status_start + 1);

  // Parse every response header (lower-cased names) so callers can read
  // application headers such as the echoed X-Serenade-Trace-Id.
  size_t cursor = head.find("\r\n");
  cursor = cursor == std::string::npos ? head.size() : cursor + 2;
  while (cursor < head.size()) {
    size_t eol = head.find("\r\n", cursor);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(cursor, eol - cursor);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = ToLower(line.substr(0, colon));
      size_t value_start = colon + 1;
      while (value_start < line.size() && line[value_start] == ' ') {
        ++value_start;
      }
      response.headers[name] = line.substr(value_start);
    }
    cursor = eol + 2;
  }

  size_t body_length = 0;
  auto content_length = response.headers.find("content-length");
  if (content_length != response.headers.end()) {
    body_length = static_cast<size_t>(
        std::strtoull(content_length->second.c_str(), nullptr, 10));
    if (body_length > kMaxBodyBytes) {
      return Status::Corruption("response body of " +
                                std::to_string(body_length) +
                                " bytes exceeds the client limit");
    }
  }
  auto content_type = response.headers.find("content-type");
  if (content_type != response.headers.end()) {
    response.content_type = content_type->second;
  }
  const size_t total = header_end + 4 + body_length;
  if (buffer.size() < total) {
    switch (ReadExact(fd_, &buffer, total)) {
      case ReadResult::kOk:
        break;
      case ReadResult::kTimeout:
        return Status::DeadlineExceeded("read timed out mid-body");
      case ReadResult::kClosed:
        return Status::IoError("connection closed while reading body");
    }
  }
  response.body = buffer.substr(header_end + 4, body_length);
  // Models a middlebox or crashing peer that delivered the status line
  // and headers but cut the body short: status stays 200, body shrinks
  // to a strict prefix. Callers must not trust status alone.
  SERENADE_FAULT_POINT(FaultSite::kHttpTruncateBody, {
    response.body.resize(
        static_cast<size_t>(serenade_fi->RandBelow(response.body.size())));
  });
  return response;
}

StatusOr<HttpResponse> HttpClient::Get(
    const std::string& path_and_query,
    const std::map<std::string, std::string>& extra_headers) {
  std::string request_text = "GET " + path_and_query +
                             " HTTP/1.1\r\nHost: localhost\r\n"
                             "Connection: keep-alive\r\n";
  for (const auto& [name, value] : extra_headers) {
    request_text += name + ": " + value + "\r\n";
  }
  request_text += "\r\n";
  auto response = RoundTrip(request_text);
  if (!response.ok() && fd_ >= 0 &&
      response.status().code() != StatusCode::kDeadlineExceeded) {
    // Stale keep-alive connection: reconnect once and retry.
    SERENADE_RETURN_IF_ERROR(Connect(port_));
    return RoundTrip(request_text);
  }
  return response;
}

StatusOr<HttpResponse> HttpClient::Post(
    const std::string& path_and_query, const std::string& body,
    const std::map<std::string, std::string>& extra_headers) {
  std::string request_text =
      "POST " + path_and_query +
      " HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: " + std::to_string(body.size()) +
      "\r\nConnection: keep-alive\r\n";
  for (const auto& [name, value] : extra_headers) {
    request_text += name + ": " + value + "\r\n";
  }
  request_text += "\r\n" + body;
  auto response = RoundTrip(request_text);
  if (!response.ok() && fd_ >= 0 &&
      response.status().code() != StatusCode::kDeadlineExceeded) {
    SERENADE_RETURN_IF_ERROR(Connect(port_));
    return RoundTrip(request_text);
  }
  return response;
}

}  // namespace serenade
