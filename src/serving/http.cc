#include "serving/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serving/json.h"
#include "testing/fault_injection.h"

namespace serenade {

namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;

enum class ReadResult { kOk, kClosed, kTimeout };

// Reads until the terminator appears in the buffer, the peer closes, or
// the socket's receive timeout elapses (so server threads can re-check
// their stop flag while a keep-alive connection idles).
ReadResult ReadUntil(int fd, std::string* buffer, const char* terminator) {
  char chunk[4096];
  while (buffer->find(terminator) == std::string::npos) {
    if (buffer->size() > kMaxHeaderBytes) return ReadResult::kClosed;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadResult::kClosed;
    if (n < 0) {
      return (errno == EAGAIN || errno == EWOULDBLOCK) ? ReadResult::kTimeout
                                                       : ReadResult::kClosed;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return ReadResult::kOk;
}

ReadResult ReadExact(int fd, std::string* buffer, size_t total) {
  char chunk[4096];
  while (buffer->size() < total) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadResult::kClosed;
    if (n < 0) {
      return (errno == EAGAIN || errno == EWOULDBLOCK) ? ReadResult::kTimeout
                                                       : ReadResult::kClosed;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return ReadResult::kOk;
}

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

void ParseQuery(const std::string& query,
                std::map<std::string, std::string>* out) {
  size_t start = 0;
  while (start < query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(start, end - start);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      (*out)[UrlDecode(pair)] = "";
    } else {
      (*out)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
    start = end + 1;
  }
}

// Outcome of parsing the header block at the front of a connection's
// input buffer (no socket IO — the reactor owns all reads).
enum class ParseHeadResult {
  kNeedMore,   // no \r\n\r\n yet; keep reading
  kMalformed,  // unparseable request line / bad version → 400
  kOversized,  // declared Content-Length over kMaxBodyBytes → 413,
               // decided from the headers alone (fail fast, the body is
               // never buffered)
  kOk,
};

// Parses one request head from `buffer`. On kOk fills everything except
// the body and reports the header block size (`*header_bytes`, includes
// the blank line) and the declared body length so the caller can wait
// for exactly `*header_bytes + *body_length` buffered bytes.
ParseHeadResult ParseRequestHead(const std::string& buffer,
                                 HttpRequest* request, bool* keep_alive,
                                 size_t* header_bytes, size_t* body_length) {
  const size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos) return ParseHeadResult::kNeedMore;
  const std::string head = buffer.substr(0, header_end);

  // Request line.
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return ParseHeadResult::kMalformed;
  request->method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return ParseHeadResult::kMalformed;
  }

  const size_t question = target.find('?');
  if (question == std::string::npos) {
    request->path = UrlDecode(target);
  } else {
    request->path = UrlDecode(target.substr(0, question));
    ParseQuery(target.substr(question + 1), &request->query);
  }

  // Headers.
  size_t cursor = line_end == std::string::npos ? head.size() : line_end + 2;
  while (cursor < head.size()) {
    size_t eol = head.find("\r\n", cursor);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(cursor, eol - cursor);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = ToLower(line.substr(0, colon));
      size_t value_start = colon + 1;
      while (value_start < line.size() && line[value_start] == ' ') {
        ++value_start;
      }
      request->headers[name] = line.substr(value_start);
    }
    cursor = eol + 2;
  }

  *keep_alive = version == "HTTP/1.1";
  auto connection = request->headers.find("connection");
  if (connection != request->headers.end()) {
    const std::string value = ToLower(connection->second);
    if (value == "close") *keep_alive = false;
    if (value == "keep-alive") *keep_alive = true;
  }

  *header_bytes = header_end + 4;
  *body_length = 0;
  auto content_length = request->headers.find("content-length");
  if (content_length != request->headers.end()) {
    *body_length = static_cast<size_t>(
        std::strtoull(content_length->second.c_str(), nullptr, 10));
    if (*body_length > kMaxBodyBytes) return ParseHeadResult::kOversized;
  }
  return ParseHeadResult::kOk;
}

// Response headers the server owns; application-set duplicates (e.g. a
// proxied backend's parsed Content-Length) are dropped.
bool IsManagedHeader(const std::string& lower_name) {
  return lower_name == "content-type" || lower_name == "content-length" ||
         lower_name == "connection";
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    if (IsManagedHeader(ToLower(name))) continue;
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace

std::string UrlDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(text[i + 1]), lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::string HttpRequest::Param(const std::string& key,
                               const std::string& fallback) const {
  auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

// Server-parsed maps hold lower-cased names, application-set maps may
// hold canonical casing; a case-insensitive scan serves both (header
// maps are tiny).
static std::string FindHeader(
    const std::map<std::string, std::string>& headers,
                       const std::string& name, const std::string& fallback) {
  const std::string lower = ToLower(name);
  for (const auto& [key, value] : headers) {
    if (ToLower(key) == lower) return value;
  }
  return fallback;
}

std::string HttpRequest::Header(const std::string& name,
                                const std::string& fallback) const {
  return FindHeader(headers, name, fallback);
}

std::string HttpResponse::Header(const std::string& name,
                                 const std::string& fallback) const {
  return FindHeader(headers, name, fallback);
}

HttpResponse HttpResponse::Json(std::string body) {
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Text(std::string body, std::string content_type) {
  HttpResponse response;
  response.content_type = std::move(content_type);
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":\"" + message + "\"}";
  return response;
}

const char* ApiErrorCode(int status) {
  switch (status) {
    case 400: return "bad_request";
    case 404: return "not_found";
    case 405: return "method_not_allowed";
    case 409: return "conflict";
    case 413: return "payload_too_large";
    case 429: return "too_many_requests";
    case 503: return "unavailable";
    case 504: return "deadline_exceeded";
    default: return "internal";
  }
}

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound:
    case StatusCode::kIoError: return 404;
    case StatusCode::kCorruption: return 409;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kDeadlineExceeded: return 504;
    default: return 500;
  }
}

HttpResponse ApiError(int status, const std::string& message,
                      const std::string& trace_id) {
  JsonWriter writer;
  writer.BeginObject().Key("error").BeginObject();
  writer.Key("code").Value(ApiErrorCode(status));
  writer.Key("message").Value(message);
  if (!trace_id.empty()) writer.Key("trace_id").Value(trace_id);
  writer.EndObject().EndObject();
  HttpResponse response;
  response.status = status;
  response.body = writer.str();
  return response;
}

// --- router ------------------------------------------------------------------

void Router::Handle(std::string method, std::string path, Handler handler) {
  routes_[std::move(path)][std::move(method)] = std::move(handler);
}

void Router::Alias(std::string legacy_path, std::string canonical_path) {
  aliases_[std::move(legacy_path)] = std::move(canonical_path);
}

const std::string& Router::CanonicalPath(const std::string& path) const {
  auto it = aliases_.find(path);
  return it == aliases_.end() ? path : it->second;
}

HttpResponse Router::Dispatch(const HttpRequest& request,
                              Trace* trace) const {
  bool deprecated = false;
  const std::string* path = &request.path;
  if (auto alias = aliases_.find(request.path); alias != aliases_.end()) {
    path = &alias->second;
    deprecated = true;
  }
  const std::string trace_id = trace == nullptr ? "" : trace->id();

  auto route = routes_.find(*path);
  if (route == routes_.end()) {
    return ApiError(404, "unknown path: " + request.path, trace_id);
  }
  auto method = route->second.find(request.method);
  if (method == route->second.end()) {
    HttpResponse response =
        ApiError(405, "method " + request.method + " not allowed for " +
                          request.path, trace_id);
    std::string allow;
    for (const auto& [name, handler] : route->second) {
      if (!allow.empty()) allow += ", ";
      allow += name;
    }
    response.headers["Allow"] = allow;
    return response;
  }

  HttpResponse response = method->second(request, trace);
  if (deprecated) {
    deprecated_requests_.fetch_add(1, std::memory_order_relaxed);
    response.headers["Deprecation"] = "true";
  }
  return response;
}

// --- server ------------------------------------------------------------------
//
// Epoll reactor (DESIGN.md §10). Each reactor thread owns an epoll
// instance, an eventfd wakeup, a hashed timer wheel, and the connection
// table for the fds it accepted; the listener is shared across reactors
// via EPOLLEXCLUSIVE. Handlers run on a fixed worker pool and post their
// responses back to the owning reactor as (fd, connection-id) validated
// completions, so a connection closed (or recycled) mid-dispatch can
// never receive another request's response.

namespace detail {

// Timer wheel granularity: deadlines are rounded to kTickMs, which is
// far below any meaningful idle/request timeout.
constexpr uint64_t kTickMs = 20;
constexpr size_t kWheelSlots = 512;

// epoll_event user-data tags for the two non-connection fds. Real
// connections carry their Connection* — always a heap address, never 1/2.
constexpr uint64_t kListenerTag = 1;
constexpr uint64_t kWakeTag = 2;

uint64_t SteadyMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t SteadyUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Monotonic counters shared by every reactor. Owned by HttpServer via
// shared_ptr so stats() keeps answering after Stop() tears the core down.
struct ServerCounters {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> idle_timeouts{0};
  std::atomic<uint64_t> deadline_timeouts{0};
  std::atomic<uint64_t> open{0};
  std::atomic<uint64_t> loop_iterations{0};
  std::atomic<uint64_t> requests{0};
};

enum class ConnState : uint8_t { kReadHeader, kReadBody, kDispatch, kWrite };

// One nonblocking connection. Owned and mutated exclusively by its
// reactor thread; workers only ever see the (fd, id) pair.
struct Connection {
  int fd = -1;
  uint64_t id = 0;  // generation token validated on dispatch completion
  ConnState state = ConnState::kReadHeader;
  std::string in;   // unconsumed inbound bytes
  std::string out;  // serialized response not yet written
  size_t out_offset = 0;
  bool close_after_write = false;
  bool peer_eof = false;
  uint32_t epoll_events = EPOLLIN;  // currently armed interest

  HttpRequest request;  // request being assembled
  bool keep_alive = false;
  size_t header_bytes = 0;
  size_t body_length = 0;
  uint64_t request_start_us = 0;  // first byte of the current request

  // Timer-wheel linkage (one pending deadline per connection).
  uint64_t deadline_ms = 0;
  bool deadline_is_idle = true;
  bool in_wheel = false;
  size_t wheel_slot = 0;
  std::list<Connection*>::iterator wheel_it;
};

class ReactorCore;

class Reactor {
 public:
  explicit Reactor(ReactorCore* core) : core_(core) {}
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  Status Init(bool shared_listener);
  void Run();
  void Wake();
  void PostCompletion(uint64_t id, int fd, HttpResponse response);

 private:
  void HandleTicks(uint64_t now_ms);
  void HandleAccept();
  void Admit(int fd);
  void Shed(int fd);
  // The Handle*/Continue*/Finish* chain returns false when it closed the
  // connection (the caller must not touch it again).
  bool HandleReadable(Connection* c);
  bool TryParse(Connection* c);
  void Dispatch(Connection* c);
  void ApplyCompletions();
  bool QueueResponse(Connection* c, const HttpResponse& response,
                     bool keep_alive);
  bool ContinueWrite(Connection* c);
  bool FinishResponse(Connection* c);
  void StartRequestTimer(Connection* c);
  void Schedule(Connection* c, uint64_t deadline_ms, bool idle);
  void Unschedule(Connection* c);
  void ExpireConnection(Connection* c);
  void CloseConnection(Connection* c);
  void UpdateInterest(Connection* c, uint32_t events);
  void CloseIdleConnections();
  void ForceCloseAll();

  ReactorCore* core_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint64_t next_conn_id_ = 1;
  uint64_t last_tick_ = 0;
  uint64_t drain_deadline_ms_ = 0;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::list<Connection*> wheel_[kWheelSlots];

  std::mutex completions_mutex_;
  struct Completion {
    uint64_t id;
    int fd;
    HttpResponse response;
  };
  std::vector<Completion> completions_;
};

// Owns the listener, the worker pool, and the reactor threads. Built on
// Start() and destroyed on Stop(), so a stopped server can be restarted.
class ReactorCore {
 public:
  ReactorCore(const HttpHandler* handler, const HttpServerOptions& options,
              ServerCounters* counters, MetricHistogram* loop_lag)
      : handler_(handler),
        options_(options),
        counters_(counters),
        loop_lag_(loop_lag) {}
  ~ReactorCore() { Shutdown(); }

  Status Start(uint16_t port);
  void Shutdown();

  uint16_t port() const { return port_; }
  int listen_fd() const { return listen_fd_.load(std::memory_order_acquire); }
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  const HttpHandler* handler_;
  const HttpServerOptions options_;
  ServerCounters* counters_;
  MetricHistogram* loop_lag_;
  std::unique_ptr<ThreadPool> workers_;

 private:
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::vector<std::thread> threads_;
};

Reactor::~Reactor() {
  ForceCloseAll();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status Reactor::Init(bool shared_listener) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::IoError("epoll_create1() failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Status::IoError("eventfd() failed");
  epoll_event wake{};
  wake.events = EPOLLIN;
  wake.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake) != 0) {
    return Status::IoError("epoll_ctl(wake) failed");
  }
  epoll_event listener{};
  // EPOLLEXCLUSIVE stops the thundering herd when several reactors share
  // the listener; with one reactor it is pointless (and EPOLL_CTL_MOD on
  // an exclusive fd is an error), so plain EPOLLIN suffices.
  listener.events = EPOLLIN | (shared_listener ? EPOLLEXCLUSIVE : 0u);
  listener.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, core_->listen_fd(), &listener) !=
      0) {
    return Status::IoError("epoll_ctl(listener) failed");
  }
  return Status::Ok();
}

void Reactor::Wake() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Reactor::PostCompletion(uint64_t id, int fd, HttpResponse response) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(Completion{id, fd, std::move(response)});
  }
  Wake();
}

void Reactor::Run() {
  std::vector<epoll_event> events(128);
  while (true) {
    const uint64_t now_ms = SteadyMs();
    HandleTicks(now_ms);
    ApplyCompletions();
    if (core_->stopping()) {
      if (drain_deadline_ms_ == 0) {
        drain_deadline_ms_ = now_ms + core_->options_.drain_timeout_ms;
        CloseIdleConnections();
      }
      if (conns_.empty() || now_ms >= drain_deadline_ms_) break;
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               static_cast<int>(kTickMs));
    const uint64_t batch_start_us = SteadyUs();
    for (int i = 0; i < n; ++i) {
      const epoll_event& event = events[i];
      if (event.data.u64 == kListenerTag) {
        HandleAccept();
        continue;
      }
      if (event.data.u64 == kWakeTag) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      Connection* c = static_cast<Connection*>(event.data.ptr);
      if (event.events & (EPOLLHUP | EPOLLERR)) {
        // Both directions are gone; any buffered request could not be
        // answered anyway.
        CloseConnection(c);
        continue;
      }
      bool alive = true;
      if (event.events & EPOLLIN) alive = HandleReadable(c);
      if (alive && (event.events & EPOLLOUT)) ContinueWrite(c);
    }
    ApplyCompletions();
    core_->counters_->loop_iterations.fetch_add(1, std::memory_order_relaxed);
    if (n > 0 && core_->loop_lag_ != nullptr) {
      core_->loop_lag_->Record(SteadyUs() - batch_start_us);
    }
  }
  ForceCloseAll();
}

void Reactor::HandleTicks(uint64_t now_ms) {
  const uint64_t tick = now_ms / kTickMs;
  if (last_tick_ == 0) {
    last_tick_ = tick;
    return;
  }
  if (tick <= last_tick_) return;
  uint64_t steps = tick - last_tick_;
  last_tick_ = tick;
  // A gap longer than one rotation would revisit slots; one full sweep
  // already inspects every pending deadline.
  steps = std::min<uint64_t>(steps, kWheelSlots);
  for (uint64_t i = 0; i < steps; ++i) {
    auto& slot = wheel_[(tick - i) % kWheelSlots];
    for (auto it = slot.begin(); it != slot.end();) {
      Connection* c = *it;
      if (c->deadline_ms <= now_ms) {
        // A deadline further than one rotation out parks in its slot
        // until a later visit (lazy re-check instead of a rounds field).
        it = slot.erase(it);
        c->in_wheel = false;
        ExpireConnection(c);
      } else {
        ++it;
      }
    }
  }
}

void Reactor::HandleAccept() {
  while (true) {
    const int listen_fd = core_->listen_fd();
    if (listen_fd < 0) return;
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Descriptor exhaustion: there is no fd to answer on, so the
        // shed is silent; the backlog drains when capacity returns.
        core_->counters_->shed.fetch_add(1, std::memory_order_relaxed);
        LOG_WARNING << "accept failed: out of file descriptors";
      }
      return;  // EAGAIN, or the listener was closed by Stop()
    }
    SERENADE_FAULT_POINT(FaultSite::kHttpAcceptOverload, {
      // Simulated fd pressure — shed exactly like the connection cap.
      Shed(fd);
      continue;
    });
    if (core_->counters_->open.load(std::memory_order_relaxed) >=
            core_->options_.max_connections ||
        core_->stopping()) {
      Shed(fd);
      continue;
    }
    Admit(fd);
  }
}

void Reactor::Admit(int fd) {
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  auto owned = std::make_unique<Connection>();
  Connection* c = owned.get();
  c->fd = fd;
  c->id = next_conn_id_++;
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.ptr = c;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    ::close(fd);
    return;
  }
  conns_[fd] = std::move(owned);
  core_->counters_->open.fetch_add(1, std::memory_order_relaxed);
  core_->counters_->accepted.fetch_add(1, std::memory_order_relaxed);
  if (core_->options_.idle_timeout_ms > 0) {
    Schedule(c, SteadyMs() + core_->options_.idle_timeout_ms, /*idle=*/true);
  }
}

void Reactor::Shed(int fd) {
  core_->counters_->shed.fetch_add(1, std::memory_order_relaxed);
  HttpResponse response = ApiError(503, "connection limit reached");
  response.headers["Retry-After"] =
      std::to_string(core_->options_.retry_after_seconds);
  const std::string bytes = SerializeResponse(response, /*keep_alive=*/false);
  // Best effort: the envelope is far below a fresh socket's send buffer,
  // so a single send either takes it whole or the peer is already gone.
  [[maybe_unused]] const ssize_t n =
      ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  ::close(fd);
}

bool Reactor::HandleReadable(Connection* c) {
  SERENADE_FAULT_POINT(FaultSite::kHttpServerStallRead, {
    // Simulated reactor stall: skip this readiness round. Level-triggered
    // epoll re-reports the buffered bytes on the next iteration.
    return true;
  });
  char chunk[16384];
  while (true) {
    const ssize_t n = ::recv(c->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      if (c->state == ConnState::kReadHeader && c->request_start_us == 0) {
        StartRequestTimer(c);
      }
      c->in.append(chunk, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(chunk)) break;  // likely drained
      continue;
    }
    if (n == 0) {
      c->peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(c);
    return false;
  }
  return TryParse(c);
}

bool Reactor::TryParse(Connection* c) {
  if (c->state == ConnState::kReadHeader) {
    const ParseHeadResult result = ParseRequestHead(
        c->in, &c->request, &c->keep_alive, &c->header_bytes, &c->body_length);
    switch (result) {
      case ParseHeadResult::kNeedMore:
        if (c->in.size() > kMaxHeaderBytes) {
          return QueueResponse(c, ApiError(400, "malformed request"),
                               /*keep_alive=*/false);
        }
        if (c->peer_eof) {
          CloseConnection(c);
          return false;
        }
        return true;
      case ParseHeadResult::kMalformed:
        return QueueResponse(c, ApiError(400, "malformed request"),
                             /*keep_alive=*/false);
      case ParseHeadResult::kOversized:
        // Fail fast: the declared length alone condemns the request; the
        // body is never buffered and the connection closes after the 413
        // (it is unusable with the unread payload in flight).
        return QueueResponse(
            c,
            ApiError(413, "request body exceeds the " +
                              std::to_string(kMaxBodyBytes) + "-byte limit"),
            /*keep_alive=*/false);
      case ParseHeadResult::kOk:
        c->state = ConnState::kReadBody;
        break;
    }
  }
  if (c->state == ConnState::kReadBody) {
    const size_t total = c->header_bytes + c->body_length;
    if (c->in.size() < total) {
      if (c->peer_eof) {
        CloseConnection(c);
        return false;
      }
      return true;
    }
    c->request.body = c->in.substr(c->header_bytes, c->body_length);
    c->in.erase(0, total);
    Dispatch(c);
  }
  return true;
}

void Reactor::Dispatch(Connection* c) {
  c->state = ConnState::kDispatch;
  c->request.parse_micros = SteadyUs() - c->request_start_us;
  // Drop read interest while the handler runs: level-triggered epoll
  // would otherwise spin on buffered pipelined bytes. EPOLLHUP/ERR are
  // still delivered on a zero mask, so a dying peer frees its slot.
  UpdateInterest(c, 0);
  if (core_->options_.request_deadline_ms == 0) Unschedule(c);
  HttpRequest request = std::move(c->request);
  c->request = HttpRequest{};
  const uint64_t id = c->id;
  const int fd = c->fd;
  core_->workers_->Schedule([this, id, fd, request = std::move(request)] {
    HttpResponse response;
    try {
      response = (*core_->handler_)(request);
    } catch (const std::exception& e) {
      LOG_ERROR << "handler threw: " << e.what();
      response = HttpResponse::Error(500, "internal error");
    }
    core_->counters_->requests.fetch_add(1, std::memory_order_relaxed);
    PostCompletion(id, fd, std::move(response));
  });
}

void Reactor::ApplyCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    auto it = conns_.find(done.fd);
    if (it == conns_.end()) continue;
    Connection* c = it->second.get();
    // The id check rejects completions for a connection that was closed
    // mid-dispatch and whose fd the kernel already recycled.
    if (c->id != done.id || c->state != ConnState::kDispatch) continue;
    QueueResponse(c, done.response, c->keep_alive);
  }
}

bool Reactor::QueueResponse(Connection* c, const HttpResponse& response,
                            bool keep_alive) {
  c->out = SerializeResponse(response, keep_alive);
  c->out_offset = 0;
  c->close_after_write = !keep_alive;
  c->state = ConnState::kWrite;
  // A response in flight must not stall forever on a non-reading peer:
  // bound the write with the idle timeout unless a request deadline is
  // already ticking.
  if (core_->options_.request_deadline_ms == 0 &&
      core_->options_.idle_timeout_ms > 0) {
    Schedule(c, SteadyMs() + core_->options_.idle_timeout_ms, /*idle=*/true);
  }
  return ContinueWrite(c);
}

bool Reactor::ContinueWrite(Connection* c) {
  if (c->state != ConnState::kWrite) return true;
  SERENADE_FAULT_POINT(FaultSite::kHttpServerCloseMidWrite, {
    // Crash mid-response: flush a strict prefix, then slam the door.
    const size_t remaining = c->out.size() - c->out_offset;
    const size_t prefix =
        remaining == 0 ? 0
                       : static_cast<size_t>(serenade_fi->RandBelow(remaining));
    if (prefix > 0) {
      [[maybe_unused]] const ssize_t n =
          ::send(c->fd, c->out.data() + c->out_offset, prefix, MSG_NOSIGNAL);
    }
    CloseConnection(c);
    return false;
  });
  while (c->out_offset < c->out.size()) {
    const ssize_t n = ::send(c->fd, c->out.data() + c->out_offset,
                             c->out.size() - c->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      c->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: resume from out_offset on EPOLLOUT.
      UpdateInterest(c, EPOLLOUT);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(c);
    return false;
  }
  return FinishResponse(c);
}

bool Reactor::FinishResponse(Connection* c) {
  c->out.clear();
  c->out.shrink_to_fit();  // a large response must not pin idle memory
  c->out_offset = 0;
  if (c->close_after_write || core_->stopping()) {
    CloseConnection(c);
    return false;
  }
  c->state = ConnState::kReadHeader;
  c->request_start_us = 0;
  UpdateInterest(c, EPOLLIN);
  if (core_->options_.idle_timeout_ms > 0) {
    Schedule(c, SteadyMs() + core_->options_.idle_timeout_ms, /*idle=*/true);
  } else {
    Unschedule(c);
  }
  if (!c->in.empty()) {
    // Pipelined keep-alive: the next request (or part of it) is already
    // buffered — parse it now instead of waiting for more bytes.
    StartRequestTimer(c);
    return TryParse(c);
  }
  if (c->peer_eof) {
    CloseConnection(c);
    return false;
  }
  return true;
}

void Reactor::StartRequestTimer(Connection* c) {
  c->request_start_us = SteadyUs();
  if (core_->options_.request_deadline_ms > 0) {
    Schedule(c, SteadyMs() + core_->options_.request_deadline_ms,
             /*idle=*/false);
  }
  // With no request deadline the idle deadline set on admission (or the
  // previous FinishResponse) deliberately keeps ticking un-refreshed, so
  // a slowloris peer trickling header bytes still expires.
}

void Reactor::Schedule(Connection* c, uint64_t deadline_ms, bool idle) {
  Unschedule(c);
  c->deadline_ms = deadline_ms;
  c->deadline_is_idle = idle;
  // Round UP to the next tick boundary: the sweep visits a slot at
  // now >= tick * kTickMs, so rounding down would visit while the
  // deadline is still (sub-tick) in the future and re-park the entry for
  // a full wheel rotation.
  const size_t slot =
      static_cast<size_t>(deadline_ms / kTickMs + 1) % kWheelSlots;
  wheel_[slot].push_front(c);
  c->wheel_slot = slot;
  c->wheel_it = wheel_[slot].begin();
  c->in_wheel = true;
}

void Reactor::Unschedule(Connection* c) {
  if (!c->in_wheel) return;
  wheel_[c->wheel_slot].erase(c->wheel_it);
  c->in_wheel = false;
}

void Reactor::ExpireConnection(Connection* c) {
  auto& counter = c->deadline_is_idle ? core_->counters_->idle_timeouts
                                      : core_->counters_->deadline_timeouts;
  counter.fetch_add(1, std::memory_order_relaxed);
  CloseConnection(c);
}

void Reactor::CloseConnection(Connection* c) {
  Unschedule(c);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  // Gauge drops before the peer can observe the FIN, so "saw the close"
  // implies "no longer counted" for external observers.
  core_->counters_->open.fetch_sub(1, std::memory_order_relaxed);
  ::close(c->fd);
  conns_.erase(c->fd);  // frees c
}

void Reactor::UpdateInterest(Connection* c, uint32_t events) {
  if (c->epoll_events == events) return;
  epoll_event event{};
  event.events = events;
  event.data.ptr = c;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &event);
  c->epoll_events = events;
}

void Reactor::CloseIdleConnections() {
  std::vector<Connection*> idle;
  for (auto& [fd, conn] : conns_) {
    if (conn->state == ConnState::kReadHeader && conn->request_start_us == 0) {
      idle.push_back(conn.get());
    }
  }
  for (Connection* c : idle) CloseConnection(c);
}

void Reactor::ForceCloseAll() {
  while (!conns_.empty()) CloseConnection(conns_.begin()->second.get());
}

Status ReactorCore::Start(uint16_t port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    ::close(fd);
    return Status::IoError("bind() failed for port " + std::to_string(port));
  }
  if (::listen(fd, 512) != 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  socklen_t length = sizeof(address);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  size_t worker_count = options_.worker_threads;
  if (worker_count == 0) {
    worker_count = std::max<size_t>(4, std::thread::hardware_concurrency());
  }
  workers_ = std::make_unique<ThreadPool>(worker_count);

  const size_t reactor_count = std::max<size_t>(1, options_.reactor_threads);
  for (size_t i = 0; i < reactor_count; ++i) {
    auto reactor = std::make_unique<Reactor>(this);
    const Status status = reactor->Init(reactor_count > 1);
    if (!status.ok()) {
      Shutdown();
      return status;
    }
    reactors_.push_back(std::move(reactor));
  }
  for (auto& reactor : reactors_) {
    threads_.emplace_back([r = reactor.get()] { r->Run(); });
  }
  return Status::Ok();
}

void ReactorCore::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
  for (auto& reactor : reactors_) reactor->Wake();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  // The pool drains queued handler tasks; their completions post into
  // still-live reactor objects (harmless — the loops have exited) and
  // must happen before the reactors and their eventfds are destroyed.
  workers_.reset();
  reactors_.clear();
}

}  // namespace detail

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)),
      options_(options),
      counters_(std::make_shared<detail::ServerCounters>()) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port) {
  if (core_ != nullptr) return Status::InvalidArgument("server already started");
  auto core = std::make_unique<detail::ReactorCore>(&handler_, options_,
                                                    counters_.get(), loop_lag_);
  SERENADE_RETURN_IF_ERROR(core->Start(port));
  port_ = core->port();
  core_ = std::move(core);
  return Status::Ok();
}

void HttpServer::Stop() {
  if (core_ == nullptr) return;
  core_->Shutdown();
  core_.reset();
}

uint64_t HttpServer::requests_served() const {
  return counters_->requests.load(std::memory_order_relaxed);
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.accepted = counters_->accepted.load(std::memory_order_relaxed);
  stats.shed = counters_->shed.load(std::memory_order_relaxed);
  stats.idle_timeouts =
      counters_->idle_timeouts.load(std::memory_order_relaxed);
  stats.deadline_timeouts =
      counters_->deadline_timeouts.load(std::memory_order_relaxed);
  stats.open_connections = counters_->open.load(std::memory_order_relaxed);
  stats.loop_iterations =
      counters_->loop_iterations.load(std::memory_order_relaxed);
  stats.requests_served = counters_->requests.load(std::memory_order_relaxed);
  return stats;
}

// --- client ------------------------------------------------------------------

HttpClient::~HttpClient() { Close(); }

Status HttpClient::Connect(uint16_t port) {
  Close();
  SERENADE_FAULT_POINT(FaultSite::kHttpConnect, {
    return Status::Unavailable("injected: connect refused by port " +
                               std::to_string(port));
  });
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IoError("socket() failed");
  const int enable = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);

  if (options_.connect_timeout_ms > 0) {
    // Non-blocking connect bounded by poll(), so an unresponsive peer
    // (e.g. a SYN-dropping backend) cannot stall the caller.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                             sizeof(address));
    if (rc != 0) {
      if (errno != EINPROGRESS) {
        Close();
        return Status::Unavailable("connect() failed to port " +
                                   std::to_string(port));
      }
      pollfd pending{fd_, POLLOUT, 0};
      const int ready =
          ::poll(&pending, 1, static_cast<int>(options_.connect_timeout_ms));
      if (ready == 0) {
        Close();
        return Status::DeadlineExceeded("connect timed out to port " +
                                        std::to_string(port));
      }
      int error = 0;
      socklen_t length = sizeof(error);
      if (ready < 0 ||
          ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &length) != 0 ||
          error != 0) {
        Close();
        return Status::Unavailable("connect() failed to port " +
                                   std::to_string(port));
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                       sizeof(address)) != 0) {
    Close();
    return Status::Unavailable("connect() failed to port " +
                               std::to_string(port));
  }

  if (options_.io_timeout_ms > 0) {
    timeval timeout{
        static_cast<time_t>(options_.io_timeout_ms / 1000),
        static_cast<suseconds_t>((options_.io_timeout_ms % 1000) * 1000)};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  }
  port_ = port;
  return Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<HttpResponse> HttpClient::RoundTrip(const std::string& request_text) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  SERENADE_FAULT_DELAY(FaultSite::kHttpLatency);
  SERENADE_FAULT_POINT(FaultSite::kHttpSend,
                       { return Status::IoError("injected: send failed"); });
  if (!WriteAll(fd_, request_text)) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("send timed out");
    }
    return Status::IoError("send failed");
  }

  std::string buffer;
  SERENADE_FAULT_POINT(FaultSite::kHttpRecv, {
    return Status::IoError("injected: connection reset mid-response");
  });
  switch (ReadUntil(fd_, &buffer, "\r\n\r\n")) {
    case ReadResult::kOk:
      break;
    case ReadResult::kTimeout:
      return Status::DeadlineExceeded("read timed out waiting for headers");
    case ReadResult::kClosed:
      return Status::IoError("connection closed while reading headers");
  }
  const size_t header_end = buffer.find("\r\n\r\n");
  const std::string head = buffer.substr(0, header_end);

  HttpResponse response;
  const size_t status_start = head.find(' ');
  if (status_start == std::string::npos || head.compare(0, 5, "HTTP/") != 0) {
    return Status::Corruption("bad status line");
  }
  response.status = std::atoi(head.c_str() + status_start + 1);

  // Parse every response header (lower-cased names) so callers can read
  // application headers such as the echoed X-Serenade-Trace-Id.
  size_t cursor = head.find("\r\n");
  cursor = cursor == std::string::npos ? head.size() : cursor + 2;
  while (cursor < head.size()) {
    size_t eol = head.find("\r\n", cursor);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(cursor, eol - cursor);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = ToLower(line.substr(0, colon));
      size_t value_start = colon + 1;
      while (value_start < line.size() && line[value_start] == ' ') {
        ++value_start;
      }
      response.headers[name] = line.substr(value_start);
    }
    cursor = eol + 2;
  }

  size_t body_length = 0;
  auto content_length = response.headers.find("content-length");
  if (content_length != response.headers.end()) {
    body_length = static_cast<size_t>(
        std::strtoull(content_length->second.c_str(), nullptr, 10));
    if (body_length > kMaxBodyBytes) {
      return Status::Corruption("response body of " +
                                std::to_string(body_length) +
                                " bytes exceeds the client limit");
    }
  }
  auto content_type = response.headers.find("content-type");
  if (content_type != response.headers.end()) {
    response.content_type = content_type->second;
  }
  const size_t total = header_end + 4 + body_length;
  if (buffer.size() < total) {
    switch (ReadExact(fd_, &buffer, total)) {
      case ReadResult::kOk:
        break;
      case ReadResult::kTimeout:
        return Status::DeadlineExceeded("read timed out mid-body");
      case ReadResult::kClosed:
        return Status::IoError("connection closed while reading body");
    }
  }
  response.body = buffer.substr(header_end + 4, body_length);
  // Models a middlebox or crashing peer that delivered the status line
  // and headers but cut the body short: status stays 200, body shrinks
  // to a strict prefix. Callers must not trust status alone.
  SERENADE_FAULT_POINT(FaultSite::kHttpTruncateBody, {
    response.body.resize(
        static_cast<size_t>(serenade_fi->RandBelow(response.body.size())));
  });
  return response;
}

StatusOr<HttpResponse> HttpClient::Get(
    const std::string& path_and_query,
    const std::map<std::string, std::string>& extra_headers) {
  std::string request_text = "GET " + path_and_query +
                             " HTTP/1.1\r\nHost: localhost\r\n"
                             "Connection: keep-alive\r\n";
  for (const auto& [name, value] : extra_headers) {
    request_text += name + ": " + value + "\r\n";
  }
  request_text += "\r\n";
  auto response = RoundTrip(request_text);
  if (!response.ok() && fd_ >= 0 &&
      response.status().code() != StatusCode::kDeadlineExceeded) {
    // Stale keep-alive connection: reconnect once and retry.
    SERENADE_RETURN_IF_ERROR(Connect(port_));
    return RoundTrip(request_text);
  }
  return response;
}

StatusOr<HttpResponse> HttpClient::Post(
    const std::string& path_and_query, const std::string& body,
    const std::map<std::string, std::string>& extra_headers) {
  std::string request_text =
      "POST " + path_and_query +
      " HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: " + std::to_string(body.size()) +
      "\r\nConnection: keep-alive\r\n";
  for (const auto& [name, value] : extra_headers) {
    request_text += name + ": " + value + "\r\n";
  }
  request_text += "\r\n" + body;
  auto response = RoundTrip(request_text);
  if (!response.ok() && fd_ >= 0 &&
      response.status().code() != StatusCode::kDeadlineExceeded) {
    SERENADE_RETURN_IF_ERROR(Connect(port_));
    return RoundTrip(request_text);
  }
  return response;
}

}  // namespace serenade
