// Minimal JSON support for the REST serving layer: a writer with correct
// string escaping, and a small recursive-descent parser (objects, arrays,
// strings, numbers, booleans, null) used by the load generator and tests
// to decode responses. Not a general-purpose library — no unicode escapes
// beyond \uXXXX pass-through, numbers parsed as doubles.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace serenade {

/// A parsed JSON value (immutable after parse).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  static JsonValue Null();
  static JsonValue Bool(bool value);
  static JsonValue Number(double value);
  static JsonValue String(std::string value);
  static JsonValue Array(std::vector<JsonValue> values);
  static JsonValue Object(std::map<std::string, JsonValue> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document. Trailing garbage is an error.
StatusOr<JsonValue> ParseJson(const std::string& text);

/// Serialises a parsed value back to compact JSON (numbers as doubles,
/// object keys sorted) — used by the gateway to splice backend sub-batch
/// results into one merged response.
std::string SerializeJson(const JsonValue& value);

/// Incremental writer producing compact JSON.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& key);
  JsonWriter& Value(const std::string& value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(double value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();
  /// Splices an already-serialised JSON value verbatim (caller guarantees
  /// it is well-formed) — used to merge proxied sub-results into a batch
  /// response without a reparse.
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void AppendEscaped(const std::string& value);

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace serenade
