// Minimal HTTP/1.1 server and client over POSIX sockets — the stand-in
// for the Actix web framework the paper's Rust implementation uses. The
// server is an epoll reactor with a fixed worker pool: connection count
// is decoupled from thread count, so thousands of idle keep-alive
// connections cost file descriptors, not stacks. The client supports
// keep-alive request pipelining for the load generator.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace serenade {

class MetricHistogram;

/// Largest accepted request body; beyond it the server replies 413 with
/// the API error envelope and closes the connection.
inline constexpr size_t kMaxBodyBytes = 4 * 1024 * 1024;

/// A parsed HTTP request.
struct HttpRequest {
  std::string method;                           // "GET", "POST", ...
  std::string path;                             // "/recommend"
  std::map<std::string, std::string> query;     // decoded query params
  std::map<std::string, std::string> headers;   // lower-cased names
  std::string body;
  /// Time the server spent reading + parsing this request off the wire
  /// (the `parse` stage of a request trace).
  uint64_t parse_micros = 0;

  /// Query parameter lookup with default.
  std::string Param(const std::string& key,
                    const std::string& fallback = "") const;

  /// Header lookup (name is matched lower-cased) with default.
  std::string Header(const std::string& name,
                     const std::string& fallback = "") const;
};

/// A response to serialise.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  /// Extra response headers (e.g. X-Serenade-Trace-Id). Content-Type,
  /// Content-Length, and Connection are managed by the server and are
  /// skipped here if present.
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header lookup (name is matched lower-cased) with default.
  std::string Header(const std::string& name,
                     const std::string& fallback = "") const;

  static HttpResponse Json(std::string body);
  static HttpResponse Text(std::string body, std::string content_type);
  static HttpResponse Error(int status, const std::string& message);
};

/// Request handler; invoked concurrently from worker-pool threads (never
/// on the event loop).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Builds the unified API error envelope shared by both serving tiers:
///   {"error":{"code":"not_found","message":"...","trace_id":"..."}}
/// `code` is derived from the HTTP status; the message is JSON-escaped.
/// An empty trace id omits the field (offline tools, malformed requests
/// rejected before a trace exists).
HttpResponse ApiError(int status, const std::string& message,
                      const std::string& trace_id = "");

/// The stable machine-readable code string for an HTTP error status
/// ("bad_request", "not_found", "method_not_allowed", "payload_too_large",
/// "conflict", "too_many_requests", "unavailable", "internal").
const char* ApiErrorCode(int status);

/// Maps a Status code onto the HTTP status the API surfaces for it
/// (kInvalidArgument=400, kNotFound/kIoError=404, kCorruption=409,
/// kResourceExhausted=429, kUnavailable=503, kDeadlineExceeded=504,
/// anything else 500).
int HttpStatusForStatus(const Status& status);

/// Method+path dispatch table shared by the pod server and the cluster
/// gateway (the /v1 API surface). Routes are registered once at startup
/// (Handle/Alias are not thread-safe) and dispatched concurrently from
/// connection threads. Dispatch returns:
///   * the handler's response for a registered method+path,
///   * 405 with an `Allow` header when the path exists but the method
///     does not,
///   * 404 for unknown paths,
/// both errors as the unified JSON envelope. Legacy paths registered via
/// Alias() run the canonical path's handler unchanged, then stamp a
/// `Deprecation: true` header and bump the deprecated-request counter —
/// alias responses stay byte-identical to the canonical route's.
class Router {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&, Trace*)>;

  /// Registers `handler` for `method` (upper-case) on `path`.
  void Handle(std::string method, std::string path, Handler handler);

  /// Registers `legacy_path` as a deprecated alias of `canonical_path`
  /// for every method registered on the canonical path (call after the
  /// canonical registrations).
  void Alias(std::string legacy_path, std::string canonical_path);

  /// Dispatches one request; `trace` is forwarded to the handler (may be
  /// null).
  HttpResponse Dispatch(const HttpRequest& request, Trace* trace) const;

  /// Resolves an alias to its canonical path (identity for canonical or
  /// unknown paths) — used by callers that key per-route metrics.
  const std::string& CanonicalPath(const std::string& path) const;

  /// Requests served through a deprecated alias (the
  /// serenade_http_deprecated_requests_total metric source).
  uint64_t deprecated_requests() const {
    return deprecated_requests_.load(std::memory_order_relaxed);
  }

 private:
  std::map<std::string, std::map<std::string, Handler>> routes_;
  std::map<std::string, std::string> aliases_;
  mutable std::atomic<uint64_t> deprecated_requests_{0};
};

/// Tuning for the reactor server. The defaults suit the in-repo tests
/// and benchmarks; the serving tools expose each knob as a flag.
struct HttpServerOptions {
  /// Open-connection ceiling. At the cap new connections are accepted,
  /// answered with a 503 envelope carrying `Retry-After`, and closed
  /// (graceful shed — the client sees a parseable response, not a RST).
  size_t max_connections = 10000;
  /// A connection with no in-flight request that stays silent this long
  /// is closed. Deliberately NOT refreshed per byte once a request has
  /// started, so slowloris clients trickling one header byte at a time
  /// still hit it. 0 disables.
  uint64_t idle_timeout_ms = 60000;
  /// Wall-clock budget for one request, measured from its first byte
  /// through body read, dispatch, and response write; on expiry the
  /// connection is closed (the response can no longer be trusted to
  /// arrive in time). 0 disables.
  uint64_t request_deadline_ms = 0;
  /// Event-loop threads. Each runs its own epoll instance and timer
  /// wheel; the listener is shared via EPOLLEXCLUSIVE.
  size_t reactor_threads = 1;
  /// Handler threads (Router dispatch runs here, never on the event
  /// loop). 0 = max(4, hardware_concurrency()).
  size_t worker_threads = 0;
  /// Retry-After seconds stamped on connection-cap 503 sheds.
  int retry_after_seconds = 1;
  /// Stop() grace period for in-flight requests: idle connections close
  /// immediately, busy ones get this long to finish their response.
  uint64_t drain_timeout_ms = 5000;
};

/// Monotonic server counters (a consistent-enough snapshot; each field
/// is individually atomic).
struct HttpServerStats {
  uint64_t accepted = 0;            ///< connections admitted
  uint64_t shed = 0;                ///< connections refused with 503 (or EMFILE)
  uint64_t idle_timeouts = 0;       ///< closed by the idle timer
  uint64_t deadline_timeouts = 0;   ///< closed by the request deadline
  uint64_t open_connections = 0;    ///< currently open (gauge)
  uint64_t loop_iterations = 0;     ///< reactor loop wakeups
  uint64_t requests_served = 0;     ///< handler invocations completed
};

namespace detail {
class ReactorCore;
struct ServerCounters;
}  // namespace detail

/// Event-driven HTTP server: N reactor threads multiplex nonblocking
/// connections through per-connection state machines (read-headers →
/// read-body → dispatch → write-response, with partial-write resume and
/// pipelined keep-alive), handlers run on a fixed worker pool, and a
/// hashed timer wheel enforces idle/deadline timeouts. See DESIGN.md §10.
class HttpServer {
 public:
  explicit HttpServer(HttpHandler handler, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds to 127.0.0.1:port (port 0 = ephemeral) and starts serving.
  Status Start(uint16_t port = 0);

  /// Graceful shutdown: stops accepting, closes idle connections, drains
  /// in-flight requests (bounded by drain_timeout_ms), joins the reactor
  /// and worker threads. Idempotent; Start() may be called again after.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  uint64_t requests_served() const;

  /// Snapshot of the reactor counters (survives Stop()).
  HttpServerStats stats() const;

  const HttpServerOptions& options() const { return options_; }

  /// Optional event-loop lag histogram (microseconds spent processing one
  /// epoll batch). Call before Start(); the histogram must outlive the
  /// server.
  void set_loop_lag_histogram(MetricHistogram* histogram) {
    loop_lag_ = histogram;
  }

 private:
  HttpHandler handler_;
  HttpServerOptions options_;
  uint16_t port_ = 0;
  MetricHistogram* loop_lag_ = nullptr;
  // Counters live outside the core so stats()/requests_served() keep
  // answering after Stop() tears the reactor down.
  std::shared_ptr<detail::ServerCounters> counters_;
  std::unique_ptr<detail::ReactorCore> core_;
};

/// Deadlines for HttpClient operations; 0 means "wait forever" (the
/// historical behaviour, still used by trusted in-process tests).
struct HttpClientOptions {
  uint64_t connect_timeout_ms = 0;  ///< non-blocking connect deadline
  uint64_t io_timeout_ms = 0;       ///< per-recv/send deadline (SO_*TIMEO)
};

/// Blocking HTTP/1.1 client with keep-alive: one instance per connection.
/// With deadlines configured, a stalled peer surfaces as a distinct
/// kDeadlineExceeded status instead of blocking the caller forever.
class HttpClient {
 public:
  HttpClient() = default;
  explicit HttpClient(HttpClientOptions options) : options_(options) {}
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to 127.0.0.1:port. Honours connect_timeout_ms.
  Status Connect(uint16_t port);

  /// Sends a GET and reads the full response. Reconnects once on a stale
  /// keep-alive connection (but never retries after a timeout: the peer
  /// is slow, not stale, and a retry would double the wait).
  /// `extra_headers` are appended verbatim to the request (used by the
  /// gateway to stamp X-Serenade-Trace-Id on proxied requests).
  StatusOr<HttpResponse> Get(
      const std::string& path_and_query,
      const std::map<std::string, std::string>& extra_headers = {});

  /// Sends a POST with the given body (Content-Type: application/json).
  /// `extra_headers` as in Get().
  StatusOr<HttpResponse> Post(
      const std::string& path_and_query, const std::string& body,
      const std::map<std::string, std::string>& extra_headers = {});

  void Close();

  const HttpClientOptions& options() const { return options_; }

 private:
  StatusOr<HttpResponse> RoundTrip(const std::string& request_text);

  HttpClientOptions options_;
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Percent-decodes a URL component ("%2C" -> ",", "+" -> " ").
std::string UrlDecode(const std::string& text);

}  // namespace serenade
