// Post-prediction business rules (Section 4.2): "We additionally apply
// business rules to the recommendations to remove unavailable products
// and to filter for adult products."
#pragma once

#include <cstddef>
#include <vector>

#include "core/recommender.h"
#include "data/synthetic.h"

namespace serenade {

struct BusinessRulesConfig {
  bool filter_unavailable = true;
  bool filter_adult = true;
  /// Number of items the shop frontend renders (the paper: 21).
  size_t max_items = 21;
};

/// Applies the configured filters and truncates to max_items, preserving
/// score order. Items outside the catalog are dropped defensively.
std::vector<ScoredItem> ApplyBusinessRules(const std::vector<ScoredItem>& raw,
                                           const ItemCatalog& catalog,
                                           const BusinessRulesConfig& config);

}  // namespace serenade
