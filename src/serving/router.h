// Sticky-session routing — the stand-in for Kubernetes session affinity
// via istio sidecars (Section 4.2). All requests of one session must land
// on the machine that owns that session's evolving state, so routing is a
// pure hash of the session key: deterministic, state-free, and identical
// on every frontend.
#pragma once

#include <cstddef>
#include <string>

namespace serenade {

/// Maps session keys to serving-machine indices.
class StickySessionRouter {
 public:
  explicit StickySessionRouter(size_t num_servers);

  /// The server that owns this session. Stable across calls.
  size_t ServerFor(const std::string& session_key) const;

  size_t num_servers() const { return num_servers_; }

 private:
  size_t num_servers_;
};

}  // namespace serenade
