// Bounded keep-alive connection pool for HttpClient: the gateway (and
// any other fan-out caller) checks a connected client out per request
// and returns it afterwards, so the per-request TCP connect collapses to
// a map lookup once the pool is warm. Endpoints are loopback ports (the
// in-repo cluster abstraction); each endpoint keeps at most
// max_idle_per_endpoint parked connections.
//
// Contract: callers release with reusable=false after any transport
// error (close-on-error) — a connection that failed mid-exchange may
// hold half a response and would corrupt the next request on it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "serving/http.h"

namespace serenade {

struct HttpClientPoolConfig {
  /// Idle connections parked per endpoint; beyond it a released client
  /// is discarded (closed).
  size_t max_idle_per_endpoint = 8;
  /// Timeouts applied to every pooled connection.
  HttpClientOptions client;
};

/// Thread-safe. Acquire() pops an idle pooled connection when one exists
/// and dials a fresh one otherwise; Release() parks it for the next
/// caller (bounded) or closes it.
class HttpClientPool {
 public:
  explicit HttpClientPool(HttpClientPoolConfig config)
      : config_(config) {}

  HttpClientPool(const HttpClientPool&) = delete;
  HttpClientPool& operator=(const HttpClientPool&) = delete;

  /// A connected client for `port` — pooled if available, freshly dialed
  /// otherwise. Connection failures surface as the Connect() status.
  StatusOr<std::unique_ptr<HttpClient>> Acquire(uint16_t port);

  /// Returns a client after use. reusable=false (transport error, or a
  /// response carrying `Connection: close`) closes it instead of parking.
  void Release(uint16_t port, std::unique_ptr<HttpClient> client,
               bool reusable);

  /// Idle connections currently parked for `port`.
  size_t IdleCount(uint16_t port) const;

  uint64_t acquires_total() const {
    return acquires_.load(std::memory_order_relaxed);
  }
  uint64_t reuses_total() const {
    return reuses_.load(std::memory_order_relaxed);
  }
  uint64_t discards_total() const {
    return discards_.load(std::memory_order_relaxed);
  }

  /// Fraction of acquires served by a parked connection, in [0, 1]
  /// (0 before the first acquire).
  double ReuseRatio() const;

 private:
  const HttpClientPoolConfig config_;
  mutable std::mutex mutex_;
  std::map<uint16_t, std::vector<std::unique_ptr<HttpClient>>> idle_;
  std::atomic<uint64_t> acquires_{0};
  std::atomic<uint64_t> reuses_{0};
  std::atomic<uint64_t> discards_{0};
};

}  // namespace serenade
