// The REST face of a Serenade serving machine: binds a SerenadeService to
// an HttpServer and runs the background TTL janitor. Routes:
//   GET  /recommend?session_id=<key>&item_id=<id>[&consent=true|false]
//        -> {"items":[...],"scores":[...]}
//   GET  /healthz  -> {"status":"ok","index_version":N}
//   GET  /stats    -> request / session-store / index-snapshot counters
//   GET  /metrics  -> Prometheus text exposition rendered by the shared
//                     MetricsRegistry (src/obs): the same counters plus
//                     request-latency quantiles and per-stage latency
//                     histograms (what the paper's Kubernetes deployment
//                     scrapes for its dashboards)
//   POST /admin/reload[?path=<index file>]
//        -> hot-swaps the serving index to a newly built artifact with
//           zero downtime; "" path re-reads the current source. Responds
//           with the published version on success.
//
// Observability: every /recommend request carries a Trace (adopting an
// inbound X-Serenade-Trace-Id, e.g. from the cluster gateway, or minting
// one), whose id is echoed on the response. Per-stage timings feed the
// serenade_stage_duration_microseconds{stage=...} histograms, and
// requests slower than ServerConfig::trace.slow_request_micros emit a
// sampled structured log line keyed by the trace id.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/http.h"
#include "serving/service.h"

namespace serenade {

/// Trace-context header stamped by the gateway and echoed by pods.
inline constexpr char kTraceIdHeader[] = "X-Serenade-Trace-Id";

struct ServerConfig {
  uint16_t port = 0;  ///< 0 = pick an ephemeral port
  /// Background eviction interval for expired sessions (0 = disabled).
  uint64_t janitor_interval_ms = 0;
  /// Slow-request logging policy (threshold 0 = disabled).
  TraceConfig trace;
};

/// One serving machine (a "Serenade pod" in Figure 1).
class SerenadeServer {
 public:
  SerenadeServer(std::unique_ptr<SerenadeService> service,
                 ServerConfig config);
  ~SerenadeServer();

  Status Start();
  void Stop();

  uint16_t port() const { return http_ ? http_->port() : 0; }
  SerenadeService& service() { return *service_; }
  uint64_t requests_served() const {
    return http_ ? http_->requests_served() : 0;
  }

  /// The pod's metric registry (handed to tests and future collectors).
  MetricsRegistry& metrics() { return registry_; }

 private:
  void RegisterMetrics();

  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleRecommend(const HttpRequest& request, Trace* trace);
  HttpResponse HandleAdminReload(const HttpRequest& request);
  HttpResponse HandleStats();

  /// Folds a finished request trace into the per-stage histograms.
  void RecordStageMetrics(const Trace& trace);

  std::unique_ptr<SerenadeService> service_;
  ServerConfig config_;
  std::unique_ptr<HttpServer> http_;
  std::atomic<bool> stopping_{false};
  std::thread janitor_;

  // Shared metrics substrate: /metrics is rendered from this registry.
  MetricsRegistry registry_;
  MetricHistogram* recommend_latency_micros_ = nullptr;
  MetricHistogram* stage_micros_[kNumTraceStages] = {};
  SlowRequestLogger slow_logger_;
};

}  // namespace serenade
