// The REST face of a Serenade serving machine: binds a SerenadeService to
// an HttpServer and runs the background TTL janitor. Routes:
//   GET  /recommend?session_id=<key>&item_id=<id>[&consent=true|false]
//        -> {"items":[...],"scores":[...]}
//   GET  /healthz  -> {"status":"ok","index_version":N}
//   GET  /stats    -> request / session-store / index-snapshot counters
//   GET  /metrics  -> the same counters plus request-latency quantiles in
//                     Prometheus text exposition format (what the paper's
//                     Kubernetes deployment scrapes for its dashboards)
//   POST /admin/reload[?path=<index file>]
//        -> hot-swaps the serving index to a newly built artifact with
//           zero downtime; "" path re-reads the current source. Responds
//           with the published version on success.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "common/histogram.h"
#include "serving/http.h"
#include "serving/service.h"

namespace serenade {

struct ServerConfig {
  uint16_t port = 0;  ///< 0 = pick an ephemeral port
  /// Background eviction interval for expired sessions (0 = disabled).
  uint64_t janitor_interval_ms = 0;
};

/// One serving machine (a "Serenade pod" in Figure 1).
class SerenadeServer {
 public:
  SerenadeServer(std::unique_ptr<SerenadeService> service,
                 ServerConfig config);
  ~SerenadeServer();

  Status Start();
  void Stop();

  uint16_t port() const { return http_ ? http_->port() : 0; }
  SerenadeService& service() { return *service_; }
  uint64_t requests_served() const {
    return http_ ? http_->requests_served() : 0;
  }

 private:
  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleRecommend(const HttpRequest& request);
  HttpResponse HandleAdminReload(const HttpRequest& request);
  HttpResponse HandleStats();
  HttpResponse HandleMetrics();

  std::unique_ptr<SerenadeService> service_;
  ServerConfig config_;
  std::unique_ptr<HttpServer> http_;
  std::atomic<bool> stopping_{false};
  std::thread janitor_;

  // Server-side latency of /recommend handling, for /metrics. Sharded so
  // concurrent connection threads don't serialise on one lock; merged on
  // scrape.
  ShardedHistogram recommend_latency_micros_;
};

}  // namespace serenade
