// The REST face of a Serenade serving machine: binds a SerenadeService to
// an HttpServer (through the micro-batching BatchExecutor) and runs the
// background TTL janitor. The API is versioned under /v1:
//   GET  /v1/recommend?session_id=<key>&item_id=<id>[&consent=true|false]
//                     [&engine=vmis|ann]
//        -> {"items":[...],"scores":[...]}
//   POST /v1/recommend   body {"session_id":"k","item_id":N[,"consent":b]
//                              [,"engine":"vmis"|"ann"]}
//        -> same response; single requests from JSON-speaking clients
//        Both spellings pick the retrieval family per request; the
//        response carries X-Serenade-Engine with the engine that actually
//        served (ann degrades to vmis when no embeddings are attached).
//   POST /v1/recommend:batch   body {"requests":[<single bodies>...]}
//        -> {"results":[{"items":..,"scores":..} | {"error":{...}}, ...]}
//        order-preserving; one bad item never fails its siblings
//   GET  /v1/healthz  -> {"status":"ok","index_version":N}
//   GET  /v1/stats    -> request / session-store / index-snapshot counters
//   GET  /v1/metrics  -> Prometheus text exposition rendered by the shared
//                        MetricsRegistry (src/obs), including batch
//                        occupancy, queue wait, and coalescing factor
//   POST /v1/admin/index/reload[?path=<index file>]
//        -> hot-swaps the serving index with zero downtime
//   POST /v1/admin/index/delta  -> applies a streaming freshness delta
//   POST /v1/admin/embeddings/reload[?path=<embedding file>]
//        -> hot-swaps the ANN engine's embedding artifact (409-style
//           error when this pod has no embedding manager attached)
//
// Admin endpoints live under the uniform /v1/admin/<subsystem>/<verb>
// namespace; the replication subsystem (src/replication) registers its
// /v1/admin/replication/* and /v1/admin/sessions/* routes on the same
// router. Legacy paths (/recommend, /healthz, /stats, /metrics,
// /admin/reload, /v1/admin/reload, /v1/admin/delta) remain as aliases
// that serve byte-identical responses but stamp `Deprecation: true` and
// count into serenade_http_deprecated_requests_total. Unknown paths get a 404 and
// wrong methods a 405 (with Allow), both as the unified error envelope
// {"error":{"code":...,"message":...,"trace_id":...}} (see API.md).
//
// Observability: every request carries a Trace (adopting an inbound
// X-Serenade-Trace-Id, e.g. from the cluster gateway, or minting one),
// whose id is echoed on the response. Per-stage timings of recommend
// requests feed the serenade_stage_duration_microseconds{stage=...}
// histograms, and requests slower than
// ServerConfig::trace.slow_request_micros emit a sampled structured log
// line keyed by the trace id.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/batch_executor.h"
#include "serving/http.h"
#include "serving/json.h"
#include "serving/service.h"

namespace serenade {

/// Trace-context header stamped by the gateway and echoed by pods.
inline constexpr char kTraceIdHeader[] = "X-Serenade-Trace-Id";

/// Response header naming the retrieval family that actually served a
/// recommend request ("vmis" | "ann"). The gateway reads it to detect a
/// dead ANN arm degrading to VMIS; clients and tests read it to verify
/// A/B bucket assignment.
inline constexpr char kEngineHeader[] = "X-Serenade-Engine";

struct ServerConfig {
  uint16_t port = 0;  ///< 0 = pick an ephemeral port
  /// Background eviction interval for expired sessions (0 = disabled).
  uint64_t janitor_interval_ms = 0;
  /// Micro-batching knobs; the default (max_batch_size = 1) is a
  /// pass-through identical to the pre-batching request path.
  BatchExecutorConfig batch;
  /// Largest accepted client-side batch (/v1/recommend:batch); larger
  /// requests are rejected with 413.
  size_t max_batch_items = 128;
  /// Slow-request logging policy (threshold 0 = disabled).
  TraceConfig trace;
  /// Retry-After stamped on every 429 (load-shed) response, seconds.
  uint64_t retry_after_seconds = 1;
  /// Reactor tuning (connection cap, idle/deadline timeouts, thread
  /// counts); the 503 connection-shed Retry-After mirrors
  /// retry_after_seconds.
  HttpServerOptions http;
};

/// Hooks the replication subsystem installs around session writes (set
/// before Start()). `divert` runs before a recommend request executes
/// locally: a non-nullopt result is returned to the client instead of
/// executing (a 307 redirect or a proxied result while the session's key
/// range is mid-hand-off); nullopt admits the write, and the server then
/// calls `done(key)` as soon as the local execution finishes — the
/// hand-off cutover uses that in-flight accounting to know when a key's
/// value has quiesced. `slot_json` carries the single-request JSON body
/// on the batch path so a diverted slot can be proxied verbatim ("" on
/// the single-request paths).
struct WriteHooks {
  std::function<std::optional<HttpResponse>(const std::string& session_key,
                                            bool batch_slot,
                                            const std::string& slot_json)>
      divert;
  std::function<void(const std::string& session_key)> done;
};

/// One serving machine (a "Serenade pod" in Figure 1).
class SerenadeServer {
 public:
  SerenadeServer(std::unique_ptr<SerenadeService> service,
                 ServerConfig config);
  ~SerenadeServer();

  Status Start();
  void Stop();

  uint16_t port() const { return http_ ? http_->port() : 0; }
  SerenadeService& service() { return *service_; }
  BatchExecutor& executor() { return *executor_; }
  uint64_t requests_served() const {
    return http_ ? http_->requests_served() : 0;
  }
  /// Reactor counters of the pod's front door (zeros before Start()).
  HttpServerStats http_stats() const {
    return http_ ? http_->stats() : HttpServerStats{};
  }

  /// The pod's metric registry (handed to tests and future collectors).
  MetricsRegistry& metrics() { return registry_; }

  /// The pod's route table. Attached subsystems (replication) register
  /// their /v1/admin/* routes here before Start(); the Router is not
  /// thread-safe to mutate once the server is serving.
  Router& router() { return router_; }

  /// Installs the replication write hooks (see WriteHooks). Call before
  /// Start().
  void set_write_hooks(WriteHooks hooks) { write_hooks_ = std::move(hooks); }

  /// Appends extra fields to the /v1/healthz (resp. /v1/stats) JSON
  /// object — how replication surfaces replica lag and the ring epoch
  /// without the server depending on it. Call before Start(); callbacks
  /// must be thread-safe.
  void add_healthz_extra(std::function<void(JsonWriter&)> fn) {
    healthz_extras_.push_back(std::move(fn));
  }
  void add_stats_extra(std::function<void(JsonWriter&)> fn) {
    stats_extras_.push_back(std::move(fn));
  }

  /// Click observer for the freshness pipeline: invoked once per
  /// successfully served recommend request (single and batch slots) with
  /// the accepted (session key, item). Set before Start(); the observer
  /// must be cheap and non-blocking (in practice ClickTap::Observe).
  void set_click_observer(
      std::function<void(const std::string&, ItemId)> observer) {
    click_observer_ = std::move(observer);
  }

  /// Applies a streaming freshness delta over the pod's pinned base
  /// snapshot (also exposed as POST /v1/admin/delta) and records the
  /// click->servable latency of the sessions it adds. kAlreadyExists
  /// passes through (idempotent re-delivery).
  Status ApplyDelta(const IndexDelta& delta);

 private:
  void RegisterMetrics();
  void BuildRoutes();

  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleRecommendGet(const HttpRequest& request, Trace* trace);
  HttpResponse HandleRecommendPost(const HttpRequest& request, Trace* trace);
  HttpResponse HandleRecommendBatch(const HttpRequest& request, Trace* trace);
  HttpResponse HandleHealthz();
  HttpResponse HandleAdminReload(const HttpRequest& request, Trace* trace);
  HttpResponse HandleAdminDelta(const HttpRequest& request, Trace* trace);
  HttpResponse HandleAdminEmbeddingsReload(const HttpRequest& request,
                                           Trace* trace);
  HttpResponse HandleStats();

  /// Runs one parsed request through the executor and serialises the
  /// result (shared by the GET and POST single-recommend routes).
  HttpResponse RunRecommend(const RecommendRequest& request, Trace* trace);

  /// Folds a finished request trace into the per-stage histograms.
  void RecordStageMetrics(const Trace& trace);

  std::unique_ptr<SerenadeService> service_;
  ServerConfig config_;
  std::unique_ptr<BatchExecutor> executor_;
  Router router_;
  std::unique_ptr<HttpServer> http_;
  std::atomic<bool> stopping_{false};
  std::thread janitor_;

  // Shared metrics substrate: /metrics is rendered from this registry.
  MetricsRegistry registry_;
  MetricHistogram* recommend_latency_micros_ = nullptr;
  /// Per-retrieval-family request latency ([0]=vmis, [1]=ann, indexed by
  /// the *resolved* engine) — the pod-side half of the A/B read-out.
  MetricHistogram* engine_latency_micros_[2] = {};
  std::atomic<uint64_t> engine_requests_[2] = {{0}, {0}};
  MetricHistogram* reactor_loop_lag_micros_ = nullptr;
  MetricHistogram* stage_micros_[kNumTraceStages] = {};
  /// Click->servable freshness latency, recorded when an applied delta
  /// carries observe timestamps for its newly sealed sessions.
  MetricHistogram* click_to_servable_ms_ = nullptr;
  /// 429 responses that left this pod (load shedding), for the
  /// serenade_shed_responses_total counter.
  std::atomic<uint64_t> shed_responses_{0};
  std::function<void(const std::string&, ItemId)> click_observer_;
  SlowRequestLogger slow_logger_;
  WriteHooks write_hooks_;
  std::vector<std::function<void(JsonWriter&)>> healthz_extras_;
  std::vector<std::function<void(JsonWriter&)>> stats_extras_;
};

}  // namespace serenade
