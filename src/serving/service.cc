#include "serving/service.h"

#include <charconv>

namespace serenade {

std::string EncodeSession(const EvolvingSession& session) {
  std::string out;
  for (size_t i = 0; i < session.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(session[i]);
  }
  return out;
}

EvolvingSession DecodeSession(const std::string& encoded) {
  EvolvingSession session;
  size_t start = 0;
  while (start < encoded.size()) {
    size_t end = encoded.find(',', start);
    if (end == std::string::npos) end = encoded.size();
    uint32_t item = 0;
    const auto result = std::from_chars(encoded.data() + start,
                                        encoded.data() + end, item);
    if (result.ec == std::errc() && result.ptr == encoded.data() + end) {
      session.push_back(item);
    }
    start = end + 1;
  }
  return session;
}

SerenadeService::SerenadeService(std::shared_ptr<const SessionIndex> index,
                                 ItemCatalog catalog, ServiceConfig config)
    : index_(std::move(index)),
      catalog_(std::move(catalog)),
      config_(config) {}

StatusOr<std::unique_ptr<SerenadeService>> SerenadeService::Create(
    std::shared_ptr<const SessionIndex> index, ItemCatalog catalog,
    ServiceConfig config) {
  if (index == nullptr) {
    return Status::InvalidArgument("index must not be null");
  }
  if (config.knn.m > index->max_sessions_per_item()) {
    return Status::InvalidArgument(
        "knn.m exceeds the index's max_sessions_per_item; rebuild the index "
        "with a larger m");
  }
  auto service = std::unique_ptr<SerenadeService>(
      new SerenadeService(std::move(index), std::move(catalog), config));
  auto store = SessionStore::Open(config.store);
  if (!store.ok()) return store.status();
  service->store_ = std::move(store).value();
  return service;
}

std::unique_ptr<VmisKnn> SerenadeService::AcquireRecommender() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!recommender_pool_.empty()) {
      auto recommender = std::move(recommender_pool_.back());
      recommender_pool_.pop_back();
      return recommender;
    }
  }
  return std::make_unique<VmisKnn>(index_.get(), config_.knn);
}

void SerenadeService::ReleaseRecommender(
    std::unique_ptr<VmisKnn> recommender) {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  recommender_pool_.push_back(std::move(recommender));
}

StatusOr<std::vector<ScoredItem>> SerenadeService::HandleUpdateAndRecommend(
    const RecommendRequest& request) {
  if (request.item == kInvalidItem) {
    return Status::InvalidArgument("missing item id");
  }
  if (request.session_key.empty()) {
    return Status::InvalidArgument("missing session key");
  }

  // Step 2 (Figure 1): update the evolving session with a machine-local
  // read-modify-write.
  EvolvingSession evolving;
  const Status update_status = store_->Update(
      request.session_key, [&](const std::string& current) {
        evolving = DecodeSession(current);
        evolving.push_back(request.item);
        if (evolving.size() > config_.max_stored_session_length) {
          evolving.erase(evolving.begin(),
                         evolving.end() -
                             static_cast<ptrdiff_t>(
                                 config_.max_stored_session_length));
        }
        return EncodeSession(evolving);
      });
  SERENADE_RETURN_IF_ERROR(update_status);

  // Depersonalisation (Section 4.2): without consent, only the currently
  // displayed item feeds the prediction.
  if (!request.consent) {
    evolving.assign(1, request.item);
  }

  // Step 3: VMIS-kNN prediction against the replicated index. Fetch more
  // than the UI needs so the business-rule filters have spare candidates.
  auto recommender = AcquireRecommender();
  const std::vector<ScoredItem> raw = recommender->RecommendNext(
      evolving, config_.rules.max_items * 2 + 8);
  ReleaseRecommender(std::move(recommender));

  return ApplyBusinessRules(raw, catalog_, config_.rules);
}

StatusOr<EvolvingSession> SerenadeService::GetSession(
    const std::string& session_key) {
  auto value = store_->Get(session_key);
  if (!value.ok()) return value.status();
  return DecodeSession(*value);
}

}  // namespace serenade
