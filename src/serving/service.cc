#include "serving/service.h"

#include <algorithm>
#include <charconv>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "common/stopwatch.h"

namespace serenade {

const char* EngineName(EngineKind engine) {
  return engine == EngineKind::kAnn ? "ann" : "vmis";
}

std::optional<EngineKind> ParseEngineKind(const std::string& text) {
  if (text.empty()) return EngineKind::kDefault;
  if (text == "vmis") return EngineKind::kVmis;
  if (text == "ann") return EngineKind::kAnn;
  return std::nullopt;
}

std::string EncodeSession(const EvolvingSession& session) {
  std::string out;
  for (size_t i = 0; i < session.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(session[i]);
  }
  return out;
}

EvolvingSession DecodeSession(const std::string& encoded) {
  EvolvingSession session;
  size_t start = 0;
  while (start < encoded.size()) {
    size_t end = encoded.find(',', start);
    if (end == std::string::npos) end = encoded.size();
    uint32_t item = 0;
    const auto result = std::from_chars(encoded.data() + start,
                                        encoded.data() + end, item);
    if (result.ec == std::errc() && result.ptr == encoded.data() + end) {
      session.push_back(item);
    }
    start = end + 1;
  }
  return session;
}

SerenadeService::SerenadeService(std::shared_ptr<IndexManager> manager,
                                 ItemCatalog catalog, ServiceConfig config)
    : manager_(std::move(manager)),
      catalog_(std::move(catalog)),
      config_(config) {}

StatusOr<std::unique_ptr<SerenadeService>> SerenadeService::Create(
    std::shared_ptr<IndexManager> manager, ItemCatalog catalog,
    ServiceConfig config) {
  if (manager == nullptr) {
    return Status::InvalidArgument("index manager must not be null");
  }
  // Validates the boot snapshot and guards every future reload (same
  // InvalidArgument as a direct ValidateIndexForKnn failure).
  SERENADE_RETURN_IF_ERROR(
      manager->RequireKnnCompatibility(config.knn.m));
  auto service = std::unique_ptr<SerenadeService>(
      new SerenadeService(std::move(manager), std::move(catalog), config));
  auto store = SessionStore::Open(config.store);
  if (!store.ok()) return store.status();
  service->store_ = std::move(store).value();
  return service;
}

StatusOr<std::unique_ptr<SerenadeService>> SerenadeService::Create(
    std::shared_ptr<const SessionIndex> index, ItemCatalog catalog,
    ServiceConfig config) {
  if (index == nullptr) {
    return Status::InvalidArgument("index must not be null");
  }
  return Create(IndexManager::CreateFromIndex(std::move(index)),
                std::move(catalog), config);
}

Status SerenadeService::ReloadIndex(const std::string& path) {
  SERENADE_RETURN_IF_ERROR(manager_->ReloadFromFile(path));
  PruneStaleRecommenders(manager_->current_version());
  return Status::Ok();
}

Status SerenadeService::ReloadEmbeddings(const std::string& path) {
  if (embeddings_ == nullptr) {
    return Status::Unavailable("this pod has no embedding manager attached");
  }
  return embeddings_->ReloadFromFile(path);
}

EngineKind SerenadeService::ResolveEngine(EngineKind requested) {
  if (requested != EngineKind::kAnn) return EngineKind::kVmis;
  ann_requests_.fetch_add(1, std::memory_order_relaxed);
  if (ann_available()) return EngineKind::kAnn;
  ann_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return EngineKind::kVmis;
}

Status SerenadeService::ApplyDelta(const IndexDelta& delta,
                                   IndexManager::DeltaApplyInfo* info) {
  SERENADE_RETURN_IF_ERROR(manager_->ApplyDelta(delta, info));
  PruneStaleRecommenders(manager_->current_version());
  return Status::Ok();
}

SerenadeService::PooledRecommender SerenadeService::AcquireRecommender(
    const std::shared_ptr<const IndexSnapshot>& snapshot) {
  const uint64_t version = snapshot->version();
  std::vector<PooledRecommender> stale;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    while (!recommender_pool_.empty()) {
      PooledRecommender entry = std::move(recommender_pool_.back());
      recommender_pool_.pop_back();
      if (entry.version == version) return entry;
      // Built against a retired snapshot: destroy outside the lock.
      stale.push_back(std::move(entry));
    }
  }
  stale.clear();
  PooledRecommender fresh;
  fresh.version = version;
  fresh.snapshot = snapshot;
  fresh.recommender =
      std::make_unique<VmisKnn>(&snapshot->index(), config_.knn);
  return fresh;
}

void SerenadeService::ReleaseRecommender(PooledRecommender entry) {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    // Only pool scratch matching the live snapshot, and only up to the
    // configured cap — a burst of concurrent requests must not grow the
    // pool without bound, and a swapped-out index must not be pinned by
    // idle scratch.
    if (entry.version == manager_->current_version() &&
        recommender_pool_.size() < config_.max_pooled_recommenders) {
      recommender_pool_.push_back(std::move(entry));
      return;
    }
  }
  // Dropped: entry (and its snapshot pin) destructs here, outside the lock.
}

void SerenadeService::PruneStaleRecommenders(uint64_t version) {
  std::vector<PooledRecommender> stale;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    auto keep_end = std::remove_if(
        recommender_pool_.begin(), recommender_pool_.end(),
        [version](const PooledRecommender& entry) {
          return entry.version != version;
        });
    stale.assign(std::make_move_iterator(keep_end),
                 std::make_move_iterator(recommender_pool_.end()));
    recommender_pool_.erase(keep_end, recommender_pool_.end());
  }
  // Retired snapshots release here, outside the lock.
}

size_t SerenadeService::PooledRecommenders() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return recommender_pool_.size();
}

StatusOr<std::vector<ScoredItem>> SerenadeService::HandleUpdateAndRecommend(
    const RecommendRequest& request, Trace* trace) {
  if (request.item == kInvalidItem) {
    return Status::InvalidArgument("missing item id");
  }
  if (request.session_key.empty()) {
    return Status::InvalidArgument("missing session key");
  }

  // Step 2 (Figure 1): update the evolving session with a machine-local
  // read-modify-write (the store records it as the store_put span).
  EvolvingSession evolving;
  const Status update_status = store_->Update(
      request.session_key,
      [&](const std::string& current) {
        evolving = DecodeSession(current);
        evolving.push_back(request.item);
        if (evolving.size() > config_.max_stored_session_length) {
          evolving.erase(evolving.begin(),
                         evolving.end() -
                             static_cast<ptrdiff_t>(
                                 config_.max_stored_session_length));
        }
        return EncodeSession(evolving);
      },
      trace);
  SERENADE_RETURN_IF_ERROR(update_status);

  // Depersonalisation (Section 4.2): without consent, only the currently
  // displayed item feeds the prediction.
  if (!request.consent) {
    evolving.assign(1, request.item);
  }

  // Step 3: prediction against the pinned snapshot of whichever retrieval
  // family the request resolved to. The pin outlives the scoring pass, so
  // a concurrent hot swap can never free the index under us. Fetch more
  // than the UI needs so the business-rule filters have spare candidates.
  const size_t fetch = config_.rules.max_items * 2 + 8;
  if (ResolveEngine(request.engine) == EngineKind::kAnn) {
    Span pin_span(trace, TraceStage::kSnapshotPin);
    const std::shared_ptr<const EmbeddingSnapshot> snapshot =
        embeddings_->Current();
    pin_span.End();

    Span knn_span(trace, TraceStage::kKnnRetrieve);
    AnnRecommender ann(&snapshot->embeddings(), &snapshot->ann(),
                       config_.ann);
    const std::vector<ScoredItem> raw = ann.RecommendNext(evolving, fetch);
    knn_span.End();

    Span rank_span(trace, TraceStage::kRank);
    return ApplyBusinessRules(raw, catalog_, config_.rules);
  }

  Span pin_span(trace, TraceStage::kSnapshotPin);
  const std::shared_ptr<const IndexSnapshot> snapshot = manager_->Current();
  PooledRecommender entry = AcquireRecommender(snapshot);
  pin_span.End();

  Span knn_span(trace, TraceStage::kKnnRetrieve);
  const std::vector<ScoredItem> raw =
      entry.recommender->RecommendNext(evolving, fetch);
  knn_span.End();
  ReleaseRecommender(std::move(entry));

  Span rank_span(trace, TraceStage::kRank);
  return ApplyBusinessRules(raw, catalog_, config_.rules);
}

std::vector<StatusOr<std::vector<ScoredItem>>>
SerenadeService::HandleUpdateAndRecommendBatch(
    const std::vector<RecommendRequest>& requests,
    const std::vector<Trace*>& traces) {
  std::vector<StatusOr<std::vector<ScoredItem>>> results(
      requests.size(), Status::Internal("batch slot not filled"));
  if (requests.empty()) return results;
  auto trace_for = [&](size_t i) -> Trace* {
    return i < traces.size() ? traces[i] : nullptr;
  };

  // Validate every slot first; only valid slots join the batched IO.
  std::vector<size_t> valid;
  valid.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].item == kInvalidItem) {
      results[i] = Status::InvalidArgument("missing item id");
    } else if (requests[i].session_key.empty()) {
      results[i] = Status::InvalidArgument("missing session key");
    } else {
      valid.push_back(i);
    }
  }
  if (valid.empty()) return results;

  // Step 2 (Figure 1), batched: one MultiGet for the distinct session
  // keys, the appends applied in batch order (so duplicate keys chain),
  // one MultiPut writing each key's final state.
  std::vector<std::string> keys;
  std::unordered_map<std::string, size_t> key_slot;  // key -> index in keys
  for (size_t i : valid) {
    if (key_slot.emplace(requests[i].session_key, keys.size()).second) {
      keys.push_back(requests[i].session_key);
    }
  }
  std::vector<std::string> stored;
  std::vector<bool> found;
  {
    Stopwatch watch;
    store_->MultiGet(keys, &stored, &found);
    const uint64_t micros = watch.ElapsedMicros();
    for (size_t i : valid) {
      if (Trace* trace = trace_for(i)) {
        trace->Record(TraceStage::kStoreGet, micros);
      }
    }
  }

  std::vector<EvolvingSession> sessions(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    if (found[k]) sessions[k] = DecodeSession(stored[k]);
  }
  // `predict[i]` is the session as of request i's click — later clicks on
  // the same key in this batch must not leak into it.
  std::vector<EvolvingSession> predict(requests.size());
  for (size_t i : valid) {
    EvolvingSession& evolving = sessions[key_slot[requests[i].session_key]];
    evolving.push_back(requests[i].item);
    if (evolving.size() > config_.max_stored_session_length) {
      evolving.erase(evolving.begin(),
                     evolving.end() - static_cast<ptrdiff_t>(
                                          config_.max_stored_session_length));
    }
    // Depersonalisation (Section 4.2): without consent, only the
    // currently displayed item feeds the prediction.
    predict[i] = requests[i].consent
                     ? evolving
                     : EvolvingSession{requests[i].item};
  }

  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    entries.emplace_back(keys[k], EncodeSession(sessions[k]));
  }
  {
    Stopwatch watch;
    const Status put_status = store_->MultiPut(entries);
    const uint64_t micros = watch.ElapsedMicros();
    for (size_t i : valid) {
      if (Trace* trace = trace_for(i)) {
        trace->Record(TraceStage::kStorePut, micros);
      }
    }
    if (!put_status.ok()) {
      for (size_t i : valid) results[i] = put_status;
      return results;
    }
  }

  // Step 3, batched: one snapshot pin per retrieval family and one pooled
  // recommender serve every item — the scoring loop itself is the only
  // per-item work left. Slots resolve their engine independently, so one
  // batch can mix A/B arms.
  std::vector<EngineKind> resolved(requests.size(), EngineKind::kVmis);
  bool any_ann = false;
  for (size_t i : valid) {
    resolved[i] = ResolveEngine(requests[i].engine);
    any_ann |= resolved[i] == EngineKind::kAnn;
  }

  Stopwatch pin_watch;
  const std::shared_ptr<const IndexSnapshot> snapshot = manager_->Current();
  PooledRecommender entry = AcquireRecommender(snapshot);
  std::shared_ptr<const EmbeddingSnapshot> embedding_snapshot;
  std::unique_ptr<AnnRecommender> ann;
  if (any_ann) {
    embedding_snapshot = embeddings_->Current();
    ann = std::make_unique<AnnRecommender>(&embedding_snapshot->embeddings(),
                                           &embedding_snapshot->ann(),
                                           config_.ann);
  }
  const uint64_t pin_micros = pin_watch.ElapsedMicros();
  for (size_t i : valid) {
    if (Trace* trace = trace_for(i)) {
      trace->Record(TraceStage::kSnapshotPin, pin_micros);
    }
  }

  for (size_t i : valid) {
    Trace* trace = trace_for(i);
    Span knn_span(trace, TraceStage::kKnnRetrieve);
    Recommender& engine =
        resolved[i] == EngineKind::kAnn
            ? static_cast<Recommender&>(*ann)
            : static_cast<Recommender&>(*entry.recommender);
    const std::vector<ScoredItem> raw =
        engine.RecommendNext(predict[i], config_.rules.max_items * 2 + 8);
    knn_span.End();
    Span rank_span(trace, TraceStage::kRank);
    results[i] = ApplyBusinessRules(raw, catalog_, config_.rules);
  }
  ReleaseRecommender(std::move(entry));
  return results;
}

StatusOr<EvolvingSession> SerenadeService::GetSession(
    const std::string& session_key) {
  auto value = store_->Get(session_key);
  if (!value.ok()) return value.status();
  return DecodeSession(*value);
}

}  // namespace serenade
