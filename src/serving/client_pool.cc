#include "serving/client_pool.h"

namespace serenade {

StatusOr<std::unique_ptr<HttpClient>> HttpClientPool::Acquire(uint16_t port) {
  acquires_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = idle_.find(port);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<HttpClient> client = std::move(it->second.back());
      it->second.pop_back();
      reuses_.fetch_add(1, std::memory_order_relaxed);
      return client;
    }
  }
  auto client = std::make_unique<HttpClient>(config_.client);
  SERENADE_RETURN_IF_ERROR(client->Connect(port));
  return client;
}

void HttpClientPool::Release(uint16_t port, std::unique_ptr<HttpClient> client,
                             bool reusable) {
  if (client == nullptr) return;
  if (reusable) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::unique_ptr<HttpClient>>& parked = idle_[port];
    if (parked.size() < config_.max_idle_per_endpoint) {
      parked.push_back(std::move(client));
      return;
    }
  }
  // Fell through: error path or a full shelf — drop the connection.
  discards_.fetch_add(1, std::memory_order_relaxed);
}

size_t HttpClientPool::IdleCount(uint16_t port) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = idle_.find(port);
  return it == idle_.end() ? 0 : it->second.size();
}

double HttpClientPool::ReuseRatio() const {
  const uint64_t acquires = acquires_.load(std::memory_order_relaxed);
  if (acquires == 0) return 0.0;
  return static_cast<double>(reuses_.load(std::memory_order_relaxed)) /
         static_cast<double>(acquires);
}

}  // namespace serenade
