// The Serenade recommendation service: maintains evolving user sessions
// in the colocated session store, computes next-item recommendations with
// VMIS-kNN against the replicated session index, and applies business
// rules — steps 2 and 3 of Figure 1.
//
// Index consumption is snapshot-based (see index/snapshot.h): every
// request pins the currently published IndexSnapshot, and the per-thread
// recommender scratch pool is version-tagged so a hot swap lazily rebuilds
// scratch state against the new index — a stale pooled recommender can
// never score against a freed index, and an old snapshot retires only
// when the last in-flight request (or pooled recommender) releases it.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/ann_recommender.h"
#include "core/session_index.h"
#include "obs/trace.h"
#include "core/vmis_knn.h"
#include "data/synthetic.h"
#include "index/embedding_store.h"
#include "index/snapshot.h"
#include "serving/business_rules.h"
#include "store/session_store.h"

namespace serenade {

/// Which retrieval family serves a request. kDefault defers to the
/// service default (VMIS); kAnn requires an attached embedding snapshot
/// and silently degrades to VMIS (counted, never failed) without one —
/// a dead ANN arm must not fail user traffic.
enum class EngineKind { kDefault, kVmis, kAnn };

/// "vmis" / "ann" (kDefault resolves to "vmis").
const char* EngineName(EngineKind engine);

/// Parses "" (default), "vmis", "ann"; anything else is nullopt.
std::optional<EngineKind> ParseEngineKind(const std::string& text);

struct ServiceConfig {
  KnnConfig knn;
  BusinessRulesConfig rules;
  SessionStoreOptions store;
  /// Session->query folding and graph parameters for the ANN engine.
  AnnConfig ann;
  /// Stored evolving sessions are truncated to this many recent items
  /// (predictions only use KnnConfig::max_session_length of them anyway).
  size_t max_stored_session_length = 100;
  /// Upper bound on idle per-thread recommender scratch instances kept for
  /// reuse; excess releases are dropped so a concurrency burst cannot grow
  /// the pool without limit.
  size_t max_pooled_recommenders = 64;
};

/// One update-and-recommend request from the shop frontend. The frontend
/// calls this whenever the user opens a product detail page.
struct RecommendRequest {
  std::string session_key;   ///< opaque session identifier (cookie)
  ItemId item = kInvalidItem;  ///< the item the user just interacted with
  /// Consent flag: when false, the paper's depersonalisation applies —
  /// only the currently displayed item is used (Section 4.2).
  bool consent = true;
  /// Retrieval family for this request (`engine=vmis|ann` on the wire, or
  /// the gateway's A/B bucket stamp). Flows through the batch executor
  /// untouched.
  EngineKind engine = EngineKind::kDefault;
};

/// Thread-safe service facade. One instance per serving machine; safe for
/// concurrent HandleUpdateAndRecommend calls (VMIS-kNN scratch state is
/// pooled per-thread internally) including concurrent index reloads.
class SerenadeService {
 public:
  /// `manager` owns the replicated read-only session index and its hot-swap
  /// lifecycle; the service registers its knn.m requirement with it so
  /// reloads of an incompatible index are rejected before publication.
  static StatusOr<std::unique_ptr<SerenadeService>> Create(
      std::shared_ptr<IndexManager> manager, ItemCatalog catalog,
      ServiceConfig config);

  /// Convenience for a fixed index (tests, benches, offline tools): wraps
  /// it in a single-snapshot IndexManager.
  static StatusOr<std::unique_ptr<SerenadeService>> Create(
      std::shared_ptr<const SessionIndex> index, ItemCatalog catalog,
      ServiceConfig config);

  /// Appends the clicked item to the evolving session (machine-local
  /// write), predicts the next items (machine-local reads only) and
  /// applies the business rules. Returns at most rules.max_items items.
  /// A non-null `trace` receives store_put / snapshot_pin / knn_retrieve
  /// / rank stage spans.
  StatusOr<std::vector<ScoredItem>> HandleUpdateAndRecommend(
      const RecommendRequest& request, Trace* trace = nullptr);

  /// Micro-batched variant (the BatchExecutor fast path): amortises the
  /// per-request fixed costs across `requests` by doing one store
  /// MultiGet, one MultiPut, one snapshot pin, and one recommender-pool
  /// checkout for the whole batch, then scoring each item. Per-item
  /// failures (validation, a failed WAL write) surface in that slot only
  /// — one bad request never fails its batch siblings. Duplicate session
  /// keys are applied in batch order, so results match sequential calls.
  /// `traces` may be empty (all untraced) or requests.size() entries
  /// (null allowed); batch-wide stages (store_get/store_put/snapshot_pin)
  /// record their full duration into every traced slot.
  std::vector<StatusOr<std::vector<ScoredItem>>>
  HandleUpdateAndRecommendBatch(const std::vector<RecommendRequest>& requests,
                                const std::vector<Trace*>& traces = {});

  /// Reads the stored evolving session (diagnostics / tests).
  StatusOr<EvolvingSession> GetSession(const std::string& session_key);

  /// Hot-swaps to the index at `path` ("" = re-read the current source).
  /// In-flight requests keep serving from their pinned snapshot; new
  /// requests see the new index as soon as this returns Ok.
  Status ReloadIndex(const std::string& path = "");

  /// Attaches the second retrieval family (call before serving traffic;
  /// the pointer itself is not re-assigned afterwards — reloads go
  /// through the manager). Null detaches nothing: pass a live manager.
  void AttachEmbeddings(std::shared_ptr<EmbeddingManager> embeddings) {
    embeddings_ = std::move(embeddings);
  }

  /// True when an embedding snapshot is published and the ANN engine can
  /// serve `engine=ann` requests without falling back.
  bool ann_available() const { return embeddings_ != nullptr; }

  /// The attached embedding manager (null when the pod has no ANN arm).
  const std::shared_ptr<EmbeddingManager>& embedding_manager() const {
    return embeddings_;
  }

  /// Hot-swaps the embedding artifact ("" = re-read the boot path).
  /// kFailedPrecondition when no embedding manager is attached.
  Status ReloadEmbeddings(const std::string& path = "");

  /// Requests that asked for the ANN engine (requested, not resolved).
  uint64_t ann_requests_total() const {
    return ann_requests_.load(std::memory_order_relaxed);
  }

  /// ANN-engine requests degraded to VMIS because no embedding snapshot
  /// was attached — the dead-arm safety valve, never a request failure.
  uint64_t ann_fallbacks_total() const {
    return ann_fallbacks_.load(std::memory_order_relaxed);
  }

  /// Layers a streaming freshness delta over the pinned base snapshot
  /// (IndexManager::ApplyDelta) with the same publication discipline as a
  /// full swap: in-flight requests finish on their pinned snapshot, the
  /// pool drops entries built against retired overlay versions.
  /// kAlreadyExists (idempotent re-delivery) leaves everything untouched.
  Status ApplyDelta(const IndexDelta& delta,
                    IndexManager::DeltaApplyInfo* info = nullptr);

  SessionStoreStats StoreStats() const { return store_->Stats(); }

  /// Direct store access for the replication subsystem (WAL shipping,
  /// hand-off dump/restore, replica promotion).
  SessionStore& session_store() { return *store_; }

  /// Pins the current index snapshot (version + index + provenance).
  std::shared_ptr<const IndexSnapshot> CurrentSnapshot() const {
    return manager_->Current();
  }
  IndexManager& index_manager() { return *manager_; }
  const ServiceConfig& config() const { return config_; }

  /// Idle pooled recommenders (diagnostics / stats).
  size_t PooledRecommenders() const;

  /// Evicts expired sessions (called by a background janitor thread in
  /// the server wrapper).
  size_t SweepExpiredSessions() { return store_->SweepExpired(); }

 private:
  // One pooled scratch recommender, tagged with the snapshot it was built
  // against. The pinned snapshot keeps the raw index pointer inside the
  // VmisKnn valid for exactly as long as the entry lives.
  struct PooledRecommender {
    uint64_t version = 0;
    std::shared_ptr<const IndexSnapshot> snapshot;
    std::unique_ptr<VmisKnn> recommender;
  };

  SerenadeService(std::shared_ptr<IndexManager> manager, ItemCatalog catalog,
                  ServiceConfig config);

  // Borrow/return pattern for per-thread recommender scratch state. The
  // returned entry always matches `snapshot`'s version.
  PooledRecommender AcquireRecommender(
      const std::shared_ptr<const IndexSnapshot>& snapshot);
  void ReleaseRecommender(PooledRecommender entry);

  // Drops pooled entries built against snapshots older than `version` so
  // a retired index is not kept alive by an idle pool.
  void PruneStaleRecommenders(uint64_t version);

  // Resolves kDefault/kVmis -> kVmis, kAnn -> kAnn when an embedding
  // snapshot is attached else kVmis; maintains the ann request/fallback
  // counters.
  EngineKind ResolveEngine(EngineKind requested);

  std::shared_ptr<IndexManager> manager_;
  std::shared_ptr<EmbeddingManager> embeddings_;
  std::atomic<uint64_t> ann_requests_{0};
  std::atomic<uint64_t> ann_fallbacks_{0};
  ItemCatalog catalog_;
  ServiceConfig config_;
  std::unique_ptr<SessionStore> store_;

  mutable std::mutex pool_mutex_;
  std::vector<PooledRecommender> recommender_pool_;
};

/// Encodes an evolving session as a comma-separated item id string (the
/// session-store value format; human-readable for debugging).
std::string EncodeSession(const EvolvingSession& session);

/// Decodes the store value format; malformed tokens are skipped.
EvolvingSession DecodeSession(const std::string& encoded);

}  // namespace serenade
