// The Serenade recommendation service: maintains evolving user sessions
// in the colocated session store, computes next-item recommendations with
// VMIS-kNN against the replicated session index, and applies business
// rules — steps 2 and 3 of Figure 1.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "data/synthetic.h"
#include "serving/business_rules.h"
#include "store/session_store.h"

namespace serenade {

struct ServiceConfig {
  KnnConfig knn;
  BusinessRulesConfig rules;
  SessionStoreOptions store;
  /// Stored evolving sessions are truncated to this many recent items
  /// (predictions only use KnnConfig::max_session_length of them anyway).
  size_t max_stored_session_length = 100;
};

/// One update-and-recommend request from the shop frontend. The frontend
/// calls this whenever the user opens a product detail page.
struct RecommendRequest {
  std::string session_key;   ///< opaque session identifier (cookie)
  ItemId item = kInvalidItem;  ///< the item the user just interacted with
  /// Consent flag: when false, the paper's depersonalisation applies —
  /// only the currently displayed item is used (Section 4.2).
  bool consent = true;
};

/// Thread-safe service facade. One instance per serving machine; safe for
/// concurrent HandleUpdateAndRecommend calls (VMIS-kNN scratch state is
/// pooled per-thread internally).
class SerenadeService {
 public:
  /// `index` is the replicated read-only session similarity index.
  static StatusOr<std::unique_ptr<SerenadeService>> Create(
      std::shared_ptr<const SessionIndex> index, ItemCatalog catalog,
      ServiceConfig config);

  /// Appends the clicked item to the evolving session (machine-local
  /// write), predicts the next items (machine-local reads only) and
  /// applies the business rules. Returns at most rules.max_items items.
  StatusOr<std::vector<ScoredItem>> HandleUpdateAndRecommend(
      const RecommendRequest& request);

  /// Reads the stored evolving session (diagnostics / tests).
  StatusOr<EvolvingSession> GetSession(const std::string& session_key);

  SessionStoreStats StoreStats() const { return store_->Stats(); }
  const SessionIndex& index() const { return *index_; }
  const ServiceConfig& config() const { return config_; }

  /// Evicts expired sessions (called by a background janitor thread in
  /// the server wrapper).
  size_t SweepExpiredSessions() { return store_->SweepExpired(); }

 private:
  SerenadeService(std::shared_ptr<const SessionIndex> index,
                  ItemCatalog catalog, ServiceConfig config);

  // Borrow/return pattern for per-thread recommender scratch state.
  std::unique_ptr<VmisKnn> AcquireRecommender();
  void ReleaseRecommender(std::unique_ptr<VmisKnn> recommender);

  std::shared_ptr<const SessionIndex> index_;
  ItemCatalog catalog_;
  ServiceConfig config_;
  std::unique_ptr<SessionStore> store_;

  std::mutex pool_mutex_;
  std::vector<std::unique_ptr<VmisKnn>> recommender_pool_;
};

/// Encodes an evolving session as a comma-separated item id string (the
/// session-store value format; human-readable for debugging).
std::string EncodeSession(const EvolvingSession& session);

/// Decodes the store value format; malformed tokens are skipped.
EvolvingSession DecodeSession(const std::string& encoded);

}  // namespace serenade
