#include "serving/batch_executor.h"

#include <chrono>

#include "common/hash.h"
#include "testing/fault_injection.h"

namespace serenade {

void RealBatchClock::WaitFor(std::condition_variable& cv,
                             std::unique_lock<std::mutex>& lock,
                             uint64_t micros,
                             const std::function<bool()>& pred) {
  cv.wait_for(lock, std::chrono::microseconds(micros), pred);
}

RealBatchClock* RealBatchClock::Instance() {
  static RealBatchClock instance;
  return &instance;
}

BatchExecutor::BatchExecutor(SerenadeService* service,
                             BatchExecutorConfig config,
                             MetricsRegistry* registry, BatchClock* clock)
    : service_(service),
      config_(config),
      clock_(clock != nullptr ? clock : RealBatchClock::Instance()) {
  if (registry == nullptr) return;
  registry->AddCallback(
      "serenade_batches_total", "micro-batches executed",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", batches_executed()}};
      });
  registry->AddCallback(
      "serenade_batch_requests_total",
      "requests executed through the micro-batch path", MetricType::kCounter,
      "", [this]() -> std::vector<MetricSample> {
        return {{"", requests_executed()}};
      });
  registry->AddCallback(
      "serenade_batch_rejected_total",
      "requests shed because the submission queue was full",
      MetricType::kCounter, "", [this]() -> std::vector<MetricSample> {
        return {{"", requests_rejected()}};
      });
  // Coalescing factor = requests per batch; x100 because the exposition
  // layer carries integer samples.
  registry->AddCallback(
      "serenade_batch_coalescing_factor_x100",
      "mean requests per micro-batch, times 100", MetricType::kGauge, "",
      [this]() -> std::vector<MetricSample> {
        const uint64_t batches = batches_executed();
        const uint64_t requests = requests_executed();
        return {{"", batches == 0 ? 0 : requests * 100 / batches}};
      });
  batch_size_hist_ = &registry->AddHistogram(
      "serenade_batch_size", "requests coalesced into one micro-batch");
  queue_wait_micros_ = &registry->AddHistogram(
      "serenade_batch_queue_wait_microseconds",
      "submission-to-pickup wait in the batch queue");
}

BatchExecutor::~BatchExecutor() { Stop(); }

Status BatchExecutor::Start() {
  if (passthrough()) return Status::Ok();
  if (!workers_.empty()) return Status::AlreadyExists("executor started");
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  stopping_.store(false);
  // Threads start only after every Worker slot exists: WorkerLoop never
  // sees a resizing vector.
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(*w); });
  }
  return Status::Ok();
}

void BatchExecutor::Stop() {
  if (stopping_.exchange(true)) return;
  for (auto& worker : workers_) {
    worker->cv.notify_all();
    if (worker->thread.joinable()) worker->thread.join();
  }
}

StatusOr<std::future<BatchExecutor::Result>> BatchExecutor::SubmitAsync(
    const RecommendRequest& request, Trace* trace) {
  if (workers_.empty()) {
    return Status::Unavailable("batch executor not started");
  }
  SERENADE_FAULT_POINT(FaultSite::kBatchQueueFull, {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "injected: batch queue full (overloaded)");
  });
  auto op = std::make_unique<PendingOp>();
  op->request = request;
  op->trace = trace;
  std::future<Result> future = op->promise.get_future();

  Worker& worker =
      *workers_[Fnv1a(request.session_key) % workers_.size()];
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (stopping_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("batch executor is stopped");
    }
    if (worker.queue.size() >= config_.max_queue_per_worker) {
      // Load shedding, not an outage: kResourceExhausted surfaces as HTTP
      // 429 + Retry-After so clients (and the click tap) back off.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("batch queue full (overloaded)");
    }
    worker.queue.push_back(std::move(op));
  }
  worker.cv.notify_one();
  return future;
}

void BatchExecutor::WorkerLoop(Worker& worker) {
  while (true) {
    std::vector<std::unique_ptr<PendingOp>> batch;
    {
      std::unique_lock<std::mutex> lock(worker.mutex);
      worker.cv.wait(lock, [&] {
        return stopping_.load(std::memory_order_relaxed) ||
               !worker.queue.empty();
      });
      // Drain accepted work before exiting: every submitted promise is
      // fulfilled even across Stop().
      if (worker.queue.empty()) return;
      if (config_.max_delay_us > 0 &&
          worker.queue.size() < config_.max_batch_size &&
          !stopping_.load(std::memory_order_relaxed)) {
        clock_->WaitFor(
            worker.cv, lock, config_.max_delay_us, [&] {
              return stopping_.load(std::memory_order_relaxed) ||
                     worker.queue.size() >= config_.max_batch_size;
            });
      }
      while (!worker.queue.empty() && batch.size() < config_.max_batch_size) {
        batch.push_back(std::move(worker.queue.front()));
        worker.queue.pop_front();
      }
    }
    RunBatch(std::move(batch));
  }
}

void BatchExecutor::RunBatch(std::vector<std::unique_ptr<PendingOp>> batch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  if (batch_size_hist_ != nullptr) batch_size_hist_->Record(batch.size());

  std::vector<RecommendRequest> requests;
  std::vector<Trace*> traces;
  requests.reserve(batch.size());
  traces.reserve(batch.size());
  for (auto& op : batch) {
    const uint64_t waited = op->queued.ElapsedMicros();
    if (queue_wait_micros_ != nullptr) queue_wait_micros_->Record(waited);
    if (op->trace != nullptr) {
      op->trace->Record(TraceStage::kQueueWait, waited);
    }
    requests.push_back(op->request);
    traces.push_back(op->trace);
  }

  std::vector<Result> results =
      service_->HandleUpdateAndRecommendBatch(requests, traces);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i]->promise.set_value(std::move(results[i]));
  }
}

BatchExecutor::Result BatchExecutor::Execute(const RecommendRequest& request,
                                             Trace* trace) {
  if (passthrough()) {
    return service_->HandleUpdateAndRecommend(request, trace);
  }
  auto pending = SubmitAsync(request, trace);
  if (!pending.ok()) return pending.status();
  return pending->get();
}

std::vector<BatchExecutor::Result> BatchExecutor::ExecuteBatch(
    const std::vector<RecommendRequest>& requests) {
  if (passthrough()) {
    // Still amortised: the whole client batch runs as one service batch
    // (and counts as one, so the coalescing metrics stay truthful).
    batches_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(requests.size(), std::memory_order_relaxed);
    if (batch_size_hist_ != nullptr) {
      batch_size_hist_->Record(requests.size());
    }
    return service_->HandleUpdateAndRecommendBatch(requests);
  }
  // Scatter across the worker queues (session-key affinity keeps
  // duplicate keys ordered), then gather in slot order.
  std::vector<Result> results;
  results.reserve(requests.size());
  std::vector<std::pair<size_t, std::future<Result>>> pending;
  pending.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    results.push_back(Status::Internal("batch slot not filled"));
    auto submitted = SubmitAsync(requests[i], nullptr);
    if (!submitted.ok()) {
      results[i] = submitted.status();
      continue;
    }
    pending.emplace_back(i, std::move(submitted).value());
  }
  for (auto& [slot, future] : pending) {
    results[slot] = future.get();
  }
  return results;
}

}  // namespace serenade
