// Receiving side of WAL shipping: a pod hosts one ReplicaHub that applies
// sequence-numbered batches of raw WAL bytes from each donor (its ring
// predecessors) into per-donor shadow session tables. The hub keeps the
// accepted byte stream verbatim, so a replica is byte-identical to a
// prefix of the donor's on-disk WAL — the property replication_test
// asserts — and batches are idempotent: a resend of already-applied bytes
// is answered with the current applied offset instead of double-applying.
//
// Protocol (POST /v1/admin/replication/batch, registered by
// PodReplication):
//   headers  X-Serenade-Repl-Donor   donor pod name
//            X-Serenade-Repl-Seq     shipper batch sequence number
//            X-Serenade-Repl-Offset  donor WAL byte offset of the batch
//            X-Serenade-Repl-Reset   "1" = drop donor state first (the
//                                    donor's WAL was rewritten/compacted)
//   body     raw WAL-framed bytes (store/wal record layout)
//   200 {"acked_offset":N,"seq":S}  batch applied through offset N
//   409 + envelope, {"acked_offset":N}  offset mismatch; shipper rewinds
//   400 + envelope                  torn/corrupt bytes; nothing applied
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "store/session_store.h"

namespace serenade {

struct ReplicaDonorState {
  uint64_t acked_offset = 0;   ///< donor WAL bytes applied so far
  uint64_t last_seq = 0;       ///< sequence number of the last batch
  uint64_t batches_applied = 0;
  uint64_t batches_rejected = 0;
  size_t entries = 0;          ///< sessions in the shadow table
};

/// Thread-safe replica state for all donors shipping to this pod.
class ReplicaHub {
 public:
  /// Applies one shipped batch. On success returns the new acked offset.
  /// Failure modes:
  ///   kInvalidArgument — `bytes` does not parse as a whole number of
  ///     intact WAL records (torn or corrupt in flight). Nothing is
  ///     applied; the shipper resends the batch.
  ///   kCorruption — `start_offset` is not the donor's current acked
  ///     offset (duplicate resend or a shipper that restarted). Nothing
  ///     is applied; `*acked_out` carries the offset the shipper must
  ///     rewind (or fast-forward) to. Maps to HTTP 409.
  StatusOr<uint64_t> ApplyBatch(const std::string& donor, uint64_t seq,
                                uint64_t start_offset, bool reset,
                                std::string_view bytes, uint64_t* acked_out);

  /// Copies the donor's shadow table (promotion input). Entries carry the
  /// donor-side timestamps; expiry is the promoter's concern.
  std::vector<SessionStore::RestoreEntry> SnapshotDonor(
      const std::string& donor) const;

  /// Drops all state for a donor (after promotion, or when the ring
  /// rewires shipping away from this pod).
  void DropDonor(const std::string& donor);

  /// The raw accepted byte stream for a donor — byte-identical to the
  /// prefix of the donor's WAL that has been acked.
  std::string LogBytes(const std::string& donor) const;

  ReplicaDonorState DonorState(const std::string& donor) const;
  std::vector<std::string> Donors() const;

  uint64_t batches_applied_total() const;
  uint64_t batches_rejected_total() const;
  uint64_t bytes_applied_total() const;

 private:
  struct Donor {
    std::unordered_map<std::string, SessionStore::RestoreEntry> table;
    std::string log;  // accepted bytes, verbatim
    uint64_t acked_offset = 0;
    uint64_t last_seq = 0;
    uint64_t batches_applied = 0;
    uint64_t batches_rejected = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Donor> donors_;
  uint64_t batches_applied_ = 0;
  uint64_t batches_rejected_ = 0;
  uint64_t bytes_applied_ = 0;
};

}  // namespace serenade
