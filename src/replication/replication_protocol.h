// Shared wire constants for the replication / hand-off control plane.
// Kept header-only so the gateway (src/cluster) can speak the protocol
// without linking the replication library.
#pragma once

namespace serenade::repl {

// --- WAL shipping (WalShipper -> ReplicaHub) --------------------------------
inline constexpr char kBatchPath[] = "/v1/admin/replication/batch";
inline constexpr char kDonorHeader[] = "X-Serenade-Repl-Donor";
inline constexpr char kSeqHeader[] = "X-Serenade-Repl-Seq";
inline constexpr char kOffsetHeader[] = "X-Serenade-Repl-Offset";
inline constexpr char kResetHeader[] = "X-Serenade-Repl-Reset";
inline constexpr char kAckedOffsetField[] = "acked_offset";

// --- control plane (gateway -> pod) -----------------------------------------
inline constexpr char kPeerPath[] = "/v1/admin/replication/peer";
inline constexpr char kPromotePath[] = "/v1/admin/replication/promote";
inline constexpr char kHandoffPath[] = "/v1/admin/sessions/handoff";
inline constexpr char kHandoffFinishPath[] = "/v1/admin/sessions/handoff:finish";
inline constexpr char kRestorePath[] = "/v1/admin/sessions/restore";

// --- mid-hand-off write diversion -------------------------------------------
// A donor answering a single recommend for an already-cut-over key replies
// 307 with this header naming the new owner's port; the gateway follows
// one hop.
inline constexpr char kBackendPortHeader[] = "X-Serenade-Backend-Port";
// Ring epoch stamped on control-plane responses (fencing).
inline constexpr char kRingEpochHeader[] = "X-Serenade-Ring-Epoch";

}  // namespace serenade::repl
