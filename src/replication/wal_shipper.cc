#include "replication/wal_shipper.h"

#include <filesystem>
#include <fstream>
#include <optional>

#include "common/logging.h"
#include "replication/replication_protocol.h"
#include "serving/json.h"
#include "store/wal.h"
#include "testing/fault_injection.h"

namespace serenade {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The receiver's acked offset from a batch response body
// ({"acked_offset":N,...}); nullopt when unparseable.
std::optional<uint64_t> ParseAckedOffset(const std::string& body) {
  auto doc = ParseJson(body);
  if (!doc.ok()) return std::nullopt;
  const JsonValue* acked = doc->Find(repl::kAckedOffsetField);
  if (acked == nullptr || acked->type() != JsonValue::Type::kNumber) {
    return std::nullopt;
  }
  return static_cast<uint64_t>(acked->AsNumber());
}

}  // namespace

WalShipper::WalShipper(WalShipperConfig config,
                       std::function<Status()> sync_wal,
                       std::function<uint64_t()> wal_generation)
    : config_(std::move(config)),
      sync_wal_(std::move(sync_wal)),
      wal_generation_(std::move(wal_generation)) {
  caught_up_at_ms_.store(SteadyNowMs(), std::memory_order_release);
}

WalShipper::~WalShipper() { Stop(); }

void WalShipper::Start() {
  if (thread_.joinable()) return;
  stopping_.store(false);
  thread_ = std::thread([this] { Loop(); });
}

void WalShipper::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_.store(true);
  }
  wake_cv_.notify_all();
  thread_.join();
  // Graceful shutdown ships everything acknowledged to clients, so the
  // replica is complete even though this pod will never restart. Retries
  // ride out injected faults and peer hiccups; a torn (unacknowledged)
  // tail record legitimately never ships and does not count as lag here.
  if (peer_port() != 0) {
    Status flushed = FlushNow();
    for (int attempt = 0;
         attempt < 20 && (!flushed.ok() || lag_bytes() > 0); ++attempt) {
      flushed = FlushNow();
    }
    if (!flushed.ok()) {
      LOG_WARNING << "wal_shipper: final flush failed: "
                  << flushed.ToString();
    }
  }
}

void WalShipper::SetPeer(uint16_t port) {
  std::lock_guard<std::mutex> lock(ship_mutex_);
  if (port == peer_port_.load(std::memory_order_acquire)) return;
  peer_port_.store(port, std::memory_order_release);
  client_.reset();
  connected_port_ = 0;
  acked_offset_ = 0;
  pending_reset_ = true;
  if (port == 0) lag_bytes_.store(0, std::memory_order_release);
  {
    std::lock_guard<std::mutex> wake(wake_mutex_);
  }
  wake_cv_.notify_all();
}

double WalShipper::lag_seconds() const {
  if (lag_bytes_.load(std::memory_order_acquire) == 0) return 0.0;
  const int64_t since =
      SteadyNowMs() - caught_up_at_ms_.load(std::memory_order_acquire);
  return since > 0 ? static_cast<double>(since) / 1000.0 : 0.0;
}

WalShipperStats WalShipper::stats() const {
  std::lock_guard<std::mutex> lock(ship_mutex_);
  return stats_;
}

void WalShipper::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait_for(lock,
                        std::chrono::milliseconds(config_.ship_interval_ms),
                        [this] { return stopping_.load(); });
      if (stopping_.load()) return;
    }
    const Status shipped = ShipUntilCaughtUp();
    if (!shipped.ok()) {
      // Transient (peer restarting, transfer in progress): keep tailing.
      continue;
    }
  }
}

Status WalShipper::ShipUntilCaughtUp() {
  std::lock_guard<std::mutex> lock(ship_mutex_);
  while (true) {
    bool progress = false;
    const Status status = ShipOnce(&progress);
    SERENADE_RETURN_IF_ERROR(status);
    if (!progress) return Status::Ok();
    if (lag_bytes_.load(std::memory_order_acquire) == 0) return Status::Ok();
  }
}

Status WalShipper::FlushNow() { return ShipUntilCaughtUp(); }

void WalShipper::UpdateLag(uint64_t file_size, uint64_t acked) {
  const uint64_t lag = file_size > acked ? file_size - acked : 0;
  if (lag == 0) caught_up_at_ms_.store(SteadyNowMs(), std::memory_order_release);
  lag_bytes_.store(lag, std::memory_order_release);
}

Status WalShipper::ShipOnce(bool* progress) {
  *progress = false;
  const uint16_t peer = peer_port_.load(std::memory_order_acquire);
  if (peer == 0 || config_.wal_path.empty()) return Status::Ok();

  SERENADE_RETURN_IF_ERROR(sync_wal_());

  const uint64_t generation = wal_generation_ ? wal_generation_() : 0;
  std::error_code ec;
  const uint64_t file_size =
      static_cast<uint64_t>(std::filesystem::file_size(config_.wal_path, ec));
  if (ec) {
    // No WAL yet: nothing to ship.
    UpdateLag(0, 0);
    return Status::Ok();
  }
  if (generation != last_generation_ || file_size < acked_offset_) {
    // The byte stream we were tailing was rewritten under us; restart.
    last_generation_ = generation;
    acked_offset_ = 0;
    pending_reset_ = true;
    ++stats_.resets;
  }
  UpdateLag(file_size, acked_offset_);
  if (file_size <= acked_offset_) {
    *progress = true;  // fully shipped
    return Status::Ok();
  }

  const uint64_t want =
      std::min<uint64_t>(file_size - acked_offset_, config_.max_batch_bytes);
  std::string chunk(want, '\0');
  {
    std::ifstream file(config_.wal_path, std::ios::binary);
    if (!file) return Status::IoError("cannot open WAL for shipping");
    file.seekg(static_cast<std::streamoff>(acked_offset_));
    file.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    chunk.resize(static_cast<size_t>(file.gcount()));
  }
  // Trim to a record boundary: the receiver only accepts whole records.
  uint64_t valid = 0;
  auto framed = ReplayWalBytes(chunk, [](const WalRecord&) {}, &valid);
  if (!framed.ok()) {
    return Status::Corruption("donor WAL corrupt at shipped range: " +
                              framed.status().message());
  }
  if (valid == 0) {
    // Only a partial record so far (a write is landing); retry next tick.
    return Status::Ok();
  }
  std::string body = chunk.substr(0, valid);

  // Truncates the batch in flight; the receiver either rejects the torn
  // tail wholesale (400, we resend) or — when the cut lands on a record
  // boundary — acks the shorter prefix. Both keep byte parity.
  SERENADE_FAULT_POINT(FaultSite::kReplShipTruncate, {
    body.resize(static_cast<size_t>(serenade_fi->RandBelow(body.size())));
  });

  if (client_ == nullptr || connected_port_ != peer) {
    auto client = std::make_unique<HttpClient>(config_.client);
    const Status connected = client->Connect(peer);
    if (!connected.ok()) {
      ++stats_.ship_errors;
      return connected;
    }
    client_ = std::move(client);
    connected_port_ = peer;
  }

  const uint64_t seq = seq_ + 1;
  std::map<std::string, std::string> headers{
      {repl::kDonorHeader, config_.donor_name},
      {repl::kSeqHeader, std::to_string(seq)},
      {repl::kOffsetHeader, std::to_string(acked_offset_)},
      {repl::kResetHeader, pending_reset_ ? "1" : "0"},
  };
  auto response = client_->Post(repl::kBatchPath, body, headers);
  if (!response.ok()) {
    ++stats_.ship_errors;
    client_.reset();
    connected_port_ = 0;
    return response.status();
  }
  // The replica applied the batch but this pod never saw the ack; the
  // resend is resolved idempotently by the receiver's offset check.
  SERENADE_FAULT_POINT(FaultSite::kReplAckLost, {
    ++stats_.ship_errors;
    client_.reset();
    connected_port_ = 0;
    return Status::IoError("injected: replication ack dropped");
  });
  seq_ = seq;

  if (response->status == 200) {
    const auto acked = ParseAckedOffset(response->body);
    if (!acked.has_value()) {
      ++stats_.ship_errors;
      return Status::Internal("unparseable replication ack");
    }
    if (*acked > acked_offset_) {
      stats_.bytes_shipped += *acked - acked_offset_;
      ++stats_.batches_shipped;
      acked_offset_ = *acked;
      pending_reset_ = false;
      *progress = true;
    }
    UpdateLag(file_size, acked_offset_);
    return Status::Ok();
  }
  if (response->status == 409) {
    // Offset mismatch: adopt the replica's acked offset. A replica ahead
    // of our (possibly truncated) WAL forces a full reset.
    ++stats_.offset_rewinds;
    const auto acked = ParseAckedOffset(response->body);
    if (acked.has_value() && *acked <= file_size && !pending_reset_) {
      acked_offset_ = *acked;
    } else {
      acked_offset_ = 0;
      pending_reset_ = true;
    }
    *progress = true;  // resynchronised; next batch continues
    UpdateLag(file_size, acked_offset_);
    return Status::Ok();
  }
  // 400: torn in flight — resend the same range next tick. Anything else
  // (peer mid-restart, 503) is equally retryable.
  ++stats_.batches_rejected;
  return Status::Ok();
}

}  // namespace serenade
