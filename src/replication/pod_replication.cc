#include "replication/pod_replication.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "replication/replication_protocol.h"
#include "serving/json.h"
#include "testing/fault_injection.h"

namespace serenade {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t ParseU64(const std::string& text, uint64_t fallback = 0) {
  if (text.empty()) return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return static_cast<uint64_t>(value);
}

/// True when `prefix` is a whole-token comma-list prefix of `full`
/// ("1,2" of "1,2,3" but not of "1,22").
bool IsTokenPrefix(const std::string& prefix, const std::string& full) {
  if (prefix.size() > full.size()) return false;
  if (full.compare(0, prefix.size(), prefix) != 0) return false;
  return prefix.size() == full.size() || full[prefix.size()] == ',';
}

}  // namespace

std::string MergeSessionValues(const std::string& replica,
                               const std::string& local) {
  if (local.empty() || IsTokenPrefix(local, replica)) return replica;
  if (replica.empty() || IsTokenPrefix(replica, local)) return local;
  // Divergent histories: the replica's clicks predate the failover clicks
  // the local pod accrued, so replay them first.
  return replica + "," + local;
}

PodReplication::PodReplication(SerenadeServer* server,
                               PodReplicationConfig config)
    : server_(server), config_(std::move(config)) {
  WalShipperConfig ship;
  ship.donor_name = config_.pod_name;
  ship.wal_path = store().options().wal_path;
  ship.ship_interval_ms = config_.ship_interval_ms;
  ship.max_batch_bytes = config_.max_batch_bytes;
  ship.client = config_.client;
  shipper_ = std::make_unique<WalShipper>(
      std::move(ship), [this] { return store().SyncWal(); },
      [this] { return store().wal_generation(); });
  HttpClientPoolConfig pool;
  pool.client = config_.client;
  pool_ = std::make_unique<HttpClientPool>(pool);
  RegisterRoutes();
  RegisterHooks();
  RegisterMetrics();
}

PodReplication::~PodReplication() { Stop(); }

Status PodReplication::Start() {
  shipper_->Start();
  return Status::Ok();
}

void PodReplication::Stop() { shipper_->Stop(); }

void PodReplication::RegisterRoutes() {
  Router& router = server_->router();
  router.Handle("POST", repl::kBatchPath,
                [this](const HttpRequest& request, Trace* trace) {
                  return HandleBatch(request, trace);
                });
  router.Handle("POST", repl::kPeerPath,
                [this](const HttpRequest& request, Trace* trace) {
                  return HandlePeer(request, trace);
                });
  router.Handle("POST", repl::kPromotePath,
                [this](const HttpRequest& request, Trace* trace) {
                  return HandlePromote(request, trace);
                });
  router.Handle("POST", repl::kRestorePath,
                [this](const HttpRequest& request, Trace* trace) {
                  return HandleRestore(request, trace);
                });
  router.Handle("POST", repl::kHandoffPath,
                [this](const HttpRequest& request, Trace* trace) {
                  return HandleHandoff(request, trace);
                });
  router.Handle("POST", repl::kHandoffFinishPath,
                [this](const HttpRequest& request, Trace* trace) {
                  return HandleHandoffFinish(request, trace);
                });
}

void PodReplication::RegisterHooks() {
  WriteHooks hooks;
  hooks.divert = [this](const std::string& key, bool batch_slot,
                        const std::string& slot_json) {
    return Divert(key, batch_slot, slot_json);
  };
  hooks.done = [this](const std::string& key) { WriteDone(key); };
  server_->set_write_hooks(std::move(hooks));

  server_->add_healthz_extra([this](JsonWriter& writer) {
    writer.Key("replica_lag_bytes").Value(shipper_->lag_bytes());
    writer.Key("replica_lag_seconds").Value(shipper_->lag_seconds());
    writer.Key("ring_epoch").Value(ring_epoch());
  });
  server_->add_stats_extra([this](JsonWriter& writer) {
    const WalShipperStats ship = shipper_->stats();
    writer.Key("replication").BeginObject();
    writer.Key("replica_lag_bytes").Value(shipper_->lag_bytes());
    writer.Key("replica_lag_seconds").Value(shipper_->lag_seconds());
    writer.Key("ring_epoch").Value(ring_epoch());
    writer.Key("peer_port").Value(static_cast<uint64_t>(shipper_->peer_port()));
    writer.Key("batches_shipped").Value(ship.batches_shipped);
    writer.Key("bytes_shipped").Value(ship.bytes_shipped);
    writer.Key("ship_errors").Value(ship.ship_errors);
    writer.Key("offset_rewinds").Value(ship.offset_rewinds);
    writer.Key("batches_applied").Value(hub_.batches_applied_total());
    writer.Key("batches_rejected").Value(hub_.batches_rejected_total());
    writer.Key("replica_donors")
        .Value(static_cast<uint64_t>(hub_.Donors().size()));
    writer.Key("sessions_moved").Value(sessions_moved_.load());
    writer.Key("handoff_redirects").Value(redirects_.load());
    writer.Key("handoff_proxied_writes").Value(proxied_writes_.load());
    writer.Key("handoff_blocked_writes").Value(blocked_writes_.load());
    writer.Key("promotions").Value(promotions_.load());
    writer.Key("sessions_promoted").Value(sessions_promoted_.load());
    writer.EndObject();
  });
}

void PodReplication::RegisterMetrics() {
  MetricsRegistry& registry = server_->metrics();
  auto single = [](uint64_t value) {
    return std::vector<MetricSample>{{"", value}};
  };
  registry.AddCallback(
      "serenade_replica_lag_bytes",
      "WAL bytes not yet acknowledged by the ring successor",
      MetricType::kGauge, "",
      [this, single] { return single(shipper_->lag_bytes()); });
  registry.AddCallback(
      "serenade_replica_lag_milliseconds",
      "Milliseconds since the replica was last fully caught up",
      MetricType::kGauge, "", [this, single] {
        return single(static_cast<uint64_t>(shipper_->lag_seconds() * 1000.0));
      });
  registry.AddCallback("serenade_ring_epoch",
                       "Fleet membership epoch this pod last adopted",
                       MetricType::kGauge, "",
                       [this, single] { return single(ring_epoch()); });
  registry.AddCallback(
      "serenade_repl_batches_shipped_total",
      "Replication batches acknowledged by the ring successor",
      MetricType::kCounter, "",
      [this, single] { return single(shipper_->stats().batches_shipped); });
  registry.AddCallback(
      "serenade_repl_ship_errors_total",
      "Replication ship attempts that failed in transport",
      MetricType::kCounter, "",
      [this, single] { return single(shipper_->stats().ship_errors); });
  registry.AddCallback(
      "serenade_repl_batches_applied_total",
      "Replication batches this pod applied for its donors",
      MetricType::kCounter, "",
      [this, single] { return single(hub_.batches_applied_total()); });
  registry.AddCallback(
      "serenade_repl_batches_rejected_total",
      "Replication batches this pod rejected (offset mismatch or torn)",
      MetricType::kCounter, "",
      [this, single] { return single(hub_.batches_rejected_total()); });
  registry.AddCallback(
      "serenade_handoff_sessions_moved_total",
      "Sessions cut over to a new owner during live hand-offs",
      MetricType::kCounter, "",
      [this, single] { return single(sessions_moved_.load()); });
  registry.AddCallback(
      "serenade_handoff_redirects_total",
      "Single recommends 307-redirected to a session's new owner",
      MetricType::kCounter, "",
      [this, single] { return single(redirects_.load()); });
  registry.AddCallback(
      "serenade_handoff_proxied_writes_total",
      "Batch slots proxied to a session's new owner mid-hand-off",
      MetricType::kCounter, "",
      [this, single] { return single(proxied_writes_.load()); });
  registry.AddCallback(
      "serenade_sessions_promoted_total",
      "Replica sessions merged into the live store on owner failover",
      MetricType::kCounter, "",
      [this, single] { return single(sessions_promoted_.load()); });
}

HttpResponse PodReplication::HandleBatch(const HttpRequest& request,
                                         Trace* trace) {
  const std::string donor = request.Header(repl::kDonorHeader);
  if (donor.empty()) {
    return ApiError(400, "missing " + std::string(repl::kDonorHeader),
                    trace->id());
  }
  const uint64_t seq = ParseU64(request.Header(repl::kSeqHeader));
  const uint64_t offset = ParseU64(request.Header(repl::kOffsetHeader));
  const bool reset = request.Header(repl::kResetHeader) == "1";
  uint64_t acked = 0;
  auto applied =
      hub_.ApplyBatch(donor, seq, offset, reset, request.body, &acked);
  if (!applied.ok()) {
    const int status = HttpStatusForStatus(applied.status());
    if (status == 409) {
      // Offset mismatch: the envelope additionally carries the replica's
      // acked offset so the shipper can resynchronise in one round trip.
      JsonWriter writer;
      writer.BeginObject().Key("error").BeginObject();
      writer.Key("code").Value(ApiErrorCode(409));
      writer.Key("message").Value(applied.status().message());
      writer.Key("trace_id").Value(trace->id());
      writer.EndObject().Key(repl::kAckedOffsetField).Value(acked).EndObject();
      HttpResponse response = HttpResponse::Json(writer.str());
      response.status = 409;
      response.headers[repl::kOffsetHeader] = std::to_string(acked);
      return response;
    }
    return ApiError(status, applied.status().message(), trace->id());
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key(repl::kAckedOffsetField).Value(*applied);
  writer.Key("seq").Value(seq);
  writer.EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse PodReplication::HandlePeer(const HttpRequest& request,
                                        Trace* trace) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "invalid JSON: " + doc.status().message(),
                    trace->id());
  }
  const JsonValue* port = doc->Find("peer_port");
  if (port == nullptr || port->type() != JsonValue::Type::kNumber) {
    return ApiError(400, "missing peer_port", trace->id());
  }
  shipper_->SetPeer(static_cast<uint16_t>(port->AsInt()));
  if (const JsonValue* epoch = doc->Find("ring_epoch");
      epoch != nullptr && epoch->type() == JsonValue::Type::kNumber) {
    uint64_t incoming = static_cast<uint64_t>(epoch->AsInt());
    uint64_t current = ring_epoch_.load(std::memory_order_acquire);
    while (incoming > current &&
           !ring_epoch_.compare_exchange_weak(current, incoming)) {
    }
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("status").Value("ok");
  writer.Key("peer_port").Value(static_cast<uint64_t>(shipper_->peer_port()));
  writer.Key("ring_epoch").Value(ring_epoch());
  writer.EndObject();
  HttpResponse response = HttpResponse::Json(writer.str());
  response.headers[repl::kRingEpochHeader] = std::to_string(ring_epoch());
  return response;
}

HttpResponse PodReplication::HandlePromote(const HttpRequest& request,
                                           Trace* trace) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "invalid JSON: " + doc.status().message(),
                    trace->id());
  }
  const JsonValue* donor = doc->Find("donor");
  if (donor == nullptr || donor->type() != JsonValue::Type::kString) {
    return ApiError(400, "missing donor", trace->id());
  }
  const auto entries = hub_.SnapshotDonor(donor->AsString());
  hub_.DropDonor(donor->AsString());

  const uint64_t now = store().options().clock();
  const uint64_t ttl = store().options().ttl_seconds;
  size_t merged = 0;
  size_t skipped = 0;
  for (const auto& entry : entries) {
    // A session that was already expired on the dead owner must not come
    // back to life on its replica.
    if (now > entry.last_access && now - entry.last_access > ttl) {
      ++skipped;
      continue;
    }
    const Status updated =
        store().Update(entry.key, [&entry](const std::string& local) {
          return MergeSessionValues(entry.value, local);
        });
    if (!updated.ok()) {
      return ApiError(500, "promotion write failed: " + updated.ToString(),
                      trace->id());
    }
    ++merged;
  }
  ++promotions_;
  sessions_promoted_ += merged;
  sessions_promote_skipped_ += skipped;
  LOG_INFO << "replication: promoted donor " << donor->AsString() << " ("
           << merged << " sessions, " << skipped << " expired skipped)";
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("status").Value("ok");
  writer.Key("donor").Value(donor->AsString());
  writer.Key("promoted").Value(static_cast<uint64_t>(merged));
  writer.Key("skipped_expired").Value(static_cast<uint64_t>(skipped));
  writer.EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse PodReplication::HandleRestore(const HttpRequest& request,
                                           Trace* trace) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "invalid JSON: " + doc.status().message(),
                    trace->id());
  }
  const JsonValue* list = doc->Find("entries");
  if (list == nullptr || list->type() != JsonValue::Type::kArray) {
    return ApiError(400, "missing entries", trace->id());
  }
  std::vector<SessionStore::RestoreEntry> entries;
  entries.reserve(list->AsArray().size());
  for (const JsonValue& member : list->AsArray()) {
    const JsonValue* key = member.Find("k");
    const JsonValue* value = member.Find("v");
    const JsonValue* timestamp = member.Find("t");
    if (key == nullptr || key->type() != JsonValue::Type::kString ||
        value == nullptr || value->type() != JsonValue::Type::kString ||
        timestamp == nullptr ||
        timestamp->type() != JsonValue::Type::kNumber) {
      return ApiError(400, "entry needs k, v, t", trace->id());
    }
    entries.push_back(SessionStore::RestoreEntry{
        key->AsString(), value->AsString(),
        static_cast<uint64_t>(timestamp->AsInt())});
  }
  auto restored = store().Restore(entries);
  if (!restored.ok()) {
    return ApiError(500, "restore failed: " + restored.status().ToString(),
                    trace->id());
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("restored").Value(static_cast<uint64_t>(*restored));
  writer.EndObject();
  return HttpResponse::Json(writer.str());
}

HttpResponse PodReplication::HandleHandoff(const HttpRequest& request,
                                           Trace* trace) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    return ApiError(400, "invalid JSON: " + doc.status().message(),
                    trace->id());
  }
  const JsonValue* members = doc->Find("members");
  if (members == nullptr || members->type() != JsonValue::Type::kArray ||
      members->AsArray().empty()) {
    return ApiError(400, "missing members", trace->id());
  }
  size_t virtual_nodes = config_.virtual_nodes;
  if (const JsonValue* v = doc->Find("virtual_nodes");
      v != nullptr && v->type() == JsonValue::Type::kNumber) {
    virtual_nodes = static_cast<size_t>(v->AsInt());
  }
  uint64_t target_epoch = 0;
  if (const JsonValue* epoch = doc->Find("ring_epoch");
      epoch != nullptr && epoch->type() == JsonValue::Type::kNumber) {
    target_epoch = static_cast<uint64_t>(epoch->AsInt());
  }
  HashRing pending(virtual_nodes);
  std::map<std::string, uint16_t> ports;
  std::set<std::string> names;
  for (const JsonValue& member : members->AsArray()) {
    const JsonValue* name = member.Find("name");
    const JsonValue* port = member.Find("port");
    if (name == nullptr || name->type() != JsonValue::Type::kString ||
        port == nullptr || port->type() != JsonValue::Type::kNumber) {
      return ApiError(400, "member needs name and port", trace->id());
    }
    pending.AddNode(name->AsString());
    ports[name->AsString()] = static_cast<uint16_t>(port->AsInt());
    names.insert(name->AsString());
  }

  {
    std::lock_guard<std::mutex> lock(transfer_mutex_);
    // A retried hand-off against the same pending membership continues
    // where the previous attempt stopped (moved/pushed survive), so a
    // mid-transfer donor crash is repaired by simply re-posting.
    if (!(transfer_.active && transfer_.member_names == names)) {
      transfer_ = Transfer{};
      transfer_.active = true;
      transfer_.ring = pending;
      transfer_.member_names = names;
    }
    transfer_.ports = ports;
    transfer_.target_epoch = target_epoch;
  }
  ++handoffs_;

  // Push-then-cutover passes: a key is cut over only once its current
  // value has been pushed AND no local write is in flight, so every
  // acknowledged click either reaches the new owner in a push or is
  // redirected there after cutover.
  const int max_passes = config_.handoff_max_passes + 5;
  for (int pass = 0;; ++pass) {
    if (pass >= max_passes) {
      return ApiError(500, "hand-off failed to converge", trace->id());
    }
    auto entries = store().DumpEntries();
    std::map<std::string, std::vector<SessionStore::RestoreEntry>> to_push;
    std::vector<std::pair<std::string, std::string>> settled;
    {
      std::lock_guard<std::mutex> lock(transfer_mutex_);
      for (auto& entry : entries) {
        const std::string& owner = transfer_.ring.NodeFor(entry.key);
        if (owner == config_.pod_name) continue;
        if (transfer_.moved.count(entry.key) != 0) continue;
        auto pushed = transfer_.pushed.find(entry.key);
        if (pushed != transfer_.pushed.end() &&
            pushed->second == entry.value) {
          settled.emplace_back(entry.key, entry.value);
        } else {
          to_push[owner].push_back(std::move(entry));
        }
      }
    }
    if (to_push.empty() && settled.empty()) break;

    for (auto& [owner, batch] : to_push) {
      const uint16_t port = ports.at(owner);
      for (size_t begin = 0; begin < batch.size();
           begin += config_.restore_batch_entries) {
        const size_t end =
            std::min(batch.size(), begin + config_.restore_batch_entries);
        std::vector<SessionStore::RestoreEntry> chunk(
            batch.begin() + static_cast<ptrdiff_t>(begin),
            batch.begin() + static_cast<ptrdiff_t>(end));
        const Status pushed = PostRestore(port, chunk);
        if (!pushed.ok()) {
          return ApiError(502,
                          "hand-off push to " + owner +
                              " failed: " + pushed.ToString(),
                          trace->id());
        }
        {
          std::lock_guard<std::mutex> lock(transfer_mutex_);
          for (auto& entry : chunk) {
            transfer_.pushed[entry.key] = entry.value;
          }
        }
        // The donor dies (or aborts) mid-transfer after some keys were
        // pushed. Transfer state is kept, so the gateway's retry resumes
        // instead of restarting — and nothing was cut over twice.
        SERENADE_FAULT_POINT(FaultSite::kHandoffCutoverCrash, {
          return ApiError(500, "injected: hand-off crashed mid-transfer",
                          trace->id());
        });
      }
    }

    {
      std::lock_guard<std::mutex> lock(transfer_mutex_);
      for (const auto& [key, value] : settled) {
        if (inflight_.count(key) != 0) continue;
        const auto current = store().PeekEntry(key);
        if (!current.has_value() || current->value == value) {
          transfer_.moved.insert(key);
          transfer_.blocked.erase(key);
          ++sessions_moved_;
        }
      }
    }

    if (pass == config_.handoff_max_passes) {
      // Hot keys keep changing faster than we can push them: briefly
      // block their writers (the gateway retries the 503s) so the last
      // values freeze and the transfer converges.
      {
        std::lock_guard<std::mutex> lock(transfer_mutex_);
        for (const auto& entry : store().DumpEntries()) {
          if (transfer_.ring.NodeFor(entry.key) != config_.pod_name &&
              transfer_.moved.count(entry.key) == 0) {
            transfer_.blocked.insert(entry.key);
          }
        }
      }
      AwaitMovingInflightDrain();
    }
  }

  // Converged for every key that existed when the last pass scanned.
  // Close the range: from here brand-new moving keys divert straight to
  // their pending owner and stragglers with local state get a brief 503,
  // so after the drain below the final sweep sees a frozen store.
  {
    std::lock_guard<std::mutex> lock(transfer_mutex_);
    transfer_.range_closed = true;
  }
  AwaitMovingInflightDrain();
  for (auto& entry : store().DumpEntries()) {
    std::string owner;
    {
      std::lock_guard<std::mutex> lock(transfer_mutex_);
      owner = transfer_.ring.NodeFor(entry.key);
      if (owner == config_.pod_name ||
          transfer_.moved.count(entry.key) != 0) {
        continue;
      }
    }
    const Status pushed = PostRestore(ports.at(owner), {entry});
    if (!pushed.ok()) {
      return ApiError(502,
                      "hand-off push to " + owner + " failed: " +
                          pushed.ToString(),
                      trace->id());
    }
    std::lock_guard<std::mutex> lock(transfer_mutex_);
    transfer_.pushed[entry.key] = entry.value;
    transfer_.moved.insert(entry.key);
    transfer_.blocked.erase(entry.key);
    ++sessions_moved_;
  }

  uint64_t moved_total = 0;
  {
    std::lock_guard<std::mutex> lock(transfer_mutex_);
    moved_total = transfer_.moved.size();
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("status").Value("ok");
  writer.Key("moved").Value(moved_total);
  writer.Key("ring_epoch").Value(target_epoch);
  writer.EndObject();
  HttpResponse response = HttpResponse::Json(writer.str());
  response.headers[repl::kRingEpochHeader] = std::to_string(target_epoch);
  return response;
}

HttpResponse PodReplication::HandleHandoffFinish(const HttpRequest& request,
                                                 Trace* trace) {
  (void)request;
  (void)trace;
  std::vector<std::string> doomed;
  uint64_t target_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(transfer_mutex_);
    if (!transfer_.active) {
      JsonWriter writer;
      writer.BeginObject();
      writer.Key("status").Value("ok");
      writer.Key("dropped").Value(static_cast<uint64_t>(0));
      writer.Key("ring_epoch").Value(ring_epoch());
      writer.EndObject();
      return HttpResponse::Json(writer.str());
    }
    doomed.assign(transfer_.moved.begin(), transfer_.moved.end());
    target_epoch = transfer_.target_epoch;
  }
  // Delete while the transfer diverts are still armed, so a concurrent
  // write for a moved key cannot land locally between drop and clear.
  for (const std::string& key : doomed) {
    (void)store().Delete(key);
  }
  {
    std::lock_guard<std::mutex> lock(transfer_mutex_);
    residue_ = std::move(transfer_);
    transfer_ = Transfer{};
    residue_until_ms_ = SteadyNowMs() + static_cast<int64_t>(config_.residue_ms);
  }
  uint64_t current = ring_epoch_.load(std::memory_order_acquire);
  while (target_epoch > current &&
         !ring_epoch_.compare_exchange_weak(current, target_epoch)) {
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("status").Value("ok");
  writer.Key("dropped").Value(static_cast<uint64_t>(doomed.size()));
  writer.Key("ring_epoch").Value(ring_epoch());
  writer.EndObject();
  HttpResponse response = HttpResponse::Json(writer.str());
  response.headers[repl::kRingEpochHeader] = std::to_string(ring_epoch());
  return response;
}

std::optional<HttpResponse> PodReplication::Divert(
    const std::string& key, bool batch_slot, const std::string& slot_json) {
  uint16_t divert_port = 0;
  bool block = false;
  {
    std::unique_lock<std::mutex> lock(transfer_mutex_);
    if (transfer_.active && transfer_.ring.num_nodes() > 0) {
      const std::string& owner = transfer_.ring.NodeFor(key);
      if (owner != config_.pod_name) {
        if (transfer_.moved.count(key) != 0) {
          divert_port = transfer_.ports.at(owner);
        } else if (transfer_.blocked.count(key) != 0) {
          block = true;
        } else if (transfer_.range_closed) {
          // Brand-new keys (no local state) go straight to their pending
          // owner; a straggler with local state waits out the final sweep.
          if (store().PeekEntry(key).has_value()) {
            block = true;
          } else {
            divert_port = transfer_.ports.at(owner);
          }
        }
      }
    } else if (residue_.active && SteadyNowMs() < residue_until_ms_ &&
               residue_.ring.num_nodes() > 0) {
      // Post-finish grace window: requests routed against the pre-flip
      // ring still reach the new owner instead of re-creating a session
      // the donor just handed off.
      const std::string& owner = residue_.ring.NodeFor(key);
      if (owner != config_.pod_name && !store().PeekEntry(key).has_value()) {
        divert_port = residue_.ports.at(owner);
      }
    }
    if (!block && divert_port == 0) {
      ++inflight_[key];
      return std::nullopt;
    }
  }
  if (block) {
    ++blocked_writes_;
    HttpResponse response =
        ApiError(503, "session mid-hand-off; retry shortly", "");
    response.headers["Retry-After"] = "1";
    return response;
  }
  if (batch_slot) return ProxySlot(divert_port, slot_json);
  return RedirectTo(divert_port);
}

void PodReplication::WriteDone(const std::string& key) {
  std::lock_guard<std::mutex> lock(transfer_mutex_);
  auto it = inflight_.find(key);
  if (it != inflight_.end() && --it->second <= 0) inflight_.erase(it);
}

HttpResponse PodReplication::RedirectTo(uint16_t port) {
  ++redirects_;
  HttpResponse response;
  response.status = 307;
  response.headers["Location"] = "/v1/recommend";
  response.headers[repl::kBackendPortHeader] = std::to_string(port);
  response.body = "{\"redirect\":true}";
  return response;
}

HttpResponse PodReplication::ProxySlot(uint16_t port,
                                       const std::string& slot_json) {
  ++proxied_writes_;
  auto client = pool_->Acquire(port);
  if (!client.ok()) {
    return ApiError(503,
                    "hand-off proxy connect failed: " +
                        client.status().ToString());
  }
  auto response = (*client)->Post("/v1/recommend", slot_json);
  const bool reusable =
      response.ok() && response->Header("connection") != "close";
  pool_->Release(port, std::move(*client), reusable);
  if (!response.ok()) {
    return ApiError(503,
                    "hand-off proxy failed: " + response.status().ToString());
  }
  return *response;
}

Status PodReplication::PostRestore(
    uint16_t port, const std::vector<SessionStore::RestoreEntry>& entries) {
  JsonWriter writer;
  writer.BeginObject().Key("entries").BeginArray();
  for (const auto& entry : entries) {
    writer.BeginObject();
    writer.Key("k").Value(entry.key);
    writer.Key("v").Value(entry.value);
    writer.Key("t").Value(entry.last_access);
    writer.EndObject();
  }
  writer.EndArray().EndObject();
  auto client = pool_->Acquire(port);
  if (!client.ok()) return client.status();
  auto response = (*client)->Post(repl::kRestorePath, writer.str());
  const bool reusable =
      response.ok() && response->Header("connection") != "close";
  pool_->Release(port, std::move(*client), reusable);
  if (!response.ok()) return response.status();
  if (response->status != 200) {
    return Status::Internal("restore push rejected: HTTP " +
                            std::to_string(response->status));
  }
  return Status::Ok();
}

void PodReplication::AwaitMovingInflightDrain() {
  // Bounded: a missed done() must degrade to a residual race, not a
  // wedged hand-off request.
  for (int spin = 0; spin < 25000; ++spin) {
    bool busy = false;
    {
      std::lock_guard<std::mutex> lock(transfer_mutex_);
      if (!transfer_.active || transfer_.ring.num_nodes() == 0) return;
      for (const auto& [key, count] : inflight_) {
        if (count > 0 &&
            transfer_.ring.NodeFor(key) != config_.pod_name) {
          busy = true;
          break;
        }
      }
    }
    if (!busy) return;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  LOG_WARNING << "replication: hand-off drain timed out with writes in flight";
}

}  // namespace serenade
