#include "replication/replica_hub.h"

#include <utility>

#include "store/wal.h"

namespace serenade {

StatusOr<uint64_t> ReplicaHub::ApplyBatch(const std::string& donor,
                                          uint64_t seq, uint64_t start_offset,
                                          bool reset, std::string_view bytes,
                                          uint64_t* acked_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  Donor& state = donors_[donor];
  if (reset) {
    // The donor's WAL was rewritten (compaction / fresh shipper): rebuild
    // the replica from offset zero.
    state.table.clear();
    state.log.clear();
    state.acked_offset = 0;
  }
  if (acked_out != nullptr) *acked_out = state.acked_offset;
  if (start_offset != state.acked_offset) {
    ++state.batches_rejected;
    ++batches_rejected_;
    return Status::Corruption(
        "batch offset " + std::to_string(start_offset) +
        " does not continue the replica (acked " +
        std::to_string(state.acked_offset) + ")");
  }

  // Parse before applying: a batch either lands whole or not at all, so
  // the accepted log stays a byte-exact prefix of the donor WAL.
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  auto replayed = ReplayWalBytes(
      bytes, [&](const WalRecord& record) { records.push_back(record); },
      &valid_bytes);
  if (!replayed.ok() || valid_bytes != bytes.size()) {
    ++state.batches_rejected;
    ++batches_rejected_;
    return Status::InvalidArgument(
        "torn replication batch: " +
        (replayed.ok() ? std::to_string(valid_bytes) + " of " +
                             std::to_string(bytes.size()) + " bytes intact"
                       : replayed.status().message()));
  }

  for (const WalRecord& record : records) {
    if (record.type == WalRecordType::kDelete) {
      state.table.erase(record.key);
    } else {
      state.table[record.key] = SessionStore::RestoreEntry{
          record.key, record.value, record.timestamp};
    }
  }
  state.log.append(bytes.data(), bytes.size());
  state.acked_offset += bytes.size();
  state.last_seq = seq;
  ++state.batches_applied;
  ++batches_applied_;
  bytes_applied_ += bytes.size();
  if (acked_out != nullptr) *acked_out = state.acked_offset;
  return state.acked_offset;
}

std::vector<SessionStore::RestoreEntry> ReplicaHub::SnapshotDonor(
    const std::string& donor) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionStore::RestoreEntry> out;
  auto it = donors_.find(donor);
  if (it == donors_.end()) return out;
  out.reserve(it->second.table.size());
  for (const auto& [key, entry] : it->second.table) out.push_back(entry);
  return out;
}

void ReplicaHub::DropDonor(const std::string& donor) {
  std::lock_guard<std::mutex> lock(mutex_);
  donors_.erase(donor);
}

std::string ReplicaHub::LogBytes(const std::string& donor) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = donors_.find(donor);
  return it == donors_.end() ? std::string() : it->second.log;
}

ReplicaDonorState ReplicaHub::DonorState(const std::string& donor) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicaDonorState out;
  auto it = donors_.find(donor);
  if (it == donors_.end()) return out;
  out.acked_offset = it->second.acked_offset;
  out.last_seq = it->second.last_seq;
  out.batches_applied = it->second.batches_applied;
  out.batches_rejected = it->second.batches_rejected;
  out.entries = it->second.table.size();
  return out;
}

std::vector<std::string> ReplicaHub::Donors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(donors_.size());
  for (const auto& [name, state] : donors_) out.push_back(name);
  return out;
}

uint64_t ReplicaHub::batches_applied_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_applied_;
}

uint64_t ReplicaHub::batches_rejected_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_rejected_;
}

uint64_t ReplicaHub::bytes_applied_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_applied_;
}

}  // namespace serenade
