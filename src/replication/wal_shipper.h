// Sending side of WAL shipping: a background thread that tails the pod's
// own WAL file and streams it to the ring successor in bounded,
// sequence-numbered batches over keep-alive HTTP (the ReplicaHub protocol
// described in replica_hub.h). Catch-up is implicit: the shipper always
// sends the next unacked byte range, so after a receiver restart the 409
// rewind resynchronises from whatever offset the replica actually holds,
// and after a donor-side WAL rewrite (compaction) the generation bump
// restarts shipping from offset zero with the reset flag.
//
// Durability contract: Stop() performs a final synchronous flush, so a
// gracefully stopped pod has shipped every acknowledged write; a crashed
// pod replays its own WAL on restart and the shipper re-tails it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "serving/http.h"

namespace serenade {

struct WalShipperConfig {
  std::string donor_name;             ///< this pod's name (batch header)
  std::string wal_path;               ///< the WAL file to tail
  uint64_t ship_interval_ms = 20;     ///< tail poll cadence
  size_t max_batch_bytes = 256 * 1024;
  /// Client deadlines for the ship hop; defaults keep a dead peer from
  /// wedging the shipper thread.
  HttpClientOptions client{/*connect_timeout_ms=*/2000,
                           /*io_timeout_ms=*/5000};
};

struct WalShipperStats {
  uint64_t batches_shipped = 0;
  uint64_t bytes_shipped = 0;
  uint64_t batches_rejected = 0;  ///< 400s from the receiver (torn in flight)
  uint64_t offset_rewinds = 0;    ///< 409 resynchronisations
  uint64_t ship_errors = 0;       ///< transport failures (incl. lost acks)
  uint64_t resets = 0;            ///< restarts from offset zero
};

/// One shipper per pod. Thread-safe.
class WalShipper {
 public:
  /// `sync_wal` flushes the store's WAL buffers before the file is read
  /// (SessionStore::SyncWal); `wal_generation` detects in-place rewrites
  /// (SessionStore::wal_generation).
  WalShipper(WalShipperConfig config, std::function<Status()> sync_wal,
             std::function<uint64_t()> wal_generation);
  ~WalShipper();

  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  /// Starts the shipping thread (idles until a peer is set).
  void Start();

  /// Final flush + join. Idempotent.
  void Stop();

  /// Points the shipper at its ring successor (0 = replication off).
  /// Changing to a different port restarts shipping from offset zero with
  /// the reset flag; re-announcing the current port is a no-op.
  void SetPeer(uint16_t port);
  uint16_t peer_port() const {
    return peer_port_.load(std::memory_order_acquire);
  }

  /// Ships synchronously until the replica holds every WAL byte currently
  /// on disk (or an error stalls progress). Used by graceful shutdown and
  /// by tests that need deterministic zero lag.
  Status FlushNow();

  /// Unshipped WAL bytes (0 when no peer is configured).
  uint64_t lag_bytes() const {
    return lag_bytes_.load(std::memory_order_acquire);
  }

  /// Seconds since the replica was last fully caught up (0 when caught
  /// up or when no peer is configured).
  double lag_seconds() const;

  WalShipperStats stats() const;

 private:
  void Loop();
  /// One bounded batch. Sets `*progress` when the acked offset advanced
  /// or the log is fully shipped.
  Status ShipOnce(bool* progress);
  Status ShipUntilCaughtUp();
  void UpdateLag(uint64_t file_size, uint64_t acked);

  const WalShipperConfig config_;
  const std::function<Status()> sync_wal_;
  const std::function<uint64_t()> wal_generation_;

  std::atomic<uint16_t> peer_port_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> lag_bytes_{0};
  std::atomic<int64_t> caught_up_at_ms_{0};  // steady clock, ms

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::thread thread_;

  // Serialises shipping (loop vs FlushNow) and guards the state below.
  mutable std::mutex ship_mutex_;
  std::unique_ptr<HttpClient> client_;
  uint16_t connected_port_ = 0;
  uint64_t acked_offset_ = 0;
  uint64_t seq_ = 0;
  uint64_t last_generation_ = 0;
  bool pending_reset_ = true;  // first batch to a fresh peer announces reset
  WalShipperStats stats_;
};

}  // namespace serenade
