// Pod-side replication agent: owns the WAL shipper (this pod -> ring
// successor) and the replica hub (ring predecessors -> this pod), and
// registers the replication/hand-off control-plane routes on the pod's
// router before the server starts:
//
//   POST /v1/admin/replication/batch    WAL batches from donors (hub)
//   POST /v1/admin/replication/peer     {"peer_port":N,"ring_epoch":E}
//                                       rewires the shipper target
//   POST /v1/admin/replication/promote  {"donor":"pod-X"} merges the
//                                       donor's replica into this pod's
//                                       live store (session-aware merge,
//                                       expired entries skipped)
//   POST /v1/admin/sessions/restore     {"entries":[{"k","v","t"},...]}
//                                       hand-off entries from a donor
//   POST /v1/admin/sessions/handoff     {"ring_epoch","virtual_nodes",
//                                        "members":[{"name","port"}...]}
//                                       push every session whose pending
//                                       owner is another member, with
//                                       per-key cutover (see DESIGN.md
//                                       §12); retry-safe and idempotent
//   POST /v1/admin/sessions/handoff:finish  drop moved keys, adopt epoch
//
// Mid-hand-off writes: once a key is cut over, a single recommend gets a
// 307 + X-Serenade-Backend-Port (the gateway follows one hop) and a
// batch slot is proxied to the new owner. The write-hook inflight
// accounting guarantees a key is only cut over once its local value has
// quiesced AND been pushed, so no acknowledged click is ever stranded on
// the donor.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "cluster/hash_ring.h"
#include "common/status.h"
#include "replication/replica_hub.h"
#include "replication/wal_shipper.h"
#include "serving/client_pool.h"
#include "serving/server.h"

namespace serenade {

struct PodReplicationConfig {
  std::string pod_name;
  /// Must match the gateway's ring so donor and gateway agree on pending
  /// ownership during hand-off.
  size_t virtual_nodes = 128;
  uint64_t ship_interval_ms = 20;
  size_t max_batch_bytes = 256 * 1024;
  HttpClientOptions client{/*connect_timeout_ms=*/2000,
                           /*io_timeout_ms=*/5000};
  /// Hand-off restore push granularity.
  size_t restore_batch_entries = 256;
  /// Push/cutover passes before the hand-off falls back to briefly
  /// blocking writers of the remaining (hot) keys.
  int handoff_max_passes = 50;
  /// How long post-finish write diversion lingers so in-flight requests
  /// routed against the pre-flip ring still reach the new owner.
  uint64_t residue_ms = 2000;
};

/// Attach to a SerenadeServer BEFORE Start(); Start()/Stop() bracket the
/// shipping thread (Stop flushes, so graceful shutdown loses nothing).
class PodReplication {
 public:
  PodReplication(SerenadeServer* server, PodReplicationConfig config);
  ~PodReplication();

  PodReplication(const PodReplication&) = delete;
  PodReplication& operator=(const PodReplication&) = delete;

  Status Start();
  void Stop();

  ReplicaHub& hub() { return hub_; }
  WalShipper& shipper() { return *shipper_; }
  uint64_t ring_epoch() const {
    return ring_epoch_.load(std::memory_order_acquire);
  }

  uint64_t sessions_moved_total() const { return sessions_moved_.load(); }
  uint64_t redirects_total() const { return redirects_.load(); }
  uint64_t proxied_writes_total() const { return proxied_writes_.load(); }
  uint64_t promotions_total() const { return promotions_.load(); }
  uint64_t handoffs_total() const { return handoffs_.load(); }

 private:
  struct Transfer {
    bool active = false;
    /// Set once the push loop converged: every pre-existing moving key is
    /// cut over, brand-new moving keys divert straight to their pending
    /// owner, and stragglers with local state are briefly blocked.
    bool range_closed = false;
    uint64_t target_epoch = 0;
    HashRing ring;                                  // pending membership
    std::map<std::string, uint16_t> ports;          // member -> port
    std::set<std::string> member_names;
    std::set<std::string> moved;                    // cut-over keys
    std::set<std::string> blocked;                  // force-cutover window
    std::unordered_map<std::string, std::string> pushed;  // key -> value
  };

  SessionStore& store() { return server_->service().session_store(); }

  void RegisterRoutes();
  void RegisterHooks();
  void RegisterMetrics();

  HttpResponse HandleBatch(const HttpRequest& request, Trace* trace);
  HttpResponse HandlePeer(const HttpRequest& request, Trace* trace);
  HttpResponse HandlePromote(const HttpRequest& request, Trace* trace);
  HttpResponse HandleRestore(const HttpRequest& request, Trace* trace);
  HttpResponse HandleHandoff(const HttpRequest& request, Trace* trace);
  HttpResponse HandleHandoffFinish(const HttpRequest& request, Trace* trace);

  /// The replication write hook: nullopt admits a local write (and
  /// registers it in-flight); otherwise the response to return (307 /
  /// proxied slot result / 503 during the cutover window).
  std::optional<HttpResponse> Divert(const std::string& key, bool batch_slot,
                                     const std::string& slot_json);
  void WriteDone(const std::string& key);

  HttpResponse RedirectTo(uint16_t port);
  HttpResponse ProxySlot(uint16_t port, const std::string& slot_json);
  Status PostRestore(uint16_t port,
                     const std::vector<SessionStore::RestoreEntry>& entries);
  void AwaitMovingInflightDrain();

  SerenadeServer* server_;
  const PodReplicationConfig config_;
  ReplicaHub hub_;
  std::unique_ptr<WalShipper> shipper_;
  std::unique_ptr<HttpClientPool> pool_;  // hand-off pushes + slot proxies

  std::atomic<uint64_t> ring_epoch_{0};

  mutable std::mutex transfer_mutex_;
  Transfer transfer_;
  std::unordered_map<std::string, int> inflight_;
  /// Post-finish diversion residue (see residue_ms).
  Transfer residue_;
  int64_t residue_until_ms_ = 0;

  std::atomic<uint64_t> sessions_moved_{0};
  std::atomic<uint64_t> redirects_{0};
  std::atomic<uint64_t> proxied_writes_{0};
  std::atomic<uint64_t> blocked_writes_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> sessions_promoted_{0};
  std::atomic<uint64_t> sessions_promote_skipped_{0};
  std::atomic<uint64_t> handoffs_{0};
};

/// Merges a replica's session value with clicks the local pod accrued
/// while serving failover traffic. Session values are append-only comma
/// lists, so if one side is a token-prefix of the other the longer wins;
/// otherwise the replica history (older clicks) is concatenated before
/// the local suffix. Exposed for tests.
std::string MergeSessionValues(const std::string& replica,
                               const std::string& local);

}  // namespace serenade
