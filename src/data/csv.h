// Reading / writing click logs in the canonical CSV layout used by the
// public session-rec datasets: one click per line,
// `session_id<sep>item_id<sep>timestamp`, optional header, comma or tab
// separated. Lets users drop in retailrocket / rsc15 exports directly.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace serenade {

/// Parses a click log from a file. Detects a header line (any line whose
/// first field is non-numeric is skipped once at the start) and accepts
/// ',', '\t' or ';' as separators. Returns kIoError when the file cannot
/// be opened and kCorruption for malformed rows.
StatusOr<std::vector<Click>> ReadClicksCsv(const std::string& path);

/// Parses clicks from an in-memory string (same format as ReadClicksCsv).
StatusOr<std::vector<Click>> ParseClicksCsv(const std::string& content);

/// Writes clicks as `session_id,item_id,timestamp` with a header line.
Status WriteClicksCsv(const std::string& path,
                      const std::vector<Click>& clicks);

}  // namespace serenade
