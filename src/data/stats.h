// Dataset statistics in the shape of the paper's Table 1.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/click_log.h"

namespace serenade {

/// Row of Table 1: size counters plus clicks-per-session percentiles.
struct DatasetStats {
  std::string name;
  size_t clicks = 0;
  size_t sessions = 0;
  size_t items = 0;        ///< number of *distinct* items that occur
  size_t days = 0;
  size_t p25 = 0;
  size_t p50 = 0;
  size_t p75 = 0;
  size_t p99 = 0;
};

/// Computes Table 1 statistics for a dataset.
DatasetStats ComputeStats(const std::string& name, const Dataset& dataset);

/// Renders stats rows as an aligned text table (Table 1 layout).
std::string FormatStatsTable(const std::vector<DatasetStats>& rows);

}  // namespace serenade
