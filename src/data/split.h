// Chronological train/test splitting following the paper's evaluation
// protocol (Section 5.1: "we use the last day as held-out test set").
#pragma once

#include <cstddef>

#include "data/click_log.h"

namespace serenade {

/// A chronological split: `train` holds the historical sessions the index
/// is built from; `test` holds the held-out evolving sessions.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Splits off the sessions whose last click falls within the final
/// `test_days` days of the dataset. Standard session-rec hygiene is
/// applied to the test set: items never seen in training are removed from
/// test sessions (a cold-start item cannot be predicted by any of the
/// compared methods), and test sessions shorter than 2 clicks after
/// filtering are dropped.
TrainTestSplit SplitLastDays(const Dataset& dataset, size_t test_days = 1);

}  // namespace serenade
