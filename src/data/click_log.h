// In-memory click-log dataset: clicks grouped into sessions, with the
// session/item vocabulary information the algorithms and evaluators need.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace serenade {

/// One historical session: its items in click order and the timestamp of
/// its most recent click (used for recency-based sampling).
struct SessionData {
  SessionId id = kInvalidSession;
  Timestamp start_time = 0;
  Timestamp end_time = 0;
  std::vector<ItemId> items;
};

/// A set of sessions parsed from a click log. Sessions are stored in
/// ascending end_time order and re-numbered with consecutive SessionIds,
/// so per-session metadata can live in flat arrays.
class Dataset {
 public:
  Dataset() = default;

  /// Groups raw clicks by session id, orders clicks within a session by
  /// timestamp (stable on ties, preserving log order), drops sessions
  /// shorter than min_session_length, sorts sessions by end time and
  /// assigns dense ids. Item ids are preserved as-is; num_items is
  /// max(item_id)+1 over the remaining clicks.
  static Dataset FromClicks(std::vector<Click> clicks,
                            size_t min_session_length = 2);

  const std::vector<SessionData>& sessions() const { return sessions_; }
  size_t num_sessions() const { return sessions_.size(); }
  size_t num_items() const { return num_items_; }
  size_t num_clicks() const { return num_clicks_; }

  Timestamp min_timestamp() const { return min_timestamp_; }
  Timestamp max_timestamp() const { return max_timestamp_; }

  /// Flattens back to a click list (session end-time order).
  std::vector<Click> ToClicks() const;

 private:
  std::vector<SessionData> sessions_;
  size_t num_items_ = 0;
  size_t num_clicks_ = 0;
  Timestamp min_timestamp_ = 0;
  Timestamp max_timestamp_ = 0;
};

}  // namespace serenade
