#include "data/csv.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

namespace serenade {

namespace {

// Splits a line on the detected separator into at most 4 fields.
int SplitFields(std::string_view line, char sep, std::string_view* fields,
                int max_fields) {
  int count = 0;
  size_t start = 0;
  while (count < max_fields) {
    const size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields[count++] = line.substr(start);
      break;
    }
    fields[count++] = line.substr(start, pos - start);
    start = pos + 1;
  }
  return count;
}

char DetectSeparator(std::string_view line) {
  for (char c : line) {
    if (c == ',' || c == '\t' || c == ';') return c;
  }
  return ',';
}

bool ParseUint64(std::string_view field, uint64_t* out) {
  // Tolerate fractional timestamps ("1433221332.117") by truncating.
  const size_t dot = field.find('.');
  if (dot != std::string_view::npos) field = field.substr(0, dot);
  if (field.empty()) return false;
  const auto result =
      std::from_chars(field.data(), field.data() + field.size(), *out);
  return result.ec == std::errc() &&
         result.ptr == field.data() + field.size();
}

}  // namespace

StatusOr<std::vector<Click>> ParseClicksCsv(const std::string& content) {
  std::vector<Click> clicks;
  std::string_view remaining(content);
  bool first_line = true;
  char sep = ',';
  size_t line_number = 0;

  while (!remaining.empty()) {
    ++line_number;
    const size_t newline = remaining.find('\n');
    std::string_view line = remaining.substr(0, newline);
    remaining = newline == std::string_view::npos
                    ? std::string_view()
                    : remaining.substr(newline + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;

    if (first_line) {
      sep = DetectSeparator(line);
      first_line = false;
      // Header detection: skip if the first field is not numeric.
      if (!line.empty() && !std::isdigit(static_cast<unsigned char>(line[0]))) {
        continue;
      }
    }

    std::string_view fields[4];
    const int num_fields = SplitFields(line, sep, fields, 4);
    if (num_fields < 3) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": expected 3 fields");
    }
    uint64_t session = 0, item = 0, timestamp = 0;
    if (!ParseUint64(fields[0], &session) || !ParseUint64(fields[1], &item) ||
        !ParseUint64(fields[2], &timestamp)) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": non-numeric field");
    }
    clicks.push_back(Click{static_cast<SessionId>(session),
                           static_cast<ItemId>(item), timestamp});
  }
  return clicks;
}

StatusOr<std::vector<Click>> ReadClicksCsv(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::IoError("read failure on " + path);
  return ParseClicksCsv(buffer.str());
}

Status WriteClicksCsv(const std::string& path,
                      const std::vector<Click>& clicks) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << "session_id,item_id,timestamp\n";
  for (const Click& click : clicks) {
    file << click.session_id << ',' << click.item_id << ','
         << click.timestamp << '\n';
  }
  file.flush();
  if (!file) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

}  // namespace serenade
