#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace serenade {

namespace {

// Samples a geometric draw on {0, 1, 2, ...} with success probability p
// via inversion, so a single uniform suffices.
size_t SampleGeometric(Rng& rng, double p) {
  const double u = rng.NextDouble();
  if (p >= 1.0) return 0;
  return static_cast<size_t>(std::log1p(-u) / std::log1p(-p));
}

size_t SampleSessionLength(Rng& rng, const SessionLengthModel& model) {
  const double p =
      rng.Bernoulli(model.heavy_weight) ? model.heavy_p : model.light_p;
  const size_t length = 2 + SampleGeometric(rng, p);
  return std::min(length, model.max_length);
}

// Diurnal second-of-day: traffic peaks in the evening (around 20:30, as in
// Figure 3(c) where load tops out in the evening hours), with a morning
// shoulder and a deep night-time trough.
Timestamp SampleSecondOfDay(Rng& rng) {
  // Rejection-sample against a two-bump intensity profile.
  while (true) {
    const double t = rng.NextDouble() * 86400.0;          // candidate second
    const double hour = t / 3600.0;
    const double evening = std::exp(-0.5 * std::pow((hour - 20.5) / 3.0, 2));
    const double morning =
        0.6 * std::exp(-0.5 * std::pow((hour - 10.0) / 3.5, 2));
    const double intensity = 0.08 + evening + morning;    // floor at night
    if (rng.NextDouble() * 1.7 < intensity) return static_cast<Timestamp>(t);
  }
}

}  // namespace

DatasetProfile RetailRocketProfile(double scale) {
  SyntheticConfig config;
  config.seed = 0x7e7a117ULL;
  config.num_items = static_cast<size_t>(21276 * std::sqrt(scale));
  config.num_sessions = static_cast<size_t>(23318 * scale);
  config.num_days = 10;
  config.cluster_size = 60;
  // Public-data profile: shorter sessions (Table 1: p50=2, p75=4, p99=19).
  config.length_model = SessionLengthModel{0.10, 0.55, 0.12, 200};
  return DatasetProfile{"retailrocket", config, scale};
}

DatasetProfile Rsc15Profile(double scale) {
  SyntheticConfig config;
  config.seed = 0x25c15ULL;
  config.num_items = static_cast<size_t>(37483 * std::sqrt(scale));
  config.num_sessions =
      static_cast<size_t>(7981581 * scale);
  config.num_days = std::max<size_t>(7, static_cast<size_t>(181 * scale * 4));
  config.cluster_size = 120;
  config.length_model = SessionLengthModel{0.10, 0.45, 0.12, 200};
  return DatasetProfile{"rsc15", config, scale};
}

DatasetProfile Ecom1mProfile(double scale) {
  SyntheticConfig config;
  config.seed = 0xec0/*m*/ + 1;
  config.num_items = static_cast<size_t>(110988 * std::sqrt(scale));
  config.num_sessions = static_cast<size_t>(214490 * scale);
  config.num_days = 30;
  config.cluster_size = 300;
  // Proprietary profile: p25=2, p50=4, p75=6-7, p99=28-39.
  config.length_model = SessionLengthModel{0.13, 0.28, 0.08, 300};
  return DatasetProfile{"ecom-1m", config, scale};
}

DatasetProfile EcomScaledProfile(const char* name, double million_clicks,
                                 double scale) {
  // The ecom-60m/90m/180m rows of Table 1 average ~6.3-6.6 clicks/session
  // and ~57 clicks/item; preserve those densities at the requested scale.
  SyntheticConfig config;
  config.seed = 0xec09000ULL + static_cast<uint64_t>(million_clicks);
  const double clicks = million_clicks * 1e6 * scale;
  config.num_sessions = static_cast<size_t>(clicks / 6.4);
  config.num_items = static_cast<size_t>(clicks / 57.0);
  config.num_days = million_clicks > 70 ? 91 : 29;
  config.cluster_size = 400;
  config.length_model = SessionLengthModel{0.15, 0.30, 0.07, 300};
  return DatasetProfile{name, config, scale};
}

std::vector<Click> GenerateClicks(const SyntheticConfig& config) {
  assert(config.num_items >= 2);
  assert(config.num_sessions >= 1);
  Rng rng(config.seed);

  const size_t num_clusters =
      std::max<size_t>(1, config.num_items / std::max<size_t>(1, config.cluster_size));
  const size_t cluster_size =
      (config.num_items + num_clusters - 1) / num_clusters;

  // Popularity rank within each cluster follows a Zipf law; cluster choice
  // follows its own Zipf. A random permutation decouples item ids from
  // ranks so that id order carries no popularity information.
  std::vector<ItemId> permutation(config.num_items);
  std::iota(permutation.begin(), permutation.end(), 0);
  for (size_t i = permutation.size() - 1; i > 0; --i) {
    std::swap(permutation[i], permutation[rng.Below(i + 1)]);
  }

  ZipfDistribution cluster_dist(num_clusters,
                                config.cluster_popularity_exponent);
  ZipfDistribution within_dist(cluster_size, config.within_cluster_exponent);
  ZipfDistribution global_dist(config.num_items,
                               config.item_popularity_exponent);

  auto item_in_cluster = [&](size_t cluster, size_t rank) -> ItemId {
    const size_t index =
        std::min(cluster * cluster_size + rank, config.num_items - 1);
    return permutation[index];
  };

  std::vector<Click> clicks;
  clicks.reserve(config.num_sessions * 5);

  const Timestamp base_time = 1600000000;  // fixed epoch for determinism
  for (size_t s = 0; s < config.num_sessions; ++s) {
    const SessionId session_id = static_cast<SessionId>(s);
    const size_t length = SampleSessionLength(rng, config.length_model);

    const uint64_t day = rng.Below(config.num_days);
    Timestamp now = base_time + day * 86400 + SampleSecondOfDay(rng);

    // Interest drift: rotate which clusters are popular as days pass.
    const size_t drift_offset = static_cast<size_t>(
        static_cast<double>(day) * config.cluster_drift_per_day *
        static_cast<double>(num_clusters));
    auto drifted = [&](size_t cluster) {
      return (cluster + drift_offset) % num_clusters;
    };
    size_t cluster = drifted(cluster_dist.Sample(rng));
    std::vector<ItemId> session_items;
    session_items.reserve(length);
    for (size_t c = 0; c < length; ++c) {
      ItemId item;
      if (!session_items.empty() && rng.Bernoulli(config.revisit_probability)) {
        item = session_items[rng.Below(session_items.size())];
      } else {
        if (rng.Bernoulli(config.cluster_jump_probability)) {
          // Leave the interest: either hop clusters or grab a globally
          // popular item (front-page banner effect), 50/50.
          if (rng.Bernoulli(0.5)) {
            cluster = drifted(cluster_dist.Sample(rng));
            item = item_in_cluster(cluster, within_dist.Sample(rng));
          } else {
            item = permutation[global_dist.Sample(rng)];
          }
        } else {
          item = item_in_cluster(cluster, within_dist.Sample(rng));
        }
      }
      session_items.push_back(item);
      clicks.push_back(Click{session_id, item, now});
      now += 10 + rng.Below(110);  // 10-120s dwell time between clicks
    }
  }
  return clicks;
}

Dataset GenerateDataset(const SyntheticConfig& config) {
  return Dataset::FromClicks(GenerateClicks(config));
}

ItemCatalog GenerateCatalog(size_t num_items, uint64_t seed,
                            double unavailable_fraction,
                            double adult_fraction) {
  ItemCatalog catalog;
  catalog.available.resize(num_items, true);
  catalog.adult.resize(num_items, false);
  Rng rng(seed ^ 0xca7a109ULL);
  for (size_t i = 0; i < num_items; ++i) {
    if (rng.Bernoulli(unavailable_fraction)) catalog.available[i] = false;
    if (rng.Bernoulli(adult_fraction)) catalog.adult[i] = true;
  }
  return catalog;
}

}  // namespace serenade
