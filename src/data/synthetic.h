// Synthetic e-commerce clickstream generator: the stand-in for bol.com's
// proprietary ecom-* datasets and (when the real CSVs are unavailable) the
// public retailrocket / rsc15 datasets.
//
// The generator reproduces the structural properties that matter for
// session-based kNN recommendation:
//   * Zipf-distributed item popularity (a few blockbusters, a long tail).
//   * Latent-interest clusters: each session browses mostly within one
//     interest (e.g. a product category), so sessions that share items are
//     genuinely similar and co-visitation carries predictive signal.
//   * Heavy-tailed session lengths calibrated to Table 1 of the paper
//     (proprietary profile: p25=2, p50=4, p75=7, p99~39; public profile:
//     p25=2, p50=2-3, p75=4, p99~19).
//   * Timestamps spread over a configurable number of days with a diurnal
//     load curve, so recency-based sampling and "last day held out"
//     evaluation splits behave like they do on real data.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "data/click_log.h"

namespace serenade {

/// Parameters of the session-length mixture: length = 2 + Geometric draw,
/// mixing a "light" browser and a "heavy" browser population.
struct SessionLengthModel {
  double heavy_weight = 0.15;  ///< fraction of heavy-browsing sessions
  double light_p = 0.28;       ///< geometric success prob, light population
  double heavy_p = 0.07;       ///< geometric success prob, heavy population
  size_t max_length = 200;     ///< hard cap (the platform bounds sessions)
};

/// Full generator configuration.
struct SyntheticConfig {
  uint64_t seed = 42;
  size_t num_items = 20000;
  size_t num_sessions = 50000;
  size_t num_days = 30;
  /// Items per latent interest cluster (clusters partition the catalog).
  size_t cluster_size = 200;
  /// Zipf exponent of global item popularity.
  double item_popularity_exponent = 1.05;
  /// Zipf exponent of cluster popularity (some categories dominate).
  double cluster_popularity_exponent = 0.8;
  /// Zipf exponent of within-cluster item choice.
  double within_cluster_exponent = 1.1;
  /// Probability that a click leaves the session's current cluster.
  double cluster_jump_probability = 0.15;
  /// Probability that a click revisits an earlier item of the session
  /// (users bouncing back to a product detail page).
  double revisit_probability = 0.08;
  /// Interest drift: fraction of the cluster space the popularity ranking
  /// rotates per day (0 = stationary). Non-zero drift makes recent
  /// sessions genuinely more predictive than old ones, which is what
  /// recency-based sampling and index freshness exploit on real data.
  double cluster_drift_per_day = 0.0;
  SessionLengthModel length_model;
};

/// Named profiles matching the datasets of Table 1 (scaled so the largest
/// ones stay laptop-friendly; the scale factor is reported alongside).
struct DatasetProfile {
  const char* name;
  SyntheticConfig config;
  /// Scale factor applied relative to the paper's dataset (1 = full size).
  double scale = 1.0;
};

/// Profile factory functions. `scale` in (0, 1] shrinks sessions/items
/// proportionally (item count shrinks with sqrt(scale) to keep density).
DatasetProfile RetailRocketProfile(double scale = 1.0);
DatasetProfile Rsc15Profile(double scale = 0.02);
DatasetProfile Ecom1mProfile(double scale = 1.0);
DatasetProfile EcomScaledProfile(const char* name, double million_clicks,
                                 double scale);

/// Generates raw clicks according to the configuration.
std::vector<Click> GenerateClicks(const SyntheticConfig& config);

/// Convenience: generate and group into a Dataset.
Dataset GenerateDataset(const SyntheticConfig& config);

/// Per-item catalog attributes consumed by the serving layer's business
/// rules (Section 4.2: "remove unavailable products and filter for adult
/// products").
struct ItemCatalog {
  std::vector<bool> available;
  std::vector<bool> adult;

  size_t num_items() const { return available.size(); }
};

/// Deterministically flags a fraction of the catalog as unavailable /
/// adult (default 2% / 1%).
ItemCatalog GenerateCatalog(size_t num_items, uint64_t seed,
                            double unavailable_fraction = 0.02,
                            double adult_fraction = 0.01);

}  // namespace serenade
