#include "data/stats.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace serenade {

namespace {

size_t PercentileOfSorted(const std::vector<size_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

DatasetStats ComputeStats(const std::string& name, const Dataset& dataset) {
  DatasetStats stats;
  stats.name = name;
  stats.clicks = dataset.num_clicks();
  stats.sessions = dataset.num_sessions();

  std::unordered_set<ItemId> distinct_items;
  std::vector<size_t> lengths;
  lengths.reserve(dataset.num_sessions());
  for (const SessionData& session : dataset.sessions()) {
    lengths.push_back(session.items.size());
    distinct_items.insert(session.items.begin(), session.items.end());
  }
  stats.items = distinct_items.size();

  if (dataset.num_sessions() > 0) {
    stats.days = static_cast<size_t>(
        (dataset.max_timestamp() - dataset.min_timestamp()) / 86400 + 1);
  }

  std::sort(lengths.begin(), lengths.end());
  stats.p25 = PercentileOfSorted(lengths, 0.25);
  stats.p50 = PercentileOfSorted(lengths, 0.50);
  stats.p75 = PercentileOfSorted(lengths, 0.75);
  stats.p99 = PercentileOfSorted(lengths, 0.99);
  return stats;
}

std::string FormatStatsTable(const std::vector<DatasetStats>& rows) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-16s %12s %12s %10s %6s %5s %5s %5s %5s\n",
                "dataset", "clicks", "sessions", "items", "days", "p25",
                "p50", "p75", "p99");
  out += line;
  for (const DatasetStats& s : rows) {
    std::snprintf(line, sizeof(line),
                  "%-16s %12zu %12zu %10zu %6zu %5zu %5zu %5zu %5zu\n",
                  s.name.c_str(), s.clicks, s.sessions, s.items, s.days,
                  s.p25, s.p50, s.p75, s.p99);
    out += line;
  }
  return out;
}

}  // namespace serenade
