#include "data/split.h"

#include <vector>

namespace serenade {

TrainTestSplit SplitLastDays(const Dataset& dataset, size_t test_days) {
  TrainTestSplit split;
  if (dataset.num_sessions() == 0) return split;

  const Timestamp cutoff =
      dataset.max_timestamp() >= test_days * 86400
          ? dataset.max_timestamp() - test_days * 86400
          : 0;

  std::vector<Click> train_clicks;
  std::vector<SessionData> test_candidates;
  std::vector<bool> seen_in_train(dataset.num_items(), false);

  for (const SessionData& session : dataset.sessions()) {
    if (session.end_time <= cutoff) {
      const size_t n = session.items.size();
      for (size_t i = 0; i < n; ++i) {
        const Timestamp ts =
            n <= 1 ? session.start_time
                   : session.start_time +
                         (session.end_time - session.start_time) * i / (n - 1);
        train_clicks.push_back(Click{session.id, session.items[i], ts});
        seen_in_train[session.items[i]] = true;
      }
    } else {
      test_candidates.push_back(session);
    }
  }

  std::vector<Click> test_clicks;
  for (const SessionData& session : test_candidates) {
    // Drop items that never occur in training data; no compared method can
    // predict them, and VS-kNN-family methods cannot even match on them.
    std::vector<ItemId> filtered;
    filtered.reserve(session.items.size());
    for (ItemId item : session.items) {
      if (item < seen_in_train.size() && seen_in_train[item]) {
        filtered.push_back(item);
      }
    }
    if (filtered.size() < 2) continue;
    const size_t n = filtered.size();
    for (size_t i = 0; i < n; ++i) {
      const Timestamp ts =
          n <= 1 ? session.start_time
                 : session.start_time +
                       (session.end_time - session.start_time) * i / (n - 1);
      test_clicks.push_back(Click{session.id, filtered[i], ts});
    }
  }

  split.train = Dataset::FromClicks(std::move(train_clicks));
  split.test = Dataset::FromClicks(std::move(test_clicks));
  return split;
}

}  // namespace serenade
