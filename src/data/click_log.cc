#include "data/click_log.h"

#include <algorithm>
#include <unordered_map>

namespace serenade {

Dataset Dataset::FromClicks(std::vector<Click> clicks,
                            size_t min_session_length) {
  Dataset dataset;
  if (clicks.empty()) return dataset;

  // Group clicks by their original session id, preserving log order within
  // each session (stable sort by timestamp happens per session below).
  std::unordered_map<SessionId, std::vector<Click>> by_session;
  by_session.reserve(clicks.size() / 4 + 1);
  for (const Click& click : clicks) {
    by_session[click.session_id].push_back(click);
  }

  std::vector<SessionData> sessions;
  sessions.reserve(by_session.size());
  for (auto& [original_id, session_clicks] : by_session) {
    if (session_clicks.size() < min_session_length) continue;
    std::stable_sort(session_clicks.begin(), session_clicks.end(),
                     [](const Click& a, const Click& b) {
                       return a.timestamp < b.timestamp;
                     });
    SessionData session;
    session.start_time = session_clicks.front().timestamp;
    session.end_time = session_clicks.back().timestamp;
    session.items.reserve(session_clicks.size());
    for (const Click& click : session_clicks) {
      session.items.push_back(click.item_id);
    }
    sessions.push_back(std::move(session));
  }

  // Ascending end time; dense ids in that order so that "larger session id"
  // also means "more recent", matching the index builder's assumptions.
  std::sort(sessions.begin(), sessions.end(),
            [](const SessionData& a, const SessionData& b) {
              return a.end_time < b.end_time;
            });

  size_t max_item = 0;
  dataset.min_timestamp_ = ~Timestamp{0};
  for (size_t i = 0; i < sessions.size(); ++i) {
    sessions[i].id = static_cast<SessionId>(i);
    dataset.num_clicks_ += sessions[i].items.size();
    dataset.min_timestamp_ =
        std::min(dataset.min_timestamp_, sessions[i].start_time);
    dataset.max_timestamp_ =
        std::max(dataset.max_timestamp_, sessions[i].end_time);
    for (ItemId item : sessions[i].items) {
      max_item = std::max(max_item, static_cast<size_t>(item));
    }
  }
  if (sessions.empty()) {
    dataset.min_timestamp_ = 0;
  }
  dataset.num_items_ = sessions.empty() ? 0 : max_item + 1;
  dataset.sessions_ = std::move(sessions);
  return dataset;
}

std::vector<Click> Dataset::ToClicks() const {
  std::vector<Click> clicks;
  clicks.reserve(num_clicks_);
  for (const SessionData& session : sessions_) {
    // Reconstruct per-click timestamps by linear interpolation between the
    // session's start and end times (exact per-click times are not kept).
    const size_t n = session.items.size();
    for (size_t i = 0; i < n; ++i) {
      Timestamp ts =
          n <= 1 ? session.start_time
                 : session.start_time + (session.end_time -
                                         session.start_time) *
                                            i / (n - 1);
      clicks.push_back(Click{session.id, session.items[i], ts});
    }
  }
  return clicks;
}

}  // namespace serenade
