#include "common/logging.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace serenade {
namespace {

// Restores the global level after each test.
class LoggingTest : public testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, MacrosStreamArbitraryTypes) {
  SetLogLevel(LogLevel::kDebug);
  // Compiles and executes across levels and operand types; output goes to
  // stderr (inspected manually / by the harness), the assertion here is
  // "no crash, no UB".
  LOG_DEBUG << "debug " << 1 << " " << 2.5 << " " << std::string("s");
  LOG_INFO << "info " << true;
  LOG_WARNING << "warning " << static_cast<void*>(nullptr);
  LOG_ERROR << "error " << 'c';
}

TEST_F(LoggingTest, DisabledLevelsDoNotEvaluateOperands) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "built";
  };
  LOG_DEBUG << expensive();
  LOG_INFO << expensive();
  LOG_WARNING << expensive();
  EXPECT_EQ(evaluations, 0) << "suppressed levels must not evaluate operands";
  LOG_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, ConcurrentLoggingDoesNotInterleaveCrash) {
  SetLogLevel(LogLevel::kError);  // keep the test output quiet
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        LOG_ERROR << "thread " << t << " line " << i;
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace serenade
