#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/popularity.h"
#include "cluster/gateway.h"
#include "cluster/hash_ring.h"
#include "cluster/health.h"
#include "common/logging.h"
#include "core/session_index.h"
#include "data/synthetic.h"
#include "index/snapshot.h"
#include "obs/trace.h"
#include "serving/json.h"
#include "serving/server.h"

namespace serenade {
namespace {

// --- consistent-hash ring ---------------------------------------------------

TEST(HashRingTest, StableAndDistinctReplicas) {
  HashRing ring;
  for (int i = 0; i < 5; ++i) ring.AddNode("pod-" + std::to_string(i));
  EXPECT_EQ(ring.num_nodes(), 5u);
  for (const std::string key : {"alpha", "beta", "gamma"}) {
    const std::string owner = ring.NodeFor(key);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(ring.NodeFor(key), owner);
    const auto replicas = ring.ReplicasFor(key, 5);
    ASSERT_EQ(replicas.size(), 5u);
    EXPECT_EQ(replicas[0], owner);
    std::map<std::string, int> seen;
    for (const auto& node : replicas) ++seen[node];
    EXPECT_EQ(seen.size(), 5u);  // all distinct
  }
}

TEST(HashRingTest, AddNodeIsIdempotentAndRemoveUnknownIsNoop) {
  HashRing ring;
  ring.AddNode("a");
  ring.AddNode("a");
  EXPECT_EQ(ring.num_nodes(), 1u);
  ring.RemoveNode("zzz");
  EXPECT_EQ(ring.num_nodes(), 1u);
  EXPECT_EQ(ring.NodeFor("any-key"), "a");
}

TEST(HashRingTest, ReasonablyBalanced) {
  constexpr size_t kNodes = 4, kKeys = 40000;
  HashRing ring;
  for (size_t i = 0; i < kNodes; ++i) ring.AddNode("pod-" + std::to_string(i));
  std::map<std::string, size_t> counts;
  for (size_t i = 0; i < kKeys; ++i) {
    ++counts[ring.NodeFor("session-" + std::to_string(i))];
  }
  for (const auto& [node, count] : counts) {
    // Within 2x of the fair share in both directions.
    EXPECT_GT(count, kKeys / kNodes / 2) << node;
    EXPECT_LT(count, kKeys / kNodes * 2) << node;
  }
}

// Acceptance criterion (b): removing one of N pods remaps strictly less
// than 2/N of the keys, and only keys owned by the removed pod move.
TEST(HashRingTest, RemovalRemapsOnlyTheRemovedNodesKeys) {
  constexpr size_t kNodes = 5, kKeys = 10000;
  HashRing ring;
  for (size_t i = 0; i < kNodes; ++i) ring.AddNode("pod-" + std::to_string(i));

  std::vector<std::string> before(kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    before[i] = ring.NodeFor("session-" + std::to_string(i));
  }

  const std::string removed = "pod-2";
  ring.RemoveNode(removed);

  size_t moved = 0;
  for (size_t i = 0; i < kKeys; ++i) {
    const std::string after = ring.NodeFor("session-" + std::to_string(i));
    if (after != before[i]) {
      ++moved;
      // Consistent hashing: survivors never lose keys to each other.
      EXPECT_EQ(before[i], removed);
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved) / kKeys, 2.0 / kNodes);
}

// --- health checker ---------------------------------------------------------

HttpHandler PodHandler(const std::string& pod_name,
                       std::atomic<uint64_t>* recommends) {
  return [pod_name, recommends](const HttpRequest& request) -> HttpResponse {
    if (request.path == "/healthz" || request.path == "/v1/healthz") {
      return HttpResponse::Json("{\"status\":\"ok\"}");
    }
    if (request.path == "/recommend") {
      recommends->fetch_add(1);
      return HttpResponse::Json("{\"items\":[1,2],\"scores\":[2.0,1.0],"
                                "\"pod\":\"" + pod_name + "\"}");
    }
    return HttpResponse::Error(404, "unknown path");
  };
}

TEST(HealthCheckerTest, EjectsAndReadmits) {
  std::atomic<uint64_t> unused{0};
  auto server = std::make_unique<HttpServer>(PodHandler("h", &unused));
  ASSERT_TRUE(server->Start(0).ok());
  const uint16_t port = server->port();

  HealthCheckerConfig config;
  config.failures_to_eject = 2;
  config.successes_to_readmit = 2;
  config.probe_timeout_ms = 200;
  HealthChecker checker({BackendEndpoint{"h", port}}, config);

  checker.ProbeAllOnce();
  EXPECT_TRUE(checker.IsHealthy("h"));
  EXPECT_FALSE(checker.IsHealthy("unknown"));

  server->Stop();
  server.reset();
  checker.ProbeAllOnce();
  EXPECT_TRUE(checker.IsHealthy("h"));  // one failure: not ejected yet
  checker.ProbeAllOnce();
  EXPECT_FALSE(checker.IsHealthy("h"));  // second failure: ejected
  EXPECT_EQ(checker.NumHealthy(), 0u);

  // Pod comes back on the same port: readmitted after two successes.
  server = std::make_unique<HttpServer>(PodHandler("h", &unused));
  ASSERT_TRUE(server->Start(port).ok());
  checker.ProbeAllOnce();
  EXPECT_FALSE(checker.IsHealthy("h"));
  checker.ProbeAllOnce();
  EXPECT_TRUE(checker.IsHealthy("h"));

  const auto snapshot = checker.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].ejections_total, 1u);
  EXPECT_GE(snapshot[0].probes_total, 5u);
  server->Stop();
}

// --- gateway over fake pods -------------------------------------------------

// Three fake pods that answer /healthz and /recommend (tagging responses
// with their name), so routing behaviour is observable without the full
// VMIS-kNN stack.
class GatewayTest : public testing::Test {
 protected:
  static constexpr size_t kPods = 3;

  void StartPods() {
    for (size_t i = 0; i < kPods; ++i) {
      pods_.push_back(std::make_unique<HttpServer>(
          PodHandler("pod-" + std::to_string(i), &recommends_[i])));
      ASSERT_TRUE(pods_.back()->Start(0).ok());
      backends_.push_back(BackendEndpoint{"pod-" + std::to_string(i),
                                          pods_.back()->port()});
    }
  }

  std::unique_ptr<Recommender> MakeFallback() {
    SyntheticConfig config;
    config.num_items = 50;
    config.num_sessions = 500;
    fallback_train_ = GenerateDataset(config);
    return std::make_unique<PopularityRecommender>(fallback_train_);
  }

  GatewayConfig FastConfig() {
    GatewayConfig config;
    config.forward_timeout_ms = 500;
    config.max_attempts = 3;
    config.retry_backoff_ms = 1;
    config.health.probe_interval_ms = 30;
    config.health.probe_timeout_ms = 100;
    config.health.failures_to_eject = 2;
    config.health.successes_to_readmit = 1;
    return config;
  }

  Dataset fallback_train_;
  std::atomic<uint64_t> recommends_[kPods] = {};
  std::vector<std::unique_ptr<HttpServer>> pods_;
  std::vector<BackendEndpoint> backends_;
};

// Acceptance criterion (a): all requests of one session land on the same
// pod, and that pod is the ring owner.
TEST_F(GatewayTest, SessionStickinessAcrossRequests) {
  StartPods();
  ClusterGateway gateway(backends_, FastConfig(), MakeFallback());
  ASSERT_TRUE(gateway.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(gateway.port()).ok());
  const std::string owner = gateway.OwnerOf("sticky-session");
  for (int i = 0; i < 20; ++i) {
    auto response = client.Get(
        "/recommend?session_id=sticky-session&item_id=" + std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200);
    auto doc = ParseJson(response->body);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->Find("pod")->AsString(), owner);
  }
  // Exactly one pod saw the traffic.
  size_t pods_hit = 0;
  for (size_t i = 0; i < kPods; ++i) {
    if (recommends_[i].load() > 0) ++pods_hit;
  }
  EXPECT_EQ(pods_hit, 1u);
  gateway.Stop();
}

TEST_F(GatewayTest, DifferentSessionsSpreadOverTheFleet) {
  StartPods();
  ClusterGateway gateway(backends_, FastConfig(), MakeFallback());
  ASSERT_TRUE(gateway.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(gateway.port()).ok());
  for (int i = 0; i < 60; ++i) {
    auto response = client.Get("/recommend?session_id=spread-" +
                               std::to_string(i) + "&item_id=1");
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200);
  }
  size_t pods_hit = 0;
  for (size_t i = 0; i < kPods; ++i) {
    if (recommends_[i].load() > 0) ++pods_hit;
  }
  EXPECT_GE(pods_hit, 2u);  // 60 sessions cannot all hash to one pod
  gateway.Stop();
}

TEST_F(GatewayTest, MissingSessionIdRejected) {
  StartPods();
  ClusterGateway gateway(backends_, FastConfig(), MakeFallback());
  ASSERT_TRUE(gateway.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect(gateway.port()).ok());
  EXPECT_EQ(client.Get("/recommend?item_id=1")->status, 400);
  EXPECT_EQ(client.Get("/nope")->status, 404);
  gateway.Stop();
}

// Acceptance criterion (c): killing a backend mid-load yields zero
// client-visible 5xx — requests fail over to ring successors (or degrade).
TEST_F(GatewayTest, KillingBackendMidLoadYieldsNoClientVisible5xx) {
  StartPods();
  ClusterGateway gateway(backends_, FastConfig(), MakeFallback());
  ASSERT_TRUE(gateway.Start().ok());

  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> five_xx{0}, transport_errors{0}, requests{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClientOptions options;
      options.connect_timeout_ms = 3000;
      options.io_timeout_ms = 3000;
      HttpClient client(options);
      if (!client.Connect(gateway.port()).ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      int i = 0;
      while (!stop.load()) {
        const std::string session =
            "load-" + std::to_string(c) + "-" + std::to_string(i++ % 40);
        auto response =
            client.Get("/recommend?session_id=" + session + "&item_id=7");
        requests.fetch_add(1);
        if (!response.ok()) {
          transport_errors.fetch_add(1);
        } else if (response->status >= 500) {
          five_xx.fetch_add(1);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  pods_[0]->Stop();  // kill one pod mid-load
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& thread : clients) thread.join();

  EXPECT_GT(requests.load(), 50u);
  EXPECT_EQ(five_xx.load(), 0u);
  EXPECT_EQ(transport_errors.load(), 0u);
  // The dead pod was ejected by probes/passive signals.
  EXPECT_FALSE(gateway.health().IsHealthy("pod-0"));
  gateway.Stop();
}

TEST_F(GatewayTest, AllBackendsDownServesDegradedPopularity) {
  StartPods();
  ClusterGateway gateway(backends_, FastConfig(), MakeFallback());
  ASSERT_TRUE(gateway.Start().ok());
  for (auto& pod : pods_) pod->Stop();
  // Let the health checker notice (2 failures at a 30ms interval).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  HttpClient client;
  ASSERT_TRUE(client.Connect(gateway.port()).ok());
  auto response = client.Get("/recommend?session_id=down&item_id=3");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  auto doc = ParseJson(response->body);
  ASSERT_TRUE(doc.ok()) << response->body;
  ASSERT_NE(doc->Find("degraded"), nullptr);
  EXPECT_TRUE(doc->Find("degraded")->AsBool());
  const JsonValue* items = doc->Find("items");
  ASSERT_NE(items, nullptr);
  EXPECT_GT(items->AsArray().size(), 0u);
  EXPECT_EQ(items->AsArray().size(), doc->Find("scores")->AsArray().size());
  EXPECT_GE(gateway.counters().degraded, 1u);
  gateway.Stop();
}

TEST_F(GatewayTest, NoFallbackAndDeadFleetYields503) {
  StartPods();
  ClusterGateway gateway(backends_, FastConfig(), nullptr);
  ASSERT_TRUE(gateway.Start().ok());
  for (auto& pod : pods_) pod->Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  HttpClient client;
  ASSERT_TRUE(client.Connect(gateway.port()).ok());
  auto response = client.Get("/recommend?session_id=x&item_id=1");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 503);
  gateway.Stop();
}

// Acceptance criterion (d): /metrics reports per-backend counters and
// forwarding-latency quantiles; /stats mirrors them as JSON.
TEST_F(GatewayTest, MetricsReportPerBackendCountersAndLatencyQuantiles) {
  StartPods();
  ClusterGateway gateway(backends_, FastConfig(), MakeFallback());
  ASSERT_TRUE(gateway.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(gateway.port()).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Get("/recommend?session_id=metrics-" +
                           std::to_string(i) + "&item_id=1")
                    .ok());
  }

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->content_type.find("text/plain"), std::string::npos);
  const std::string& body = metrics->body;
  EXPECT_NE(body.find("# TYPE gateway_requests_total counter"),
            std::string::npos);
  for (size_t i = 0; i < kPods; ++i) {
    const std::string label = "{backend=\"pod-" + std::to_string(i) + "\"}";
    EXPECT_NE(body.find("gateway_backend_requests_total" + label),
              std::string::npos);
    EXPECT_NE(body.find("gateway_backend_errors_total" + label),
              std::string::npos);
    EXPECT_NE(body.find("gateway_backend_healthy" + label),
              std::string::npos);
  }
  EXPECT_NE(
      body.find("gateway_forward_latency_microseconds{quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(body.find("gateway_forward_latency_microseconds_count"),
            std::string::npos);

  auto stats = client.Get("/stats");
  ASSERT_TRUE(stats.ok());
  auto doc = ParseJson(stats->body);
  ASSERT_TRUE(doc.ok()) << stats->body;
  EXPECT_GE(doc->Find("forwarded_ok")->AsInt(), 10);
  EXPECT_EQ(doc->Find("backends")->AsArray().size(), kPods);
  uint64_t backend_requests = 0;
  for (const JsonValue& backend : doc->Find("backends")->AsArray()) {
    backend_requests +=
        static_cast<uint64_t>(backend.Find("requests")->AsNumber());
  }
  EXPECT_GE(backend_requests, 10u);

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  auto health_doc = ParseJson(health->body);
  ASSERT_TRUE(health_doc.ok());
  EXPECT_EQ(health_doc->Find("healthy_backends")->AsInt(), 3);
  gateway.Stop();
}

TEST_F(GatewayTest, HedgedRequestBeatsSlowPrimary) {
  // pod-slow stalls /recommend for 300ms; the other pods answer fast.
  std::atomic<uint64_t> slow_hits{0};
  auto slow_handler = [&](const HttpRequest& request) -> HttpResponse {
    if (request.path == "/healthz" || request.path == "/v1/healthz") {
      return HttpResponse::Json("{\"status\":\"ok\"}");
    }
    slow_hits.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return HttpResponse::Json("{\"items\":[],\"scores\":[],\"pod\":\"slow\"}");
  };
  pods_.push_back(std::make_unique<HttpServer>(slow_handler));
  ASSERT_TRUE(pods_.back()->Start(0).ok());
  backends_.push_back(BackendEndpoint{"pod-slow", pods_.back()->port()});
  pods_.push_back(
      std::make_unique<HttpServer>(PodHandler("pod-fast", &recommends_[0])));
  ASSERT_TRUE(pods_.back()->Start(0).ok());
  backends_.push_back(BackendEndpoint{"pod-fast", pods_.back()->port()});

  GatewayConfig config = FastConfig();
  config.hedge_delay_ms = 20;
  ClusterGateway gateway(backends_, config, nullptr);
  ASSERT_TRUE(gateway.Start().ok());

  // Find a session key owned by the slow pod so the hedge must win.
  std::string slow_session;
  for (int i = 0; i < 1000; ++i) {
    const std::string candidate = "hedge-" + std::to_string(i);
    if (gateway.OwnerOf(candidate) == "pod-slow") {
      slow_session = candidate;
      break;
    }
  }
  ASSERT_FALSE(slow_session.empty());

  HttpClient client;
  ASSERT_TRUE(client.Connect(gateway.port()).ok());
  auto response =
      client.Get("/recommend?session_id=" + slow_session + "&item_id=1");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  auto doc = ParseJson(response->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("pod")->AsString(), "pod-fast");
  const GatewayCounters totals = gateway.counters();
  EXPECT_GE(totals.hedges, 1u);
  EXPECT_GE(totals.hedge_wins, 1u);
  gateway.Stop();
}

// --- gateway over real Serenade pods ----------------------------------------

TEST(GatewayEndToEndTest, RealPodsKeepSessionStateThroughGateway) {
  SyntheticConfig data_config;
  data_config.seed = 7;
  data_config.num_items = 200;
  data_config.num_sessions = 2000;
  const Dataset train = GenerateDataset(data_config);
  auto index = std::make_shared<SessionIndex>(SessionIndex::Build(train, 500));
  ItemCatalog catalog;
  catalog.available.assign(index->num_items(), true);
  catalog.adult.assign(index->num_items(), false);

  std::vector<std::unique_ptr<SerenadeServer>> pods;
  std::vector<BackendEndpoint> backends;
  for (size_t i = 0; i < 3; ++i) {
    ServiceConfig service_config;
    service_config.knn.m =
        std::min<size_t>(500, index->max_sessions_per_item());
    service_config.knn.k = std::min<size_t>(100, service_config.knn.m);
    auto service = SerenadeService::Create(index, catalog, service_config);
    ASSERT_TRUE(service.ok());
    pods.push_back(std::make_unique<SerenadeServer>(std::move(service).value(),
                                                    ServerConfig{}));
    ASSERT_TRUE(pods.back()->Start().ok());
    backends.push_back(
        BackendEndpoint{"pod-" + std::to_string(i), pods.back()->port()});
  }

  GatewayConfig config;
  config.retry_backoff_ms = 1;
  ClusterGateway gateway(backends, config,
                         std::make_unique<PopularityRecommender>(train));
  ASSERT_TRUE(gateway.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(gateway.port()).ok());
  for (ItemId item : {3u, 4u, 5u}) {
    auto response = client.Get("/recommend?session_id=web-1&item_id=" +
                               std::to_string(item));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200) << response->body;
    auto doc = ParseJson(response->body);
    ASSERT_TRUE(doc.ok()) << response->body;
    EXPECT_EQ(doc->Find("items")->AsArray().size(),
              doc->Find("scores")->AsArray().size());
  }

  // The sticky pod — and only that pod — accumulated the session.
  const std::string owner = gateway.OwnerOf("web-1");
  size_t pods_with_session = 0;
  for (size_t i = 0; i < pods.size(); ++i) {
    auto session = pods[i]->service().GetSession("web-1");
    if (session.ok() && session->size() == 3) {
      ++pods_with_session;
      EXPECT_EQ(backends[i].name, owner);
    }
  }
  EXPECT_EQ(pods_with_session, 1u);

  // The startup probe round already captured each pod's index version, so
  // the gateway's /stats reports it per backend.
  auto stats = client.Get("/stats");
  ASSERT_TRUE(stats.ok());
  auto stats_doc = ParseJson(stats->body);
  ASSERT_TRUE(stats_doc.ok()) << stats->body;
  for (const JsonValue& backend : stats_doc->Find("backends")->AsArray()) {
    EXPECT_EQ(backend.Find("index_version")->AsInt(), 1)
        << backend.Find("name")->AsString();
  }

  // Hot-swap one pod to a new snapshot: after the next probe round the
  // gateway observes a mixed-version fleet (a rolling rollout mid-flight).
  ASSERT_TRUE(pods[0]
                  ->service()
                  .index_manager()
                  .Publish(std::make_shared<const SessionIndex>(
                               SessionIndex::Build(train, 500)),
                           IndexManifest{})
                  .ok());
  gateway.health().ProbeAllOnce();
  stats = client.Get("/stats");
  ASSERT_TRUE(stats.ok());
  stats_doc = ParseJson(stats->body);
  ASSERT_TRUE(stats_doc.ok()) << stats->body;
  size_t on_v2 = 0;
  for (const JsonValue& backend : stats_doc->Find("backends")->AsArray()) {
    const int64_t version = backend.Find("index_version")->AsInt();
    if (backend.Find("name")->AsString() == "pod-0") {
      EXPECT_EQ(version, 2);
      ++on_v2;
    } else {
      EXPECT_EQ(version, 1);
    }
  }
  EXPECT_EQ(on_v2, 1u);
  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find(
                "gateway_backend_index_version{backend=\"pod-0\"} 2"),
            std::string::npos)
      << metrics->body;

  gateway.Stop();
  for (auto& pod : pods) pod->Stop();
}

// --- trace-context propagation ----------------------------------------------

// A request traced through the gateway carries ONE id: the gateway mints
// it, stamps it on the proxied request, the pod adopts it, and both
// tiers' slow-request log lines plus the client-visible response header
// agree on it.
TEST(GatewayTracePropagationTest, GatewayAndPodShareOneTraceId) {
  SyntheticConfig data_config;
  data_config.seed = 11;
  data_config.num_items = 100;
  data_config.num_sessions = 1000;
  const Dataset train = GenerateDataset(data_config);
  auto index = std::make_shared<SessionIndex>(SessionIndex::Build(train, 500));
  ItemCatalog catalog;
  catalog.available.assign(index->num_items(), true);
  catalog.adult.assign(index->num_items(), false);

  // Capture every log line the process emits (gateway + pod tiers).
  std::mutex log_mutex;
  std::vector<std::string> log_lines;
  SetLogSink([&](LogLevel, const std::string& line) {
    std::lock_guard<std::mutex> lock(log_mutex);
    log_lines.push_back(line);
  });

  ServiceConfig service_config;
  service_config.knn.m = std::min<size_t>(500, index->max_sessions_per_item());
  service_config.knn.k = std::min<size_t>(100, service_config.knn.m);
  auto service = SerenadeService::Create(index, catalog, service_config);
  ASSERT_TRUE(service.ok());
  ServerConfig pod_config;
  pod_config.trace.slow_request_micros = 1;  // every request is "slow"
  SerenadeServer pod(std::move(service).value(), pod_config);
  ASSERT_TRUE(pod.Start().ok());

  GatewayConfig gateway_config;
  gateway_config.retry_backoff_ms = 1;
  gateway_config.trace.slow_request_micros = 1;
  ClusterGateway gateway({BackendEndpoint{"pod-0", pod.port()}},
                         gateway_config, nullptr);
  ASSERT_TRUE(gateway.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(gateway.port()).ok());
  auto response = client.Get("/recommend?session_id=traced&item_id=3");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200) << response->body;

  // The gateway-minted id reaches the client on the response.
  const std::string trace_id = response->Header("X-Serenade-Trace-Id");
  ASSERT_TRUE(IsValidTraceId(trace_id)) << "'" << trace_id << "'";

  // Both tiers logged a slow-request line keyed by the SAME id.
  SetLogSink({});
  std::vector<std::string> lines;
  {
    std::lock_guard<std::mutex> lock(log_mutex);
    lines = log_lines;
  }
  bool pod_logged = false, gateway_logged = false;
  for (const std::string& line : lines) {
    if (line.find("trace_id=" + trace_id) == std::string::npos) continue;
    if (line.find("tier=pod") != std::string::npos) pod_logged = true;
    if (line.find("tier=gateway") != std::string::npos) gateway_logged = true;
  }
  EXPECT_TRUE(pod_logged) << "no pod slow-request line with the gateway's id";
  EXPECT_TRUE(gateway_logged) << "no gateway slow-request line";

  // A caller-supplied id (e.g. an edge proxy) is adopted, not replaced.
  auto traced = client.Get("/recommend?session_id=traced&item_id=4",
                           {{"X-Serenade-Trace-Id", "feedc0de12345678"}});
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(traced->Header("X-Serenade-Trace-Id"), "feedc0de12345678");

  // A malformed inbound id is replaced with a freshly minted one.
  auto malformed = client.Get("/recommend?session_id=traced&item_id=5",
                              {{"X-Serenade-Trace-Id", "not hex!"}});
  ASSERT_TRUE(malformed.ok());
  EXPECT_TRUE(IsValidTraceId(malformed->Header("X-Serenade-Trace-Id")));
  EXPECT_NE(malformed->Header("X-Serenade-Trace-Id"), "not hex!");

  // Stage timings crossed the tiers: the gateway attributes forwarding
  // time, the pod attributes knn time; both surface on /metrics.
  auto gateway_metrics = client.Get("/metrics");
  ASSERT_TRUE(gateway_metrics.ok());
  EXPECT_NE(gateway_metrics->body.find(
                "gateway_stage_duration_microseconds{stage=\"forward\""),
            std::string::npos)
      << gateway_metrics->body;
  EXPECT_NE(gateway_metrics->body.find("gateway_slow_requests_total"),
            std::string::npos);

  HttpClient pod_client;
  ASSERT_TRUE(pod_client.Connect(pod.port()).ok());
  auto pod_metrics = pod_client.Get("/metrics");
  ASSERT_TRUE(pod_metrics.ok());
  EXPECT_NE(pod_metrics->body.find(
                "serenade_stage_duration_microseconds{stage=\"knn_retrieve\""),
            std::string::npos)
      << pod_metrics->body;

  gateway.Stop();
  pod.Stop();
}

// --- versioned /v1 API + batch scatter-gather --------------------------------

// Real pods behind the gateway: the /v1 surface end to end, including the
// batch endpoint's scatter-gather by ring owner.
class GatewayV1Test : public testing::Test {
 protected:
  void StartFleet(size_t num_pods) {
    SyntheticConfig data_config;
    data_config.seed = 21;
    data_config.num_items = 200;
    data_config.num_sessions = 2000;
    train_ = GenerateDataset(data_config);
    index_ =
        std::make_shared<SessionIndex>(SessionIndex::Build(train_, 500));
    ItemCatalog catalog;
    catalog.available.assign(index_->num_items(), true);
    catalog.adult.assign(index_->num_items(), false);

    for (size_t i = 0; i < num_pods; ++i) {
      ServiceConfig service_config;
      service_config.knn.m =
          std::min<size_t>(500, index_->max_sessions_per_item());
      service_config.knn.k = std::min<size_t>(100, service_config.knn.m);
      auto service = SerenadeService::Create(index_, catalog, service_config);
      ASSERT_TRUE(service.ok());
      pods_.push_back(std::make_unique<SerenadeServer>(
          std::move(service).value(), ServerConfig{}));
      ASSERT_TRUE(pods_.back()->Start().ok());
      backends_.push_back(
          BackendEndpoint{"pod-" + std::to_string(i), pods_.back()->port()});
    }
    GatewayConfig config;
    config.retry_backoff_ms = 1;
    gateway_ = std::make_unique<ClusterGateway>(
        backends_, config, std::make_unique<PopularityRecommender>(train_));
    ASSERT_TRUE(gateway_->Start().ok());
    ASSERT_TRUE(client_.Connect(gateway_->port()).ok());
  }

  void TearDown() override {
    if (gateway_) gateway_->Stop();
    for (auto& pod : pods_) pod->Stop();
  }

  Dataset train_;
  std::shared_ptr<SessionIndex> index_;
  std::vector<std::unique_ptr<SerenadeServer>> pods_;
  std::vector<BackendEndpoint> backends_;
  std::unique_ptr<ClusterGateway> gateway_;
  HttpClient client_;
};

TEST_F(GatewayV1Test, BatchScatterGathersAcrossTheFleet) {
  StartFleet(3);
  // Six slots over three sessions, interleaved: each session's two clicks
  // must apply in batch order on that session's owner pod, and the merged
  // response must preserve the client's slot order.
  const std::string body =
      "{\"requests\":["
      "{\"session_id\":\"alpha\",\"item_id\":3},"
      "{\"session_id\":\"beta\",\"item_id\":4},"
      "{\"session_id\":\"gamma\",\"item_id\":5},"
      "{\"session_id\":\"alpha\",\"item_id\":6},"
      "{\"session_id\":\"beta\",\"item_id\":7},"
      "{\"session_id\":\"gamma\",\"item_id\":8}"
      "]}";
  auto response = client_.Post("/v1/recommend:batch", body);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200) << response->body;
  auto doc = ParseJson(response->body);
  ASSERT_TRUE(doc.ok()) << response->body;
  const JsonValue* results = doc->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->AsArray().size(), 6u);
  for (const JsonValue& slot : results->AsArray()) {
    ASSERT_NE(slot.Find("items"), nullptr) << response->body;
    EXPECT_EQ(slot.Find("items")->AsArray().size(),
              slot.Find("scores")->AsArray().size());
  }

  // Each session landed (whole) on its ring owner, clicks in order.
  const std::map<std::string, EvolvingSession> expected = {
      {"alpha", {3, 6}}, {"beta", {4, 7}}, {"gamma", {5, 8}}};
  for (const auto& [key, want] : expected) {
    const std::string owner = gateway_->OwnerOf(key);
    size_t pods_with_session = 0;
    for (size_t i = 0; i < pods_.size(); ++i) {
      auto session = pods_[i]->service().GetSession(key);
      if (!session.ok()) continue;
      ++pods_with_session;
      EXPECT_EQ(backends_[i].name, owner);
      EXPECT_EQ(*session, want);
    }
    EXPECT_EQ(pods_with_session, 1u) << key;
  }
}

TEST_F(GatewayV1Test, PostRecommendForwardsBySessionKey) {
  StartFleet(3);
  auto response = client_.Post(
      "/v1/recommend", "{\"session_id\":\"poster\",\"item_id\":9}");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto doc = ParseJson(response->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->Find("items"), nullptr);

  // Body without a session key is rejected at the gateway, not forwarded.
  auto missing = client_.Post("/v1/recommend", "{\"item_id\":9}");
  EXPECT_EQ(missing->status, 400);
  EXPECT_NE(missing->body.find("\"code\":\"bad_request\""),
            std::string::npos);
}

TEST_F(GatewayV1Test, LegacyAliasStampsDeprecationAndCounts) {
  StartFleet(1);
  auto legacy = client_.Get("/recommend?session_id=old&item_id=3");
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->status, 200);
  EXPECT_EQ(legacy->Header("Deprecation"), "true");

  auto v1 = client_.Get("/v1/recommend?session_id=new&item_id=3");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->status, 200);
  EXPECT_EQ(v1->Header("Deprecation"), "");
  // Same session history -> byte-identical success body across the alias.
  EXPECT_EQ(legacy->body, v1->body);

  auto metrics = client_.Get("/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(
      metrics->body.find("serenade_http_deprecated_requests_total 1"),
      std::string::npos)
      << metrics->body;

  // Wrong method on a known path: 405 with Allow.
  auto wrong = client_.Post("/v1/healthz", "{}");
  EXPECT_EQ(wrong->status, 405);
  EXPECT_EQ(wrong->Header("Allow"), "GET");
}

TEST_F(GatewayV1Test, OversizedBatchRejectedBeforeForwarding) {
  StartFleet(1);
  std::string body = "{\"requests\":[";
  for (int i = 0; i < 200; ++i) {  // default max_batch_items = 128
    if (i > 0) body += ',';
    body += "{\"session_id\":\"s" + std::to_string(i) + "\",\"item_id\":1}";
  }
  body += "]}";
  auto response = client_.Post("/v1/recommend:batch", body);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 413);
  EXPECT_NE(response->body.find("\"code\":\"payload_too_large\""),
            std::string::npos);
}

TEST(GatewayV1DegradedTest, DeadFleetServesDegradedBatchEntries) {
  // A gateway whose only backend never existed: every batch slot must
  // come back as a degraded fallback entry, never a 5xx.
  SyntheticConfig data_config;
  data_config.num_items = 50;
  data_config.num_sessions = 500;
  const Dataset train = GenerateDataset(data_config);

  GatewayConfig config;
  config.max_attempts = 1;
  config.retry_backoff_ms = 1;
  config.forward_timeout_ms = 100;
  config.health.probe_interval_ms = 30;
  config.health.probe_timeout_ms = 50;
  config.health.failures_to_eject = 1;
  ClusterGateway gateway({BackendEndpoint{"ghost", 1}}, config,
                         std::make_unique<PopularityRecommender>(train));
  ASSERT_TRUE(gateway.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(gateway.port()).ok());
  auto response = client.Post(
      "/v1/recommend:batch",
      "{\"requests\":[{\"session_id\":\"a\",\"item_id\":1},"
      "{\"session_id\":\"b\",\"item_id\":2}]}");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto doc = ParseJson(response->body);
  ASSERT_TRUE(doc.ok()) << response->body;
  const auto& slots = doc->Find("results")->AsArray();
  ASSERT_EQ(slots.size(), 2u);
  for (const JsonValue& slot : slots) {
    ASSERT_NE(slot.Find("degraded"), nullptr) << response->body;
    EXPECT_TRUE(slot.Find("degraded")->AsBool());
    EXPECT_FALSE(slot.Find("items")->AsArray().empty());
  }
  EXPECT_GE(gateway.counters().degraded, 2u);
  gateway.Stop();
}

}  // namespace
}  // namespace serenade
