// The ANN retrieval family as a serving engine: session folding + HNSW
// top-k behind the Recommender interface (core/ann_recommender.h), and
// per-request engine selection in SerenadeService — engine=ann serves
// from the pinned embedding snapshot, and a pod without embeddings
// degrades the ANN arm to VMIS (counted, never a failed request).
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ann_recommender.h"
#include "core/embedding.h"
#include "core/hnsw.h"
#include "core/session_index.h"
#include "data/synthetic.h"
#include "index/embedding_store.h"
#include "serving/service.h"

namespace serenade {
namespace {

// Items 0..11 on the unit circle: item i at angle i * 30 degrees, so
// nearest-by-cosine neighbours are the adjacent angles.
ItemEmbeddings CircleEmbeddings() {
  ItemEmbeddings embeddings;
  embeddings.num_items = 12;
  embeddings.dim = 2;
  embeddings.values.resize(24);
  for (size_t i = 0; i < 12; ++i) {
    const double angle = static_cast<double>(i) * 3.14159265358979 / 6.0;
    embeddings.values[i * 2] = static_cast<float>(std::cos(angle));
    embeddings.values[i * 2 + 1] = static_cast<float>(std::sin(angle));
  }
  return embeddings;
}

TEST(AnnRecommenderTest, ReturnsAngularNeighborsExcludingSession) {
  const ItemEmbeddings embeddings = CircleEmbeddings();
  const HnswIndex index(&embeddings, HnswConfig{});
  AnnConfig config;
  AnnRecommender ann(&embeddings, &index, config);

  const EvolvingSession session = {0};
  const std::vector<ScoredItem> top = ann.RecommendNext(session, 2);
  ASSERT_EQ(top.size(), 2u);
  // Item 0 itself is excluded; its angular neighbours 1 and 11 tie on
  // score and come back id-ascending.
  EXPECT_EQ(top[0].item, 1u);
  EXPECT_EQ(top[1].item, 11u);
  EXPECT_GE(top[0].score, top[1].score);
}

TEST(AnnRecommenderTest, SessionWindowFoldsRecentClicks) {
  const ItemEmbeddings embeddings = CircleEmbeddings();
  const HnswIndex index(&embeddings, HnswConfig{});
  AnnConfig config;
  AnnRecommender ann(&embeddings, &index, config);

  // A session drifting 3 -> 4 -> 5: the folded query leans toward the
  // most recent click, so 6 (ahead of the drift) must rank above 2.
  const std::vector<ScoredItem> top = ann.RecommendNext({3, 4, 5}, 4);
  ASSERT_FALSE(top.empty());
  size_t rank6 = top.size(), rank2 = top.size();
  for (size_t i = 0; i < top.size(); ++i) {
    if (top[i].item == 6u) rank6 = i;
    if (top[i].item == 2u) rank2 = i;
  }
  ASSERT_LT(rank6, top.size()) << "item 6 missing from the neighbourhood";
  EXPECT_LT(rank6, rank2);
}

TEST(AnnRecommenderTest, UnknownItemsYieldEmptyResult) {
  const ItemEmbeddings embeddings = CircleEmbeddings();
  const HnswIndex index(&embeddings, HnswConfig{});
  AnnConfig config;
  AnnRecommender ann(&embeddings, &index, config);
  EXPECT_TRUE(ann.RecommendNext({}, 5).empty());
  EXPECT_TRUE(ann.RecommendNext({999}, 5).empty());
}

TEST(AnnRecommenderTest, ExactNearestBreaksTiesByItemId) {
  const ItemEmbeddings embeddings = CircleEmbeddings();
  // Query exactly between items 2 and 3: equal scores, id order decides.
  float query[2];
  const double angle = 2.5 * 3.14159265358979 / 6.0;
  query[0] = static_cast<float>(std::cos(angle));
  query[1] = static_cast<float>(std::sin(angle));
  const std::vector<ScoredItem> exact = ExactNearest(embeddings, query, 2);
  ASSERT_EQ(exact.size(), 2u);
  EXPECT_EQ(exact[0].item, 2u);
  EXPECT_EQ(exact[1].item, 3u);
}

TEST(EngineKindTest, ParsesAndNames) {
  EXPECT_EQ(ParseEngineKind(""), EngineKind::kDefault);
  EXPECT_EQ(ParseEngineKind("vmis"), EngineKind::kVmis);
  EXPECT_EQ(ParseEngineKind("ann"), EngineKind::kAnn);
  EXPECT_FALSE(ParseEngineKind("hnsw").has_value());
  EXPECT_STREQ(EngineName(EngineKind::kDefault), "vmis");
  EXPECT_STREQ(EngineName(EngineKind::kVmis), "vmis");
  EXPECT_STREQ(EngineName(EngineKind::kAnn), "ann");
}

class AnnServiceTest : public ::testing::Test {
 protected:
  std::unique_ptr<SerenadeService> MakeService() {
    SyntheticConfig synth;
    synth.seed = 7;
    synth.num_items = 50;
    synth.num_sessions = 300;
    train_ = GenerateDataset(synth);
    auto index = std::make_shared<const SessionIndex>(
        SessionIndex::Build(train_, 100));
    ItemCatalog catalog;
    catalog.available.assign(train_.num_items(), true);
    catalog.adult.assign(train_.num_items(), false);
    ServiceConfig config;
    config.knn.m = std::min<size_t>(100, index->max_sessions_per_item());
    config.knn.k = std::min<size_t>(50, config.knn.m);
    config.rules.filter_unavailable = false;
    config.rules.filter_adult = false;
    auto service = SerenadeService::Create(index, catalog, config);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service).value();
  }

  std::shared_ptr<EmbeddingManager> MakeEmbeddings() {
    ItemEmbeddings embeddings;
    embeddings.num_items = train_.num_items();
    embeddings.dim = 8;
    embeddings.values.resize(embeddings.num_items * embeddings.dim);
    for (size_t i = 0; i < embeddings.values.size(); ++i) {
      embeddings.values[i] = 0.1f * static_cast<float>((i * 13) % 17) - 0.5f;
    }
    NormalizeRows(&embeddings);
    auto manager = EmbeddingManager::CreateFromEmbeddings(embeddings);
    EXPECT_TRUE(manager.ok()) << manager.status().ToString();
    return std::move(manager).value();
  }

  Dataset train_;
};

TEST_F(AnnServiceTest, AnnWithoutEmbeddingsDegradesToVmisAndCounts) {
  auto service = MakeService();
  ASSERT_FALSE(service->ann_available());

  RecommendRequest request;
  request.session_key = "s1";
  request.item = 3;
  request.engine = EngineKind::kAnn;
  auto result = service->HandleUpdateAndRecommend(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString()
                           << " (a dead ANN arm must never fail a request)";
  EXPECT_EQ(service->ann_requests_total(), 1u);
  EXPECT_EQ(service->ann_fallbacks_total(), 1u);

  // Reloading embeddings on a pod with no manager is an error the admin
  // surface reports — but never a crash.
  EXPECT_FALSE(service->ReloadEmbeddings().ok());
}

TEST_F(AnnServiceTest, AnnEngineServesFromAttachedEmbeddings) {
  auto service = MakeService();
  service->AttachEmbeddings(MakeEmbeddings());
  ASSERT_TRUE(service->ann_available());

  RecommendRequest request;
  request.session_key = "s2";
  request.item = 5;
  request.engine = EngineKind::kAnn;
  auto result = service->HandleUpdateAndRecommend(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->empty());
  for (const ScoredItem& scored : *result) {
    EXPECT_NE(scored.item, 5u) << "session items must be excluded";
  }
  EXPECT_EQ(service->ann_requests_total(), 1u);
  EXPECT_EQ(service->ann_fallbacks_total(), 0u);

  // The default engine still serves VMIS and doesn't touch ANN counters.
  RecommendRequest vmis_request;
  vmis_request.session_key = "s3";
  vmis_request.item = 5;
  ASSERT_TRUE(service->HandleUpdateAndRecommend(vmis_request).ok());
  EXPECT_EQ(service->ann_requests_total(), 1u);
}

TEST_F(AnnServiceTest, BatchMixesEnginesPerSlot) {
  auto service = MakeService();
  service->AttachEmbeddings(MakeEmbeddings());

  std::vector<RecommendRequest> requests(4);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].session_key = "b" + std::to_string(i);
    requests[i].item = static_cast<ItemId>(2 + i);
    requests[i].engine = (i % 2 == 0) ? EngineKind::kAnn : EngineKind::kVmis;
  }
  const auto results = service->HandleUpdateAndRecommendBatch(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << "slot " << i << ": "
                                 << results[i].status().ToString();
  }
  EXPECT_EQ(service->ann_requests_total(), 2u);
  EXPECT_EQ(service->ann_fallbacks_total(), 0u);
}

}  // namespace
}  // namespace serenade
