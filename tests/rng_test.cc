#include "common/rng.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace serenade {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, UniformMeanIsCenter) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(ZipfTest, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -1.0), std::invalid_argument);
}

TEST(ZipfTest, SingleElement) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(100, 1.1);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 100u);
}

// The ratio P(rank 0) / P(rank 1) for Zipf(s) is 2^s.
TEST(ZipfTest, FrequencyRatioMatchesExponent) {
  const double exponent = 1.0;
  ZipfDistribution zipf(1000, exponent);
  Rng rng(17);
  std::map<uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, std::pow(2.0, exponent), 0.25);
}

TEST(ZipfTest, RankZeroIsMostFrequent) {
  ZipfDistribution zipf(50, 1.2);
  Rng rng(23);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  for (size_t r = 1; r < 10; ++r) {
    EXPECT_GT(counts[0], counts[r]) << "rank " << r;
  }
}

TEST(AliasTableTest, MatchesWeights) {
  AliasTable table({1.0, 2.0, 3.0, 4.0});
  Rng rng(31);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, (i + 1) / 10.0, 0.01);
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0, 1.0});
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = table.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, SingleElement) {
  AliasTable table({42.0});
  Rng rng(41);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

}  // namespace
}  // namespace serenade
