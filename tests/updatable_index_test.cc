#include "index/updatable_index.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/vmis_knn.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace serenade {
namespace {

Dataset MakeData(uint64_t seed = 81, size_t sessions = 3000) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_items = 400;
  config.num_sessions = sessions;
  config.num_days = 6;
  return GenerateDataset(config);
}

TEST(UpdatableIndexTest, FreshIndexEqualsBase) {
  Dataset dataset = MakeData();
  SessionIndex base = SessionIndex::Build(dataset, 100);
  const size_t base_sessions = base.num_sessions();
  UpdatableSessionIndex updatable(SessionIndex::Build(dataset, 100));
  EXPECT_EQ(updatable.num_sessions(), base_sessions);
  EXPECT_EQ(updatable.overlay_sessions(), 0u);

  std::vector<SessionId> scratch;
  for (ItemId item = 0; item < base.num_items(); ++item) {
    const auto expected = base.SessionsForItem(item);
    const auto actual = updatable.SessionsForItem(item, &scratch);
    ASSERT_EQ(std::vector<SessionId>(actual.begin(), actual.end()),
              std::vector<SessionId>(expected.begin(), expected.end()));
    // Base idf is stored as float32; recovery is accurate to ~1e-6.
    ASSERT_NEAR(updatable.Idf(item), base.Idf(item), 1e-5);
  }
}

TEST(UpdatableIndexTest, IngestedSessionsAreMostRecent) {
  Dataset dataset = MakeData();
  UpdatableSessionIndex index(SessionIndex::Build(dataset, 100));
  const Timestamp late = dataset.max_timestamp() + 1000;
  const SessionId id1 = index.Ingest({7, 8, 9}, late);
  const SessionId id2 = index.Ingest({7, 10}, late + 50);

  std::vector<SessionId> scratch;
  const auto postings = index.SessionsForItem(7, &scratch);
  ASSERT_GE(postings.size(), 2u);
  EXPECT_EQ(postings[0], id2);  // newest first
  EXPECT_EQ(postings[1], id1);
  EXPECT_EQ(index.SessionTimestamp(id2), late + 50);
  EXPECT_EQ(index.overlay_sessions(), 2u);
}

TEST(UpdatableIndexTest, ItemsForIngestedSessionAreDistinctSorted) {
  Dataset dataset = MakeData();
  UpdatableSessionIndex index(SessionIndex::Build(dataset, 100));
  const SessionId id =
      index.Ingest({9, 7, 9, 8}, dataset.max_timestamp() + 10);
  std::vector<ItemId> scratch;
  const auto items = index.ItemsForSession(id, &scratch);
  EXPECT_EQ(std::vector<ItemId>(items.begin(), items.end()),
            (std::vector<ItemId>{7, 8, 9}));
}

TEST(UpdatableIndexTest, NewItemsExtendTheCatalog) {
  Dataset dataset = MakeData();
  UpdatableSessionIndex index(SessionIndex::Build(dataset, 100));
  const size_t old_items = index.num_items();
  const ItemId brand_new = static_cast<ItemId>(old_items + 5);
  const SessionId id =
      index.Ingest({brand_new, 3}, dataset.max_timestamp() + 10);

  EXPECT_EQ(index.num_items(), static_cast<size_t>(brand_new) + 1);
  std::vector<SessionId> scratch;
  const auto postings = index.SessionsForItem(brand_new, &scratch);
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0], id);
  // New item in 1 of N sessions -> large idf.
  EXPECT_NEAR(index.Idf(brand_new),
              std::log(static_cast<double>(index.num_sessions())), 1e-6);
}

TEST(UpdatableIndexTest, PostingsStayCappedAtM) {
  Dataset dataset = MakeData();
  UpdatableSessionIndex index(SessionIndex::Build(dataset, 5));
  for (int i = 0; i < 20; ++i) {
    index.Ingest({3, static_cast<ItemId>(100 + i)},
                 dataset.max_timestamp() + 10 + i);
  }
  std::vector<SessionId> scratch;
  EXPECT_EQ(index.SessionsForItem(3, &scratch).size(), 5u);
}

TEST(UpdatableIndexTest, OutOfOrderTimestampClamped) {
  Dataset dataset = MakeData();
  UpdatableSessionIndex index(SessionIndex::Build(dataset, 100));
  const SessionId id = index.Ingest({5}, /*end_time=*/0);  // before base!
  EXPECT_GE(index.SessionTimestamp(id), dataset.max_timestamp());
}

TEST(UpdatableIndexTest, IdfTracksGrowingFrequencies) {
  Dataset dataset = MakeData();
  SessionIndex base = SessionIndex::Build(dataset, 100);
  UpdatableSessionIndex index(SessionIndex::Build(dataset, 100));

  // Pick an item with mid-range frequency and flood it.
  ItemId item = 0;
  for (ItemId i = 0; i < base.num_items(); ++i) {
    if (base.SessionsForItem(i).size() >= 5) {
      item = i;
      break;
    }
  }
  const double idf_before = index.Idf(item);
  for (int i = 0; i < 500; ++i) {
    index.Ingest({item, static_cast<ItemId>(200 + (i % 17))},
                 dataset.max_timestamp() + 10 + i);
  }
  // Item got much more frequent -> idf must drop.
  EXPECT_LT(index.Idf(item), idf_before);
}

// The incremental-maintenance equivalence property: ingesting day N+1's
// sessions into an index built from days 1..N yields exactly the same
// query results as a full batch rebuild over days 1..N+1 (with m large
// enough that truncation cannot differ, and idf compared approximately).
TEST(UpdatableIndexTest, IncrementalMatchesFullRebuild) {
  Dataset full = MakeData(91, 4000);
  TrainTestSplit split = SplitLastDays(full, 1);

  UpdatableSessionIndex incremental(
      SessionIndex::Build(split.train, 100000));
  for (const SessionData& session : split.test.sessions()) {
    incremental.Ingest(session.items, session.end_time);
  }

  // Full rebuild over train + test sessions. Note: ids differ between the
  // two indexes, so we compare neighbour *scores* and recommended items.
  std::vector<Click> all_clicks;
  for (const Dataset* part : {&split.train, &split.test}) {
    for (const SessionData& session : part->sessions()) {
      const size_t n = session.items.size();
      for (size_t i = 0; i < n; ++i) {
        const Timestamp ts =
            n <= 1 ? session.start_time
                   : session.start_time +
                         (session.end_time - session.start_time) * i / (n - 1);
        // Re-key sessions uniquely across parts.
        const SessionId key = static_cast<SessionId>(
            part == &split.train ? session.id
                                 : session.id + split.train.num_sessions());
        all_clicks.push_back(Click{key, session.items[i], ts});
      }
    }
  }
  Dataset rebuilt_data = Dataset::FromClicks(all_clicks);
  SessionIndex rebuilt = SessionIndex::Build(rebuilt_data, 100000);

  KnnConfig config;
  config.m = 100000;
  config.k = 20;
  VmisKnnT<UpdatableSessionIndex> incremental_model(&incremental, config);
  VmisKnn rebuilt_model(&rebuilt, config);

  SyntheticConfig query_config;
  query_config.seed = 92;
  query_config.num_items = 400;
  query_config.num_sessions = 30;
  query_config.num_days = 1;
  Dataset queries = GenerateDataset(query_config);

  for (const SessionData& query : queries.sessions()) {
    const auto a = incremental_model.RecommendNext(query.items, 10);
    const auto b = rebuilt_model.RecommendNext(query.items, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].item, b[i].item) << "rank " << i;
      // idf recovery is float-derived: allow small relative slack.
      ASSERT_NEAR(a[i].score, b[i].score,
                  1e-3 * (1.0 + std::abs(b[i].score)));
    }
  }
}

}  // namespace
}  // namespace serenade
