// Integration tests for the epoll reactor behind HttpServer: behaviors a
// well-behaved HttpClient cannot exercise — slowloris peers, pipelined
// requests, partial-write backpressure, admission-cap shedding, deadline
// enforcement, and draining shutdown. Most tests speak raw TCP.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serving/http.h"
#include "testing/fault_injection.h"

namespace serenade {
namespace {

HttpResponse EchoHandler(const HttpRequest& request) {
  HttpResponse response;
  response.body = request.method + " " + request.path + " q=" +
                  request.Param("q", "<none>");
  response.content_type = "text/plain";
  return response;
}

// Raw loopback socket with a bounded recv timeout so a regressed server
// hangs the assertion, not the suite.
int RawConnect(uint16_t port, int recv_timeout_ms = 3000,
               int rcvbuf_bytes = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf_bytes > 0) {
    // Must land before connect: the window scale is negotiated in the
    // handshake, and a tiny receive buffer is what forces the server
    // into partial writes.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  timeval timeout{};
  timeout.tv_sec = recv_timeout_ms / 1000;
  timeout.tv_usec = (recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads until the peer closes or the socket's recv timeout fires.
std::string RecvUntilClose(int fd) {
  std::string received;
  char chunk[16384];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    received.append(chunk, static_cast<size_t>(n));
  }
  return received;
}

// Reads until `received` contains at least `want` occurrences of `marker`.
bool RecvUntilCount(int fd, const std::string& marker, size_t want,
                    std::string* received) {
  char chunk[16384];
  while (true) {
    size_t seen = 0, at = 0;
    while ((at = received->find(marker, at)) != std::string::npos) {
      ++seen;
      at += marker.size();
    }
    if (seen >= want) return true;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    received->append(chunk, static_cast<size_t>(n));
  }
}

TEST(ReactorTest, SlowlorisPeerIsExpiredByIdleTimeout) {
  HttpServerOptions options;
  options.idle_timeout_ms = 150;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  // Trickle a partial request line and then stall — the idle deadline is
  // pinned at admission, not refreshed per byte, so this must expire.
  ASSERT_TRUE(SendAll(fd, "GET /slow HTT"));
  const std::string leftovers = RecvUntilClose(fd);
  ::close(fd);
  // No response: the server closed an incomplete request.
  EXPECT_TRUE(leftovers.empty()) << leftovers;
  EXPECT_GE(server.stats().idle_timeouts, 1u);
  EXPECT_EQ(server.stats().open_connections, 0u);
  server.Stop();
}

TEST(ReactorTest, PartialWriteResumesUntilLargeBodyDelivered) {
  // ~3 MB answer (beneath the 4 MB client/body cap) against a socket with
  // a deliberately tiny receive buffer: the first send() cannot take the
  // whole body, so delivery must ride EPOLLOUT resumption.
  const size_t kBodyBytes = 3u << 20;
  std::string big(kBodyBytes, 'x');
  for (size_t i = 0; i < big.size(); i += 4096) big[i] = 'A' + (i / 4096) % 26;
  HttpServer server(
      [&big](const HttpRequest&) {
        HttpResponse response;
        response.body = big;
        response.content_type = "text/plain";
        return response;
      });
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = RawConnect(server.port(), /*recv_timeout_ms=*/5000,
                            /*rcvbuf_bytes=*/4096);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "GET /big HTTP/1.1\r\nHost: x\r\n\r\n"));
  // Give the server time to hit EAGAIN and park on EPOLLOUT before the
  // client starts draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::string received;
  char chunk[16384];
  while (true) {
    const size_t header_end = received.find("\r\n\r\n");
    if (header_end != std::string::npos &&
        received.size() >= header_end + 4 + kBodyBytes) {
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "connection ended after " << received.size()
                    << " bytes";
    received.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = received.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_EQ(received.substr(header_end + 4), big);
  server.Stop();
}

TEST(ReactorTest, PipelinedRequestsAnsweredInOrder) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  // Three requests in one segment; HTTP/1.1 requires in-order responses.
  ASSERT_TRUE(SendAll(fd,
                      "GET /p?q=0 HTTP/1.1\r\nHost: x\r\n\r\n"
                      "GET /p?q=1 HTTP/1.1\r\nHost: x\r\n\r\n"
                      "GET /p?q=2 HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string received;
  ASSERT_TRUE(RecvUntilCount(fd, "GET /p q=", 3, &received)) << received;
  ::close(fd);
  const size_t first = received.find("GET /p q=0");
  const size_t second = received.find("GET /p q=1");
  const size_t third = received.find("GET /p q=2");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(third, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
  EXPECT_EQ(server.requests_served(), 3u);
  server.Stop();
}

TEST(ReactorTest, ConnectionCapShedsWith503AndRetryAfter) {
  HttpServerOptions options;
  options.max_connections = 2;
  options.retry_after_seconds = 7;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start(0).ok());

  // Fill the cap with two admitted connections (a round trip each proves
  // admission, not just a queued accept).
  HttpClient first, second;
  ASSERT_TRUE(first.Connect(server.port()).ok());
  ASSERT_TRUE(first.Get("/a").ok());
  ASSERT_TRUE(second.Connect(server.port()).ok());
  ASSERT_TRUE(second.Get("/b").ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  const std::string shed = RecvUntilClose(fd);  // shed without a request
  ::close(fd);
  EXPECT_NE(shed.find("503"), std::string::npos) << shed;
  EXPECT_NE(shed.find("Retry-After: 7"), std::string::npos) << shed;
  EXPECT_NE(shed.find("Connection: close"), std::string::npos) << shed;
  EXPECT_GE(server.stats().shed, 1u);
  EXPECT_EQ(server.stats().open_connections, 2u);

  // Capacity returns when an admitted connection leaves.
  first.Close();
  const auto wait_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  bool admitted = false;
  while (std::chrono::steady_clock::now() < wait_deadline) {
    HttpClient third;  // a shed attempt poisons the connection: dial fresh
    if (third.Connect(server.port()).ok()) {
      auto response = third.Get("/c");
      if (response.ok() && response->status == 200) {  // 503 = still shed
        admitted = true;
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(admitted);
  server.Stop();
}

TEST(ReactorTest, RequestDeadlineClosesOverdueRequest) {
  HttpServerOptions options;
  options.request_deadline_ms = 50;
  HttpServer server(
      [](const HttpRequest&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        HttpResponse response;
        response.body = "late";
        return response;
      },
      options);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "GET /slow HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string received = RecvUntilClose(fd);
  ::close(fd);
  // The deadline fires mid-dispatch: the connection closes with no
  // response, and the worker's late completion is discarded.
  EXPECT_TRUE(received.empty()) << received;
  EXPECT_GE(server.stats().deadline_timeouts, 1u);
  server.Stop();  // drains the still-sleeping worker
  EXPECT_EQ(server.stats().open_connections, 0u);
}

TEST(ReactorTest, StopDrainsInFlightRequest) {
  std::atomic<bool> entered{false};
  HttpServer server([&entered](const HttpRequest&) {
    entered.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    HttpResponse response;
    response.body = "drained";
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  const uint16_t port = server.port();

  StatusOr<HttpResponse> result = Status::Internal("not run");
  std::thread requester([&] {
    HttpClient client;
    if (!client.Connect(port).ok()) return;
    result = client.Get("/inflight");
  });
  while (!entered.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(5));
  server.Stop();  // must wait for the dispatched request, then close
  requester.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->body, "drained");
  EXPECT_EQ(server.stats().open_connections, 0u);

  // Fully stopped: nothing is listening any more.
  HttpClient late(HttpClientOptions{.connect_timeout_ms = 200});
  EXPECT_FALSE(late.Connect(port).ok());
}

TEST(ReactorTest, MultiReactorServesConcurrentClients) {
  HttpServerOptions options;
  options.reactor_threads = 2;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kClients = 8, kRequests = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect(server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        auto response = client.Get("/m?q=" + std::to_string(c * 100 + i));
        if (!response.ok() ||
            response->body !=
                "GET /m q=" + std::to_string(c * 100 + i)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(),
            static_cast<uint64_t>(kClients * kRequests));
  server.Stop();
}

TEST(ReactorFaultTest, AcceptOverloadFaultShedsLikeTheCap) {
  ScopedFaultInjector injector(0xfeed);
  injector->Arm(FaultSite::kHttpAcceptOverload,
                FaultRule{/*probability=*/1.0, /*budget=*/1, 0});
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  const std::string shed = RecvUntilClose(fd);
  ::close(fd);
  EXPECT_NE(shed.find("503"), std::string::npos) << shed;
  EXPECT_EQ(injector->fires(FaultSite::kHttpAcceptOverload), 1u);

  // Budget spent: the next connection is served normally.
  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  EXPECT_TRUE(client.Get("/after").ok());
  server.Stop();
}

TEST(ReactorFaultTest, CloseMidWriteIsSurvivedByClientReconnect) {
  ScopedFaultInjector injector(0xbeef);
  injector->Arm(FaultSite::kHttpServerCloseMidWrite,
                FaultRule{/*probability=*/1.0, /*budget=*/1, 0});
  HttpServer server([](const HttpRequest&) {
    HttpResponse response;
    response.body = std::string(100 * 1024, 'y');
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  // First attempt is cut mid-response; the client's stale-connection
  // retry dials again and the (budget-exhausted) server answers in full.
  auto response = client.Get("/flaky");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body.size(), 100u * 1024);
  EXPECT_EQ(injector->fires(FaultSite::kHttpServerCloseMidWrite), 1u);
  server.Stop();
}

TEST(ReactorFaultTest, StallReadRecoversOnNextLoopPass) {
  ScopedFaultInjector injector(0xcafe);
  injector->Arm(FaultSite::kHttpServerStallRead,
                FaultRule{/*probability=*/1.0, /*budget=*/2, 0});
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());

  // Level-triggered readiness re-reports the buffered request after the
  // stalled passes, so the request is merely delayed, never lost.
  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto response = client.Get("/stalled?q=1");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "GET /stalled q=1");
  EXPECT_GE(injector->fires(FaultSite::kHttpServerStallRead), 1u);
  server.Stop();
}

}  // namespace
}  // namespace serenade
