#include "index/index_format.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "index/index_builder.h"

namespace serenade {
namespace {

Dataset MakeData(uint64_t seed = 19) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_items = 400;
  config.num_sessions = 3000;
  config.num_days = 7;
  return GenerateDataset(config);
}

void ExpectIndexesEqual(const SessionIndex& a, const SessionIndex& b) {
  ASSERT_EQ(a.num_sessions(), b.num_sessions());
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.num_postings(), b.num_postings());
  ASSERT_EQ(a.max_sessions_per_item(), b.max_sessions_per_item());
  for (ItemId item = 0; item < a.num_items(); ++item) {
    const auto pa = a.SessionsForItem(item);
    const auto pb = b.SessionsForItem(item);
    ASSERT_EQ(std::vector<SessionId>(pa.begin(), pa.end()),
              std::vector<SessionId>(pb.begin(), pb.end()))
        << "item " << item;
    ASSERT_FLOAT_EQ(a.Idf(item), b.Idf(item)) << "item " << item;
  }
  for (SessionId s = 0; s < a.num_sessions(); ++s) {
    ASSERT_EQ(a.SessionTimestamp(s), b.SessionTimestamp(s));
    const auto ia = a.ItemsForSession(s);
    const auto ib = b.ItemsForSession(s);
    ASSERT_EQ(std::vector<ItemId>(ia.begin(), ia.end()),
              std::vector<ItemId>(ib.begin(), ib.end()));
  }
}

TEST(IndexFormatTest, SerializeRoundTrip) {
  SessionIndex index = SessionIndex::Build(MakeData(), 50);
  const std::string bytes = SerializeIndex(index);
  auto restored = DeserializeIndex(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectIndexesEqual(index, *restored);
}

TEST(IndexFormatTest, FileRoundTrip) {
  SessionIndex index = SessionIndex::Build(MakeData(), 50);
  const std::string path = testing::TempDir() + "/index.srn";
  ASSERT_TRUE(WriteIndexFile(path, index).ok());
  auto restored = ReadIndexFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectIndexesEqual(index, *restored);
}

TEST(IndexFormatTest, CompressionShrinksIndex) {
  SessionIndex index = SessionIndex::Build(MakeData(), 500);
  const std::string bytes = SerializeIndex(index);
  EXPECT_LT(bytes.size(), index.MemoryBytes());
}

TEST(IndexFormatTest, EmptyIndexRoundTrip) {
  SessionIndex index = SessionIndex::Build(Dataset(), 10);
  auto restored = DeserializeIndex(SerializeIndex(index));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_sessions(), 0u);
}

TEST(IndexFormatTest, RejectsBadMagic) {
  SessionIndex index = SessionIndex::Build(MakeData(), 20);
  std::string bytes = SerializeIndex(index);
  bytes[0] = 'X';
  EXPECT_EQ(DeserializeIndex(bytes).status().code(), StatusCode::kCorruption);
}

TEST(IndexFormatTest, RejectsTruncation) {
  SessionIndex index = SessionIndex::Build(MakeData(), 20);
  const std::string bytes = SerializeIndex(index);
  for (double fraction : {0.1, 0.5, 0.9, 0.99}) {
    const std::string truncated =
        bytes.substr(0, static_cast<size_t>(bytes.size() * fraction));
    EXPECT_FALSE(DeserializeIndex(truncated).ok()) << fraction;
  }
}

TEST(IndexFormatTest, RejectsBitFlips) {
  SessionIndex index = SessionIndex::Build(MakeData(), 20);
  const std::string bytes = SerializeIndex(index);
  // Flip a byte in several positions scattered through the payload; CRC
  // or structural validation must catch every one of them.
  for (size_t position :
       {bytes.size() / 4, bytes.size() / 2, bytes.size() - 10}) {
    std::string corrupted = bytes;
    corrupted[position] = static_cast<char>(corrupted[position] ^ 0x40);
    EXPECT_FALSE(DeserializeIndex(corrupted).ok()) << "position " << position;
  }
}

TEST(IndexFormatTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadIndexFile("/nonexistent/index.srn").status().code(),
            StatusCode::kIoError);
}

TEST(IndexBuilderTest, ParallelMatchesSerial) {
  Dataset dataset = MakeData(23);
  for (size_t m : {1u, 10u, 100u, 5000u}) {
    SessionIndex serial = SessionIndex::Build(dataset, m);
    IndexBuilderOptions options;
    options.max_sessions_per_item = m;
    options.num_threads = 4;
    SessionIndex parallel = BuildIndexParallel(dataset, options);
    ExpectIndexesEqual(serial, parallel);
  }
}

TEST(IndexBuilderTest, SinglePartition) {
  Dataset dataset = MakeData(29);
  IndexBuilderOptions options;
  options.max_sessions_per_item = 50;
  options.num_threads = 2;
  options.num_partitions = 1;
  ExpectIndexesEqual(SessionIndex::Build(dataset, 50),
                     BuildIndexParallel(dataset, options));
}

TEST(IndexBuilderTest, MorePartitionsThanItems) {
  std::vector<Click> clicks = {{1, 0, 10}, {1, 1, 20}, {2, 0, 30}, {2, 1, 40}};
  Dataset dataset = Dataset::FromClicks(clicks);
  IndexBuilderOptions options;
  options.max_sessions_per_item = 5;
  options.num_threads = 4;
  options.num_partitions = 64;
  ExpectIndexesEqual(SessionIndex::Build(dataset, 5),
                     BuildIndexParallel(dataset, options));
}

TEST(IndexBuilderTest, EmptyDataset) {
  IndexBuilderOptions options;
  options.max_sessions_per_item = 5;
  SessionIndex index = BuildIndexParallel(Dataset(), options);
  EXPECT_EQ(index.num_sessions(), 0u);
  EXPECT_EQ(index.num_items(), 0u);
}

}  // namespace
}  // namespace serenade
