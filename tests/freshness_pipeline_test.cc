// The streaming freshness pipeline end to end (src/freshness, DESIGN.md
// §9): click tap -> delta builder -> versioned overlay distribution.
// Invariants under test:
//   * replaying the same click stream through two builders yields
//     byte-identical delta artifacts (replay determinism),
//   * re-compacting an unchanged builder re-emits the same version with
//     identical bytes (compaction idempotence), and deltas are cumulative
//     across compactions,
//   * TTL expiry, min-session-length drops, and the open-session cap
//     behave as configured and are all counted,
//   * tap -> builder -> fetcher -> IndexManager closes the loop over real
//     loopback HTTP, and re-polling after convergence is a no-op,
//   * published artifacts land in publish_dir with a kind=delta manifest;
//     a builder crash mid-publish (kDeltaPublishCrash) may tear the file
//     on disk but never advances the served version, and the next
//     compaction republishes cleanly,
//   * under armed delta-distribution faults (kDeltaTruncate,
//     kDeltaLineageMismatch) no SimCluster pod ever applies a torn or
//     mismatched overlay — rejections are counted, serving continues on
//     the base snapshot — and once disarmed the fleet converges to the
//     published delta version.
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session_index.h"
#include "data/click_log.h"
#include "freshness/builder_server.h"
#include "freshness/click_tap.h"
#include "freshness/delta_builder.h"
#include "freshness/delta_fetcher.h"
#include "index/index_format.h"
#include "index/snapshot.h"
#include "serving/http.h"
#include "testing/fault_injection.h"
#include "testing/sim_cluster.h"

namespace serenade {
namespace {

std::string FreshWorkDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Base corpus ending at timestamp 62 (the builder's base_max_timestamp).
std::vector<Click> BaseClicks() {
  return {
      Click{0, 1, 10}, Click{0, 2, 11},  Click{1, 1, 20}, Click{1, 3, 21},
      Click{2, 1, 30}, Click{2, 4, 31},  Click{3, 2, 40}, Click{3, 5, 41},
      Click{4, 1, 50}, Click{4, 6, 51},  Click{5, 3, 60}, Click{5, 5, 61},
      Click{5, 6, 62},
  };
}

DeltaBuilderConfig SmallBuilderConfig() {
  DeltaBuilderConfig config;
  config.base_version = 1;
  config.base_crc32 = 0;
  config.base_max_timestamp = 62;
  config.min_session_length = 2;
  config.seal_idle_ms = 100;
  return config;
}

// The canonical three-session click stream used across these tests:
// "a" and "b" survive sealing, "c" collapses to one distinct item and is
// dropped at the min-session-length gate.
void IngestCanonicalClicks(DeltaBuilder& builder) {
  builder.Ingest("a", 1, 1000);
  builder.Ingest("a", 2, 1010);
  builder.Ingest("b", 2, 1020);
  builder.Ingest("b", 3, 1030);
  builder.Ingest("b", 1, 1040);
  builder.Ingest("c", 5, 1050);
  builder.Ingest("c", 5, 1060);  // duplicate item: still 1 distinct
}

TEST(DeltaBuilderTest, ReplayingTheSameClicksYieldsIdenticalArtifacts) {
  DeltaBuilder first(SmallBuilderConfig());
  DeltaBuilder second(SmallBuilderConfig());
  IngestCanonicalClicks(first);
  IngestCanonicalClicks(second);

  EXPECT_EQ(first.SealIdle(2000), size_t{3});  // includes the dropped one
  EXPECT_EQ(second.SealIdle(2000), size_t{3});
  auto delta_a = first.Compact(2000);
  auto delta_b = second.Compact(2000);
  ASSERT_TRUE(delta_a.has_value());
  ASSERT_TRUE(delta_b.has_value());
  EXPECT_EQ(SerializeDelta(*delta_a), SerializeDelta(*delta_b));

  // The deterministic seal order is (last click ms, first ms, arrival):
  // "a" (last 1010) before "b" (last 1040); end_times densely above 62.
  EXPECT_EQ(delta_a->delta_version, 2u);
  EXPECT_EQ(delta_a->base_version, 1u);
  ASSERT_EQ(delta_a->sessions.size(), 2u);
  EXPECT_EQ(delta_a->sessions[0].items, (std::vector<ItemId>{1, 2}));
  EXPECT_EQ(delta_a->sessions[0].end_time, Timestamp{63});
  EXPECT_EQ(delta_a->sessions[0].observed_unix_ms, 1010u);
  EXPECT_EQ(delta_a->sessions[1].items, (std::vector<ItemId>{1, 2, 3}));
  EXPECT_EQ(delta_a->sessions[1].end_time, Timestamp{64});
  EXPECT_EQ(delta_a->sessions[1].observed_unix_ms, 1040u);
  EXPECT_EQ(delta_a->watermark_unix_ms, 1040u);
  EXPECT_EQ(first.sessions_dropped_short(), 1u);
}

TEST(DeltaBuilderTest, CompactionIsIdempotentAndCumulative) {
  DeltaBuilder builder(SmallBuilderConfig());
  IngestCanonicalClicks(builder);
  builder.SealIdle(2000);
  auto first = builder.Compact(2000);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->delta_version, 2u);

  // Nothing changed: same version, byte-identical bytes — a pod polling
  // twice must not see a phantom new version.
  auto again = builder.Compact(3000);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->delta_version, 2u);
  EXPECT_EQ(SerializeDelta(*again), SerializeDelta(*first));

  // New sessions bump the version; the delta stays cumulative (old
  // sessions re-emitted with their original end_times).
  builder.Ingest("d", 7, 5000);
  builder.Ingest("d", 8, 5010);
  builder.SealIdle(6000);
  auto next = builder.Compact(6000);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->delta_version, 3u);
  ASSERT_EQ(next->sessions.size(), 3u);
  EXPECT_EQ(next->sessions[0].items, first->sessions[0].items);
  EXPECT_EQ(next->sessions[0].end_time, Timestamp{63});
  EXPECT_EQ(next->sessions[2].items, (std::vector<ItemId>{7, 8}));
  EXPECT_EQ(next->sessions[2].end_time, Timestamp{65});
  EXPECT_EQ(next->watermark_unix_ms, 5010u);
}

TEST(DeltaBuilderTest, TtlExpiresOldSessionsOutOfTheCumulativeDelta) {
  DeltaBuilderConfig config = SmallBuilderConfig();
  config.session_ttl_ms = 1000;
  DeltaBuilder builder(config);
  builder.Ingest("old", 1, 1000);
  builder.Ingest("old", 2, 1100);
  builder.Ingest("new", 3, 5000);
  builder.Ingest("new", 4, 5100);
  EXPECT_EQ(builder.SealIdle(10000), size_t{2});

  // At now=2200 "old" (last click 1100) is past TTL; "new" is not.
  auto delta = builder.Compact(2200);
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(delta->sessions.size(), 1u);
  EXPECT_EQ(delta->sessions[0].items, (std::vector<ItemId>{3, 4}));
  EXPECT_EQ(builder.sessions_expired(), 1u);
  EXPECT_EQ(delta->watermark_unix_ms, 5100u);
}

TEST(DeltaBuilderTest, OpenSessionCapDropsAndCountsOverflowClicks) {
  DeltaBuilderConfig config = SmallBuilderConfig();
  config.max_open_sessions = 1;
  DeltaBuilder builder(config);
  builder.Ingest("keep", 1, 1000);
  builder.Ingest("overflow", 2, 1010);  // new session beyond the cap
  builder.Ingest("keep", 3, 1020);      // existing session: still accepted
  EXPECT_EQ(builder.clicks_ingested(), 3u);  // arrivals, drops included
  EXPECT_EQ(builder.clicks_dropped_overflow(), 1u);
  EXPECT_EQ(builder.open_sessions(), size_t{1});
}

TEST(FreshnessPipelineTest, TapBuilderFetcherClosesTheLoopOverHttp) {
  auto index = std::make_shared<const SessionIndex>(
      SessionIndex::Build(Dataset::FromClicks(BaseClicks(), 2), 100));
  auto manager = IndexManager::CreateFromIndex(index, /*version=*/1);

  IndexBuilderConfig builder_config;
  builder_config.builder = SmallBuilderConfig();
  IndexBuilderServer builder(builder_config);
  ASSERT_TRUE(builder.Start().ok());

  ClickTapConfig tap_config;
  tap_config.builder_port = builder.port();
  tap_config.flush_interval_ms = 10'000;  // the test flushes explicitly
  ClickTap tap(tap_config);
  ASSERT_TRUE(tap.Start().ok());

  DeltaFetcherConfig fetch_config;
  fetch_config.builder_port = builder.port();
  DeltaFetcher fetcher(fetch_config, [&manager](const IndexDelta& delta) {
    return manager->ApplyDelta(delta);
  });

  // Two shopper sessions stream through the tap.
  tap.Observe("u1", 1, 1000);
  tap.Observe("u1", 2, 1010);
  tap.Observe("u2", 2, 1020);
  tap.Observe("u2", 3, 1030);
  ASSERT_TRUE(tap.FlushNow().ok());
  EXPECT_EQ(tap.clicks_shipped(), 4u);
  EXPECT_EQ(builder.builder().clicks_ingested(), 4u);

  auto version = builder.CompactNow(/*now_unix_ms=*/5000);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 2u);
  EXPECT_EQ(builder.published_watermark_unix_ms(), 1030u);

  // One poll lands the overlay on the pod's manager.
  ASSERT_TRUE(fetcher.PollOnce().ok());
  EXPECT_EQ(fetcher.deltas_applied(), 1u);
  EXPECT_EQ(manager->applied_delta_version(), 2u);
  EXPECT_EQ(manager->Current()->index().num_sessions(),
            index->num_sessions() + 2);
  EXPECT_EQ(manager->freshness_watermark_unix_ms(), 1030u);

  // Converged: the next poll is a 204 no-op, not a re-apply.
  ASSERT_TRUE(fetcher.PollOnce().ok());
  EXPECT_EQ(fetcher.deltas_applied(), 1u);
  EXPECT_EQ(manager->deltas_applied_total(), 1u);

  // More clicks roll a cumulative v3; the fetcher catches up in one poll.
  tap.Observe("u3", 4, 2000);
  tap.Observe("u3", 5, 2010);
  ASSERT_TRUE(tap.FlushNow().ok());
  version = builder.CompactNow(/*now_unix_ms=*/9000);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 3u);
  ASSERT_TRUE(fetcher.PollOnce().ok());
  EXPECT_EQ(manager->applied_delta_version(), 3u);
  EXPECT_EQ(manager->Current()->index().num_sessions(),
            index->num_sessions() + 3);

  tap.Stop();
  builder.Stop();
}

TEST(FreshnessPipelineTest, PublishDirStampsArtifactsAndSurvivesCrash) {
  const std::string dir = FreshWorkDir("freshness-publish");
  IndexBuilderConfig config;
  config.builder = SmallBuilderConfig();
  config.publish_dir = dir;
  IndexBuilderServer builder(config);
  ASSERT_TRUE(builder.Start().ok());

  builder.builder().Ingest("a", 1, 1000);
  builder.builder().Ingest("a", 2, 1010);
  auto version = builder.CompactNow(5000);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  ASSERT_EQ(*version, 2u);

  const std::string v2_path = dir + "/delta-v2.srndelta";
  auto artifact = ReadDeltaFile(v2_path);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_EQ(artifact->delta_version, 2u);
  auto manifest = ReadManifestFile(ManifestPathFor(v2_path));
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->kind, "delta");
  EXPECT_EQ(manifest->version, 2u);
  EXPECT_EQ(manifest->base_version, 1u);
  EXPECT_EQ(manifest->watermark_unix_ms, 1010u);
  EXPECT_NE(manifest->index_crc32, 0u);

  // The builder's own metrics expose the freshness SLO gauge.
  EXPECT_NE(builder.metrics().RenderPrometheus().find(
                "serenade_index_freshness_seconds"),
            std::string::npos);

  // Crash mid-publish: the torn v3 artifact may land on disk, but the
  // served version never advances past v2.
  {
    ScopedFaultInjector fi(0xc0ffee);
    fi->Arm(FaultSite::kDeltaPublishCrash, FaultRule{1.0, /*budget=*/1, 0});
    builder.builder().Ingest("b", 3, 6000);
    builder.builder().Ingest("b", 4, 6010);
    auto crashed = builder.CompactNow(8000);
    EXPECT_FALSE(crashed.ok());
    EXPECT_EQ(builder.published_version(), 2u);
    EXPECT_EQ(fi->fires(FaultSite::kDeltaPublishCrash), 1u);
    const std::string v3_path = dir + "/delta-v3.srndelta";
    if (std::filesystem::exists(v3_path)) {
      EXPECT_FALSE(ReadDeltaFile(v3_path).ok())
          << "a torn artifact must never deserialize";
    }

    // Recovery: the injector budget is spent, so the next compaction
    // republishes the same delta version with a clean artifact.
    auto recovered = builder.CompactNow(9000);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(*recovered, 3u);
    EXPECT_EQ(builder.published_version(), 3u);
    auto clean = ReadDeltaFile(v3_path);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_EQ(clean->sessions.size(), 2u);
  }
  builder.Stop();
}

// --- fleet torture: no pod ever serves a torn or mismatched overlay ----------

SimClusterConfig FreshnessTortureConfig(const std::string& work_dir) {
  std::vector<Click> clicks;
  Timestamp now = 1;
  for (SessionId s = 0; s < 40; ++s) {
    for (size_t i = 0; i < 5; ++i) {
      clicks.push_back(
          Click{s, static_cast<ItemId>(1 + (s * 3 + i * 7) % 30), now++});
    }
  }
  SimClusterConfig config;
  config.num_pods = 2;
  config.train = Dataset::FromClicks(std::move(clicks), 2);
  config.knn.m = 50;
  config.knn.k = 10;
  config.work_dir = work_dir;
  config.gateway.health.probe_interval_ms = 20;
  config.gateway.health.probe_timeout_ms = 250;
  config.gateway.forward_timeout_ms = 1000;
  config.freshness.enabled = true;
  config.freshness.builder.min_session_length = 2;
  config.freshness.builder.seal_idle_ms = 50;
  config.freshness.tap.flush_interval_ms = 10;
  config.freshness.fetch.poll_interval_ms = 20;
  return config;
}

StatusOr<int> SendClick(uint16_t port, const std::string& session,
                        ItemId item) {
  HttpClient client;
  SERENADE_RETURN_IF_ERROR(client.Connect(port));
  auto response = client.Get("/v1/recommend?session_id=" + session +
                             "&item_id=" + std::to_string(item));
  SERENADE_RETURN_IF_ERROR(response.status());
  return response->status;
}

TEST(FreshnessTortureTest, NoPodServesTornOrMismatchedOverlays) {
  ScopedFaultInjector fi(0xfade);
  auto cluster = SimCluster::Start(
      FreshnessTortureConfig(FreshWorkDir("freshness-torture")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));
  ASSERT_NE(sim.builder(), nullptr);

  // Traffic through the front door: the pods' click taps feed the builder.
  for (int u = 0; u < 6; ++u) {
    for (ItemId item : {3, 4, 5}) {
      auto status =
          SendClick(sim.gateway().port(), "shopper-" + std::to_string(u), item);
      ASSERT_TRUE(status.ok()) << status.status().ToString();
      ASSERT_EQ(*status, 200);
    }
  }
  for (size_t i = 0; i < sim.num_pods(); ++i) {
    ASSERT_TRUE(sim.pod_tap(i)->FlushNow().ok());
  }
  ASSERT_GE(sim.builder()->builder().clicks_ingested(), 18u);

  // Phase 1: every delta the fleet fetches is torn in flight or served
  // with mismatched lineage. Nothing may stick.
  fi->Arm(FaultSite::kDeltaTruncate, 0.5);
  fi->Arm(FaultSite::kDeltaLineageMismatch, 1.0);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // > seal idle
  auto version = sim.builder()->CompactNow();
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  ASSERT_EQ(*version, 2u);

  // Let the poll threads hammer the faulty distribution path.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (sim.pod_fetcher(0)->fetch_failures() +
            sim.pod_fetcher(0)->apply_failures() >=
        3) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  for (size_t i = 0; i < sim.num_pods(); ++i) {
    IndexManager& manager = sim.pod(i)->service().index_manager();
    EXPECT_EQ(manager.applied_delta_version(), 0u)
        << "pod " << i << " applied a faulted overlay";
    EXPECT_EQ(manager.current_version(), 1u);
    EXPECT_EQ(sim.pod_fetcher(i)->deltas_applied(), 0u);
  }
  EXPECT_GE(sim.pod_fetcher(0)->fetch_failures() +
                sim.pod_fetcher(0)->apply_failures(),
            3u);
  EXPECT_GT(fi->fires(FaultSite::kDeltaLineageMismatch), 0u);

  // A lineage-mismatched delta handed straight to the apply path (as if a
  // rogue builder bypassed the fetcher) is rejected and counted, and the
  // pod keeps serving its base snapshot.
  {
    IndexDelta rogue;
    rogue.base_version = 99;  // nobody pins this base
    rogue.base_crc32 = 0;
    rogue.delta_version = 100;
    rogue.watermark_unix_ms = 1;
    rogue.sessions.push_back(
        DeltaSession{{1, 2}, /*end_time=*/100000, /*observed_unix_ms=*/1});
    EXPECT_EQ(sim.pod(0)->ApplyDelta(rogue).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(sim.pod(0)->service().index_manager().delta_rejects_total(), 1u);
    EXPECT_EQ(sim.pod(0)->service().index_manager().current_version(), 1u);
  }

  // The gateway keeps answering off the pinned base the whole time.
  auto during = SendClick(sim.gateway().port(), "shopper-0", 4);
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  EXPECT_EQ(*during, 200);

  // Phase 2: faults lift; the fleet must converge to the published delta.
  fi->Disarm(FaultSite::kDeltaTruncate);
  fi->Disarm(FaultSite::kDeltaLineageMismatch);

  const auto converge_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  auto converged = [&] {
    for (size_t i = 0; i < sim.num_pods(); ++i) {
      if (sim.pod_fetcher(i)->applied_version() != 2) return false;
    }
    return true;
  };
  while (!converged() &&
         std::chrono::steady_clock::now() < converge_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(converged()) << "fleet failed to converge after faults lifted";

  const uint64_t watermark = sim.builder()->published_watermark_unix_ms();
  ASSERT_GT(watermark, 0u);
  for (size_t i = 0; i < sim.num_pods(); ++i) {
    IndexManager& manager = sim.pod(i)->service().index_manager();
    EXPECT_EQ(manager.applied_delta_version(), 2u);
    EXPECT_EQ(manager.current_version(), 2u);
    EXPECT_EQ(manager.base_version(), 1u);
    EXPECT_EQ(manager.freshness_watermark_unix_ms(), watermark);
    EXPECT_EQ(manager.Current()->manifest().kind, "delta");
  }

  // And the freshened fleet still answers.
  auto after = SendClick(sim.gateway().port(), "shopper-1", 5);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, 200);
}

}  // namespace
}  // namespace serenade
