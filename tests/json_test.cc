#include "serving/json.h"

#include <gtest/gtest.h>

namespace serenade {
namespace {

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("name")
      .Value("serenade")
      .Key("count")
      .Value(static_cast<int64_t>(42))
      .Key("ratio")
      .Value(0.5)
      .Key("ok")
      .Value(true)
      .Key("missing")
      .Null()
      .EndObject();
  EXPECT_EQ(writer.str(),
            "{\"name\":\"serenade\",\"count\":42,\"ratio\":0.5,"
            "\"ok\":true,\"missing\":null}");
}

TEST(JsonWriterTest, NestedArrays) {
  JsonWriter writer;
  writer.BeginObject().Key("items").BeginArray();
  for (int i = 0; i < 3; ++i) writer.Value(static_cast<int64_t>(i));
  writer.EndArray().EndObject();
  EXPECT_EQ(writer.str(), "{\"items\":[0,1,2]}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter writer;
  writer.Value(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(writer.str(), "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->AsBool(), true);
  EXPECT_EQ(ParseJson("false")->AsBool(), false);
  EXPECT_DOUBLE_EQ(ParseJson("3.25")->AsNumber(), 3.25);
  EXPECT_EQ(ParseJson("-17")->AsInt(), -17);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParserTest, ParsesNestedDocument) {
  auto doc = ParseJson(
      R"({"items":[1,2,3],"meta":{"ok":true,"name":"x"},"empty":[]})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* items = doc->Find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->AsArray().size(), 3u);
  EXPECT_EQ(items->AsArray()[1].AsInt(), 2);
  const JsonValue* meta = doc->Find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_TRUE(meta->Find("ok")->AsBool());
  EXPECT_EQ(meta->Find("name")->AsString(), "x");
  EXPECT_TRUE(doc->Find("empty")->AsArray().empty());
  EXPECT_EQ(doc->Find("nope"), nullptr);
}

TEST(JsonParserTest, ParsesEscapes) {
  auto doc = ParseJson(R"("line\nbreak Aé")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "line\nbreak A\xc3\xa9");
}

TEST(JsonParserTest, WhitespaceTolerant) {
  auto doc = ParseJson("  { \"a\" : [ 1 , 2 ] }  ");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("a")->AsArray().size(), 2u);
}

TEST(JsonParserTest, RejectsMalformed) {
  for (const char* bad :
       {"{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "[1 2]", "{'a':1}", ""}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << bad;
  }
}

TEST(JsonRoundTrip, WriterOutputReparses) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("items")
      .BeginArray()
      .Value(static_cast<uint64_t>(10))
      .Value(static_cast<uint64_t>(20))
      .EndArray()
      .Key("label")
      .Value("a\"b")
      .EndObject();
  auto doc = ParseJson(writer.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("items")->AsArray()[0].AsInt(), 10);
  EXPECT_EQ(doc->Find("label")->AsString(), "a\"b");
}

}  // namespace
}  // namespace serenade
