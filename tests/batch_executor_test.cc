// BatchExecutor: the micro-batching layer between the HTTP routes and
// SerenadeService. The contracts under test:
//   * batch-size-1 is an exact pass-through of the serial request path,
//   * batched execution returns the same recommendations as serial,
//   * duplicate session keys in one batch apply their clicks in order
//     (session-key worker affinity),
//   * one invalid slot never fails its siblings (per-slot StatusOr),
//   * a stopped executor sheds with kUnavailable; an overflowing queue
//     sheds with kResourceExhausted (HTTP 429 + Retry-After).
//
// Batch-composition tests run on a VirtualBatchClock: the coalescing
// window opens and closes only when the test says so, which turns "the
// worker waited long enough" from a scheduler gamble into a determined
// fact — the same batches form on every run, under every sanitizer.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "serving/batch_executor.h"
#include "serving/service.h"
#include "testing/fault_injection.h"
#include "testing/virtual_clock.h"

namespace serenade {
namespace {

class BatchExecutorTest : public testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig data_config;
    data_config.seed = 77;
    data_config.num_items = 300;
    data_config.num_sessions = 3000;
    data_config.num_days = 5;
    train_ = GenerateDataset(data_config);
    index_ = std::make_shared<SessionIndex>(SessionIndex::Build(train_, 500));
    catalog_ = GenerateCatalog(train_.num_items(), 5);
  }

  std::unique_ptr<SerenadeService> MakeService() {
    ServiceConfig config;
    config.knn.m = 500;
    config.knn.k = 100;
    auto service = SerenadeService::Create(index_, catalog_, config);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service).value();
  }

  Dataset train_;
  std::shared_ptr<SessionIndex> index_;
  ItemCatalog catalog_;
};

std::vector<ItemId> Items(const std::vector<ScoredItem>& scored) {
  std::vector<ItemId> items;
  items.reserve(scored.size());
  for (const ScoredItem& item : scored) items.push_back(item.item);
  return items;
}

TEST_F(BatchExecutorTest, PassthroughMatchesSerialPath) {
  // Two identical services over the same index: one driven through a
  // pass-through executor, one called directly. Same clicks, same answers.
  auto batched_service = MakeService();
  auto serial_service = MakeService();
  BatchExecutor executor(batched_service.get(), BatchExecutorConfig{});
  ASSERT_TRUE(executor.passthrough());
  ASSERT_TRUE(executor.Start().ok());

  for (ItemId item : {3u, 4u, 5u, 17u}) {
    const RecommendRequest request{"visitor", item, true};
    auto via_executor = executor.Execute(request);
    auto direct = serial_service->HandleUpdateAndRecommend(request);
    ASSERT_TRUE(via_executor.ok()) << via_executor.status().ToString();
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(Items(*via_executor), Items(*direct));
  }
  // Pass-through never touches the batch counters.
  EXPECT_EQ(executor.batches_executed(), 0u);
}

TEST_F(BatchExecutorTest, BatchedResultsMatchSerialResults) {
  auto batched_service = MakeService();
  auto serial_service = MakeService();
  std::vector<RecommendRequest> requests;
  for (ItemId item = 1; item <= 24; ++item) {
    requests.push_back({"shopper-" + std::to_string(item % 7), item, true});
  }

  auto batched = batched_service->HandleUpdateAndRecommendBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto serial = serial_service->HandleUpdateAndRecommend(requests[i]);
    ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(Items(batched[i].value()), Items(*serial)) << "slot " << i;
  }
}

TEST_F(BatchExecutorTest, DuplicateKeysInOneBatchApplyInOrder) {
  auto service = MakeService();
  std::vector<RecommendRequest> requests;
  for (ItemId item : {10u, 11u, 12u, 13u}) {
    requests.push_back({"same-visitor", item, true});
  }
  auto results = service->HandleUpdateAndRecommendBatch(requests);
  for (const auto& result : results) ASSERT_TRUE(result.ok());
  auto session = service->GetSession("same-visitor");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(*session, (EvolvingSession{10, 11, 12, 13}));
}

TEST_F(BatchExecutorTest, OneBadSlotNeverFailsSiblings) {
  auto service = MakeService();
  std::vector<RecommendRequest> requests = {
      {"ok-1", 5, true},
      {"", 6, true},                 // missing session key
      {"ok-2", kInvalidItem, true},  // missing item
      {"ok-3", 7, true},
  };
  auto results = service->HandleUpdateAndRecommendBatch(requests);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[2].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[3].ok());
  // The valid slots still updated their sessions.
  EXPECT_EQ(*service->GetSession("ok-1"), (EvolvingSession{5}));
  EXPECT_EQ(*service->GetSession("ok-3"), (EvolvingSession{7}));
}

TEST_F(BatchExecutorTest, CoalescingWindowFillsIntoExactlyOneBatch) {
  auto service = MakeService();
  BatchExecutorConfig config;
  config.max_batch_size = 5;
  // Virtual microseconds: this window NEVER expires unless the test
  // advances the clock, so a full batch is the only way out.
  config.max_delay_us = 60'000'000;
  config.num_workers = 1;
  VirtualBatchClock clock;
  BatchExecutor executor(service.get(), config, nullptr, &clock);
  ASSERT_FALSE(executor.passthrough());
  ASSERT_TRUE(executor.Start().ok());

  std::atomic<size_t> ok_count{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    if (executor.Execute({"virt-0", 1, true}).ok()) ok_count.fetch_add(1);
  });
  // Handshake: the worker holds the first request inside its coalescing
  // window. Nothing has run yet — guaranteed, not hoped.
  clock.AwaitWaiters(1);
  EXPECT_EQ(executor.batches_executed(), 0u);
  for (int t = 1; t < 5; ++t) {
    threads.emplace_back([&, t] {
      const RecommendRequest request{"virt-" + std::to_string(t),
                                     static_cast<ItemId>(1 + t), true};
      if (executor.Execute(request).ok()) ok_count.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  executor.Stop();

  EXPECT_EQ(ok_count.load(), 5u);
  EXPECT_EQ(executor.requests_executed(), 5u);
  // Virtual time never moved, so the only exit from the window was the
  // batch filling: all five requests coalesced into one batch.
  EXPECT_EQ(executor.batches_executed(), 1u);
}

TEST_F(BatchExecutorTest, WindowExpiryFlushesAPartialBatch) {
  auto service = MakeService();
  BatchExecutorConfig config;
  config.max_batch_size = 8;
  config.max_delay_us = 5000;
  config.num_workers = 1;
  VirtualBatchClock clock;
  BatchExecutor executor(service.get(), config, nullptr, &clock);
  ASSERT_TRUE(executor.Start().ok());

  std::thread submitter([&] {
    auto result = executor.Execute({"lone", 9, true});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  clock.AwaitWaiters(1);
  EXPECT_EQ(executor.batches_executed(), 0u);
  // The window expires exactly now — a partial batch of one flushes.
  clock.AdvanceMicros(config.max_delay_us);
  submitter.join();
  executor.Stop();

  EXPECT_EQ(executor.requests_executed(), 1u);
  EXPECT_EQ(executor.batches_executed(), 1u);
}

TEST_F(BatchExecutorTest, ConcurrentLoadDrainsEveryRequestInOrder) {
  // Real-clock stress: correctness only — no batch-count assertions,
  // those live in the virtual-clock tests above.
  auto service = MakeService();
  BatchExecutorConfig config;
  config.max_batch_size = 8;
  config.max_delay_us = 200;
  config.num_workers = 2;
  BatchExecutor executor(service.get(), config);
  ASSERT_TRUE(executor.Start().ok());

  constexpr size_t kThreads = 16;
  constexpr size_t kPerThread = 8;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const RecommendRequest request{
            "load-" + std::to_string(t),
            static_cast<ItemId>(1 + (t * kPerThread + i) % 200), true};
        if (!executor.Execute(request).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  executor.Stop();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(executor.requests_executed(), kThreads * kPerThread);
  // Worker affinity kept each session's clicks ordered.
  for (size_t t = 0; t < kThreads; ++t) {
    auto session = service->GetSession("load-" + std::to_string(t));
    ASSERT_TRUE(session.ok());
    EXPECT_EQ(session->size(), kPerThread);
  }
}

TEST_F(BatchExecutorTest, NotStartedAndStoppedShedWithUnavailable) {
  auto service = MakeService();
  BatchExecutorConfig config;
  config.max_batch_size = 4;
  BatchExecutor executor(service.get(), config);

  // Batch mode before Start(): requests are shed, not deadlocked.
  auto early = executor.Execute({"early", 3, true});
  EXPECT_EQ(early.status().code(), StatusCode::kUnavailable);

  ASSERT_TRUE(executor.Start().ok());
  EXPECT_TRUE(executor.Execute({"mid", 3, true}).ok());
  executor.Stop();
  auto late = executor.Execute({"late", 3, true});
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST_F(BatchExecutorTest, ExecuteBatchPreservesSlotOrder) {
  auto service = MakeService();
  BatchExecutorConfig config;
  config.max_batch_size = 4;
  config.max_delay_us = 500;  // virtual: only full batches release
  config.num_workers = 1;
  VirtualBatchClock clock;
  BatchExecutor executor(service.get(), config, nullptr, &clock);
  ASSERT_TRUE(executor.Start().ok());

  std::vector<RecommendRequest> requests;
  for (ItemId item = 1; item <= 12; ++item) {
    requests.push_back({"batch-" + std::to_string(item % 5), item, true});
  }
  requests[4].session_key.clear();  // one poisoned slot

  auto results = executor.ExecuteBatch(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == 4) {
      EXPECT_EQ(results[i].status().code(), StatusCode::kInvalidArgument);
    } else {
      EXPECT_TRUE(results[i].ok()) << "slot " << i << ": "
                                   << results[i].status().ToString();
    }
  }
  // 12 requests through one worker whose window never expires: the only
  // way out is filling up, so the split is exactly three batches of 4.
  EXPECT_EQ(executor.batches_executed(), 3u);
  executor.Stop();
}

TEST_F(BatchExecutorTest, InjectedQueueFullShedsDeterministically) {
  auto service = MakeService();
  BatchExecutorConfig config;
  config.max_batch_size = 4;
  config.num_workers = 1;  // max_delay_us = 0: drain immediately
  BatchExecutor executor(service.get(), config);
  ASSERT_TRUE(executor.Start().ok());

  ScopedFaultInjector injector(99);
  injector->Arm(FaultSite::kBatchQueueFull, FaultRule{1.0, 2, 0});
  // ExecuteBatch submits slots in order, so the two-fault budget lands
  // exactly on slots 0 and 1; shedding never fails the siblings.
  std::vector<RecommendRequest> requests;
  for (ItemId item = 1; item <= 6; ++item) {
    requests.push_back({"shed-" + std::to_string(item), item, true});
  }
  auto results = executor.ExecuteBatch(requests);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(results[1].status().code(), StatusCode::kResourceExhausted);
  for (size_t i = 2; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << "slot " << i;
  }
  EXPECT_EQ(executor.requests_rejected(), 2u);
  EXPECT_EQ(executor.requests_executed(), 4u);

  // Budget exhausted: the path is clean again.
  EXPECT_TRUE(executor.Execute({"after-shed", 3, true}).ok());
  executor.Stop();
}

}  // namespace
}  // namespace serenade
