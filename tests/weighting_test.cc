#include "core/weighting.h"

#include <gtest/gtest.h>

namespace serenade {
namespace {

// The paper's toy example (Section 2): evolving session s = [1, 2, 4] with
// omega = [1, 2, 3], linear decay pi(pos) = pos / |s|; historical session
// h = {2, 4}. The decayed dot product is 2/3 + 3/3 = 5/3, and the match
// weight is lambda(3) = 0.7.
TEST(WeightingTest, PaperToyExampleDecay) {
  EXPECT_DOUBLE_EQ(DecayWeight(DecayType::kLinear, 1, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(DecayWeight(DecayType::kLinear, 2, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(DecayWeight(DecayType::kLinear, 3, 3), 1.0);
  const double similarity = DecayWeight(DecayType::kLinear, 2, 3) +
                            DecayWeight(DecayType::kLinear, 3, 3);
  EXPECT_DOUBLE_EQ(similarity, 5.0 / 3.0);
}

TEST(WeightingTest, PaperToyExampleMatchWeight) {
  EXPECT_DOUBLE_EQ(
      MatchWeight(MatchWeightType::kPaperInsertionOrder, 3, 3), 0.7);
}

TEST(WeightingTest, PaperMatchWeightZeroBeyondHorizon) {
  EXPECT_DOUBLE_EQ(
      MatchWeight(MatchWeightType::kPaperInsertionOrder, 10, 12), 0.0);
  EXPECT_DOUBLE_EQ(
      MatchWeight(MatchWeightType::kPaperInsertionOrder, 9, 12), 0.1);
}

TEST(WeightingTest, StepsFromEndIsOneForMostRecent) {
  // Most recent item shared -> step 1 -> full weight.
  EXPECT_DOUBLE_EQ(MatchWeight(MatchWeightType::kStepsFromEnd, 5, 5), 1.0);
  // One step back -> 0.9, two -> 0.8.
  EXPECT_DOUBLE_EQ(MatchWeight(MatchWeightType::kStepsFromEnd, 4, 5), 0.9);
  EXPECT_DOUBLE_EQ(MatchWeight(MatchWeightType::kStepsFromEnd, 3, 5), 0.8);
}

TEST(WeightingTest, StepsFromEndClampsToZero) {
  EXPECT_DOUBLE_EQ(MatchWeight(MatchWeightType::kStepsFromEnd, 1, 30), 0.0);
}

TEST(WeightingTest, ConstantWeights) {
  EXPECT_DOUBLE_EQ(DecayWeight(DecayType::kSame, 1, 9), 1.0);
  EXPECT_DOUBLE_EQ(DecayWeight(DecayType::kSame, 9, 9), 1.0);
  EXPECT_DOUBLE_EQ(MatchWeight(MatchWeightType::kConstant, 1, 9), 1.0);
}

struct DecayCase {
  DecayType type;
};

class DecayMonotonicityTest : public testing::TestWithParam<DecayCase> {};

// Property: every decay variant is non-decreasing in position (recent
// items never weigh less) and strictly positive.
TEST_P(DecayMonotonicityTest, NonDecreasingInPosition) {
  const DecayType type = GetParam().type;
  for (size_t len : {1u, 2u, 5u, 10u, 50u}) {
    double previous = 0.0;
    for (size_t pos = 1; pos <= len; ++pos) {
      const double w = DecayWeight(type, pos, len);
      EXPECT_GT(w, 0.0) << DecayTypeName(type) << " pos=" << pos;
      EXPECT_GE(w, previous) << DecayTypeName(type) << " pos=" << pos
                             << " len=" << len;
      previous = w;
    }
    EXPECT_LE(previous, 1.0 + 1e-9) << DecayTypeName(type);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDecays, DecayMonotonicityTest,
    testing::Values(DecayCase{DecayType::kSame}, DecayCase{DecayType::kLinear},
                    DecayCase{DecayType::kQuadratic},
                    DecayCase{DecayType::kHarmonic},
                    DecayCase{DecayType::kLogarithmic}),
    [](const testing::TestParamInfo<DecayCase>& info) {
      return DecayTypeName(info.param.type);
    });

TEST(WeightingTest, NamesAreStable) {
  EXPECT_STREQ(DecayTypeName(DecayType::kLinear), "linear");
  EXPECT_STREQ(MatchWeightTypeName(MatchWeightType::kStepsFromEnd),
               "steps_from_end");
  EXPECT_STREQ(IdfWeightingName(IdfWeighting::kLog), "log");
}

}  // namespace
}  // namespace serenade
