#include "common/dary_heap.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace serenade {
namespace {

TEST(DaryHeapTest, EmptyHeap) {
  DaryHeap<int> heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
}

TEST(DaryHeapTest, PushPopOrdered) {
  DaryHeap<int> heap;
  for (int v : {5, 3, 8, 1, 9, 2}) heap.Push(v);
  EXPECT_EQ(heap.size(), 6u);
  std::vector<int> drained;
  while (!heap.empty()) drained.push_back(heap.Pop());
  EXPECT_EQ(drained, (std::vector<int>{1, 2, 3, 5, 8, 9}));
}

TEST(DaryHeapTest, MaxHeapViaGreater) {
  DaryHeap<int, 8, std::greater<int>> heap;
  for (int v : {5, 3, 8, 1}) heap.Push(v);
  EXPECT_EQ(heap.Top(), 8);
  EXPECT_EQ(heap.Pop(), 8);
  EXPECT_EQ(heap.Top(), 5);
}

TEST(DaryHeapTest, ReplaceTopEqualsPopPush) {
  DaryHeap<int> a, b;
  for (int v : {4, 7, 2, 9, 5}) {
    a.Push(v);
    b.Push(v);
  }
  a.ReplaceTop(6);
  b.Pop();
  b.Push(6);
  while (!a.empty()) {
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.Pop(), b.Pop());
  }
}

TEST(DaryHeapTest, ClearKeepsReuse) {
  DaryHeap<int> heap;
  heap.Push(1);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  heap.Push(2);
  EXPECT_EQ(heap.Top(), 2);
}

// Property: any arity drains in sorted order on random input.
template <size_t Arity>
void RandomDrainProperty(uint64_t seed) {
  Rng rng(seed);
  DaryHeap<uint64_t, Arity> heap;
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Below(500);  // force duplicates
    values.push_back(v);
    heap.Push(v);
  }
  std::sort(values.begin(), values.end());
  for (uint64_t expected : values) {
    ASSERT_EQ(heap.Pop(), expected);
  }
  EXPECT_TRUE(heap.empty());
}

TEST(DaryHeapProperty, Binary) { RandomDrainProperty<2>(1); }
TEST(DaryHeapProperty, Quaternary) { RandomDrainProperty<4>(2); }
TEST(DaryHeapProperty, Octonary) { RandomDrainProperty<8>(3); }

// Property: interleaved Push / Pop / ReplaceTop matches a sorted-vector
// model implementation.
TEST(DaryHeapProperty, MatchesModelUnderMixedOps) {
  Rng rng(99);
  DaryHeap<uint64_t> heap;
  std::vector<uint64_t> model;  // kept sorted ascending
  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng.Below(3));
    if (op == 0 || heap.empty()) {
      const uint64_t v = rng.Below(1000);
      heap.Push(v);
      model.insert(std::lower_bound(model.begin(), model.end(), v), v);
    } else if (op == 1) {
      ASSERT_EQ(heap.Pop(), model.front());
      model.erase(model.begin());
    } else {
      const uint64_t v = rng.Below(1000);
      heap.ReplaceTop(v);
      model.erase(model.begin());
      model.insert(std::lower_bound(model.begin(), model.end(), v), v);
    }
    if (!model.empty()) {
      ASSERT_EQ(heap.Top(), model.front());
    }
    ASSERT_EQ(heap.size(), model.size());
  }
}

TEST(BoundedTopKTest, KeepsLargest) {
  BoundedTopK<int> top(3);
  for (int v : {5, 1, 9, 3, 7, 2, 8}) top.Offer(v);
  EXPECT_TRUE(top.full());
  EXPECT_EQ(top.TakeSortedDescending(), (std::vector<int>{9, 8, 7}));
}

TEST(BoundedTopKTest, FewerThanK) {
  BoundedTopK<int> top(10);
  top.Offer(2);
  top.Offer(5);
  EXPECT_FALSE(top.full());
  EXPECT_EQ(top.TakeSortedDescending(), (std::vector<int>{5, 2}));
}

TEST(BoundedTopKTest, OfferReportsKept) {
  BoundedTopK<int> top(2);
  EXPECT_TRUE(top.Offer(1));
  EXPECT_TRUE(top.Offer(2));
  EXPECT_FALSE(top.Offer(0));  // weaker than both
  EXPECT_TRUE(top.Offer(3));   // displaces 1
  EXPECT_EQ(top.TakeSortedDescending(), (std::vector<int>{3, 2}));
}

TEST(BoundedTopKProperty, MatchesFullSort) {
  Rng rng(7);
  for (size_t k : {1u, 2u, 5u, 32u, 100u}) {
    BoundedTopK<uint64_t> top(k);
    std::vector<uint64_t> all;
    for (int i = 0; i < 1000; ++i) {
      const uint64_t v = rng.Below(10000);
      all.push_back(v);
      top.Offer(v);
    }
    std::sort(all.begin(), all.end(), std::greater<>());
    all.resize(std::min<size_t>(k, all.size()));
    EXPECT_EQ(top.TakeSortedDescending(), all) << "k=" << k;
  }
}

}  // namespace
}  // namespace serenade
