// Failure-injection / fuzz-style robustness tests: every parser in the
// system (JSON, CSV click logs, the binary index format, the WAL) must
// reject arbitrary garbage with an error status — never crash, hang, or
// return success on corrupt input.
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"
#include "index/index_format.h"
#include "serving/http.h"
#include "serving/json.h"
#include "store/wal.h"

namespace serenade {
namespace {

std::string RandomBytes(Rng& rng, size_t length) {
  std::string bytes(length, '\0');
  for (char& c : bytes) c = static_cast<char>(rng.Below(256));
  return bytes;
}

std::string RandomPrintable(Rng& rng, size_t length) {
  static const char kAlphabet[] =
      "{}[]\",:0123456789.eE+-truefalsenull \t\n";
  std::string text(length, '\0');
  for (char& c : text) c = kAlphabet[rng.Below(sizeof(kAlphabet) - 1)];
  return text;
}

TEST(RobustnessTest, JsonParserSurvivesGarbage) {
  Rng rng(101);
  for (int i = 0; i < 3000; ++i) {
    const std::string input = i % 2 == 0
                                  ? RandomBytes(rng, rng.Below(200))
                                  : RandomPrintable(rng, rng.Below(200));
    // Must return (ok or error) without crashing; value is unused.
    (void)ParseJson(input);
  }
}

TEST(RobustnessTest, JsonParserLimitsNestingDepth) {
  // Recursive-descent parsers stack-overflow on pathological depth; the
  // parser caps nesting at 256 and rejects deeper documents cleanly.
  auto nested = [](int depth) {
    std::string text;
    for (int i = 0; i < depth; ++i) text += "[";
    for (int i = 0; i < depth; ++i) text += "]";
    return text;
  };
  EXPECT_TRUE(ParseJson(nested(200)).ok());
  EXPECT_FALSE(ParseJson(nested(300)).ok());
  std::string unbalanced;
  for (int i = 0; i < 100000; ++i) unbalanced += "[";
  EXPECT_FALSE(ParseJson(unbalanced).ok());
}

TEST(RobustnessTest, CsvParserSurvivesGarbage) {
  Rng rng(102);
  for (int i = 0; i < 2000; ++i) {
    (void)ParseClicksCsv(RandomBytes(rng, rng.Below(300)));
  }
}

TEST(RobustnessTest, IndexDeserializerSurvivesGarbage) {
  Rng rng(103);
  for (int i = 0; i < 1000; ++i) {
    const auto result = DeserializeIndex(RandomBytes(rng, rng.Below(400)));
    EXPECT_FALSE(result.ok());  // random bytes are never a valid index
  }
}

TEST(RobustnessTest, IndexDeserializerSurvivesMutatedValidFile) {
  // Start from a valid serialized index and mutate single bytes at many
  // positions: must either fail cleanly or (for don't-care bytes) produce
  // a structurally valid index — never crash.
  std::vector<Click> clicks;
  for (SessionId s = 0; s < 50; ++s) {
    clicks.push_back({s, static_cast<ItemId>(s % 7), 100u + s});
    clicks.push_back({s, static_cast<ItemId>((s + 1) % 7), 101u + s});
  }
  const SessionIndex index =
      SessionIndex::Build(Dataset::FromClicks(clicks), 20);
  const std::string valid = SerializeIndex(index);

  Rng rng(104);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = valid;
    const size_t position = rng.Below(mutated.size());
    mutated[position] = static_cast<char>(rng.Below(256));
    const auto result = DeserializeIndex(mutated);
    if (result.ok()) {
      // Mutation hit a redundant byte AND still passed CRC (essentially
      // impossible) or hit nothing structural; touch the result to make
      // sure it is usable.
      (void)result->num_postings();
    }
  }
}

TEST(RobustnessTest, WalReplaySurvivesGarbageFiles) {
  Rng rng(105);
  const std::string path = testing::TempDir() + "/garbage.wal";
  for (int i = 0; i < 200; ++i) {
    {
      std::ofstream file(path, std::ios::binary | std::ios::trunc);
      const std::string bytes = RandomBytes(rng, rng.Below(500));
      file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    size_t replayed = 0;
    (void)ReplayWal(path, [&](const WalRecord&) { ++replayed; });
    // Garbage may parse as zero or a few torn records; never crash.
  }
  std::filesystem::remove(path);
}

TEST(RobustnessTest, UrlDecodeSurvivesGarbage) {
  Rng rng(106);
  for (int i = 0; i < 2000; ++i) {
    (void)UrlDecode(RandomBytes(rng, rng.Below(100)));
  }
}

}  // namespace
}  // namespace serenade
