// Live A/B experimentation over the real gateway (cluster/gateway.h +
// testing/sim_cluster.h): sessions are hash-bucketed into retrieval arms,
// the bucket is stamped onto forwarded traffic, pods answer with
// X-Serenade-Engine, and the per-arm read-out adds up. Invariants:
//   * buckets are sticky: the same session key always gets the same arm,
//     and the served engine matches ClusterGateway::AbArmOf,
//   * per-arm request counters sum to the total forwarded count, and an
//     honest 50% split exercises both arms,
//   * a client-specified engine overrides the bucket,
//   * engagement tracking credits the arm whose recommendation the next
//     click landed on,
//   * batch slots are stamped and counted per arm like single requests,
//   * a dead ANN arm (pods without embeddings) degrades every ANN-bucket
//     request to VMIS — zero failed requests, fallbacks counted at both
//     tiers.
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/click_log.h"
#include "serving/http.h"
#include "serving/json.h"
#include "serving/server.h"
#include "testing/sim_cluster.h"

namespace serenade {
namespace {

Dataset SmallTrainingSet() {
  std::vector<Click> clicks;
  Timestamp now = 1;
  for (SessionId s = 0; s < 40; ++s) {
    for (size_t i = 0; i < 5; ++i) {
      clicks.push_back(
          Click{s, static_cast<ItemId>(1 + (s * 3 + i * 7) % 30), now++});
    }
  }
  return Dataset::FromClicks(std::move(clicks), /*min_session_length=*/2);
}

SimClusterConfig AbConfig(uint32_t ann_percent, bool pods_have_embeddings) {
  SimClusterConfig config;
  config.num_pods = 2;
  config.train = SmallTrainingSet();
  config.knn.m = 50;
  config.knn.k = 10;
  config.gateway.health.probe_interval_ms = 20;
  config.gateway.health.probe_timeout_ms = 250;
  config.gateway.forward_timeout_ms = 2000;
  config.ab.enabled = true;
  config.ab.ann_percent = ann_percent;
  config.ab.salt = 42;
  config.ab.pods_have_embeddings = pods_have_embeddings;
  config.ab.train.dim = 8;
  config.ab.train.epochs = 1;
  config.ab.train.window = 2;
  return config;
}

class GatewayClient {
 public:
  explicit GatewayClient(uint16_t port) : client_(MakeOptions()) {
    EXPECT_TRUE(client_.Connect(port).ok());
  }

  HttpResponse Get(const std::string& target) {
    auto response = client_.Get(target);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? std::move(response).value() : HttpResponse{};
  }

  HttpResponse Post(const std::string& target, const std::string& body) {
    auto response = client_.Post(target, body);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? std::move(response).value() : HttpResponse{};
  }

 private:
  static HttpClientOptions MakeOptions() {
    HttpClientOptions options;
    options.connect_timeout_ms = 2000;
    options.io_timeout_ms = 10000;
    return options;
  }

  HttpClient client_;
};

TEST(AbRoutingTest, StickyBucketsSplitTrafficAndCountersSum) {
  auto cluster = SimCluster::Start(AbConfig(50, /*pods_have_embeddings=*/true));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ASSERT_TRUE((*cluster)->AwaitHealthy(2, 5000));
  GatewayClient client((*cluster)->gateway().port());

  const size_t kSessions = 30;
  const size_t kClicksPerSession = 3;
  std::set<std::string> arms_seen;
  size_t requests_sent = 0;
  for (size_t s = 0; s < kSessions; ++s) {
    const std::string key = "ab-session-" + std::to_string(s);
    const std::string expected = (*cluster)->gateway().AbArmOf(key);
    for (size_t click = 0; click < kClicksPerSession; ++click) {
      const ItemId item = static_cast<ItemId>(1 + (s + click * 7) % 30);
      HttpResponse response = client.Get("/v1/recommend?session_id=" + key +
                                         "&item_id=" + std::to_string(item));
      ASSERT_EQ(response.status, 200) << response.body;
      ++requests_sent;
      // Sticky: every click of this session serves its assigned arm.
      EXPECT_EQ(response.Header(kEngineHeader), expected)
          << "session " << key << " click " << click;
    }
    arms_seen.insert(expected);
  }
  // A 50% split over 30 sessions must actually exercise both arms.
  EXPECT_EQ(arms_seen.size(), 2u);

  const AbCounters ab = (*cluster)->gateway().ab_counters();
  const GatewayCounters totals = (*cluster)->gateway().counters();
  EXPECT_EQ(ab.requests[0] + ab.requests[1], requests_sent)
      << "per-arm counters must sum to the total";
  EXPECT_EQ(totals.forwarded_ok, requests_sent);
  EXPECT_GT(ab.requests[0], 0u);
  EXPECT_GT(ab.requests[1], 0u);
  EXPECT_EQ(ab.fallbacks, 0u) << "both arms were live";
  EXPECT_EQ(totals.failed, 0u);
  EXPECT_EQ(ab.impressions[0] + ab.impressions[1], requests_sent);

  // The /v1/stats surface exposes the same read-out.
  HttpResponse stats = client.Get("/v1/stats");
  ASSERT_EQ(stats.status, 200);
  auto doc = ParseJson(stats.body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(static_cast<uint64_t>(doc->Find("ab_requests_vmis")->AsInt()) +
                static_cast<uint64_t>(doc->Find("ab_requests_ann")->AsInt()),
            requests_sent);
}

TEST(AbRoutingTest, ClientEngineOverridesBucketAndEngagementIsCredited) {
  auto cluster = SimCluster::Start(AbConfig(100, /*pods_have_embeddings=*/true));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ASSERT_TRUE((*cluster)->AwaitHealthy(2, 5000));
  GatewayClient client((*cluster)->gateway().port());

  // 100% ANN bucket, but the client's explicit engine wins.
  HttpResponse forced = client.Get(
      "/v1/recommend?session_id=override&item_id=3&engine=vmis");
  ASSERT_EQ(forced.status, 200);
  EXPECT_EQ(forced.Header(kEngineHeader), "vmis");

  // Engagement: click an item the gateway just recommended to the same
  // session; the tracker must credit the ANN arm that produced it.
  HttpResponse first = client.Get("/v1/recommend?session_id=eng&item_id=5");
  ASSERT_EQ(first.status, 200);
  EXPECT_EQ(first.Header(kEngineHeader), "ann");
  auto doc = ParseJson(first.body);
  ASSERT_TRUE(doc.ok());
  const JsonValue* items = doc->Find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_FALSE(items->AsArray().empty()) << first.body;
  const int64_t shown = items->AsArray()[0].AsInt();

  const AbCounters before = (*cluster)->gateway().ab_counters();
  HttpResponse second = client.Get("/v1/recommend?session_id=eng&item_id=" +
                                   std::to_string(shown));
  ASSERT_EQ(second.status, 200);
  const AbCounters after = (*cluster)->gateway().ab_counters();
  EXPECT_EQ(after.engagements[1], before.engagements[1] + 1)
      << "the click landed on a shown item; the ANN arm gets the credit";
}

TEST(AbRoutingTest, BatchSlotsAreStampedAndCountedPerArm) {
  auto cluster = SimCluster::Start(AbConfig(50, /*pods_have_embeddings=*/true));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ASSERT_TRUE((*cluster)->AwaitHealthy(2, 5000));
  GatewayClient client((*cluster)->gateway().port());

  std::string body = "{\"requests\":[";
  size_t expected_arm_counts[2] = {0, 0};
  const size_t kSlots = 12;
  for (size_t i = 0; i < kSlots; ++i) {
    const std::string key = "batch-" + std::to_string(i);
    if (i > 0) body += ',';
    body += "{\"session_id\":\"" + key + "\",\"item_id\":" +
            std::to_string(1 + i % 30) + "}";
    const bool ann =
        std::string((*cluster)->gateway().AbArmOf(key)) == "ann";
    ++expected_arm_counts[ann ? 1 : 0];
  }
  body += "]}";

  HttpResponse response = client.Post("/v1/recommend:batch", body);
  ASSERT_EQ(response.status, 200) << response.body;
  auto doc = ParseJson(response.body);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->Find("results")->AsArray().size(), kSlots);
  for (const JsonValue& slot : doc->Find("results")->AsArray()) {
    EXPECT_EQ(slot.Find("error"), nullptr) << SerializeJson(slot);
  }

  const AbCounters ab = (*cluster)->gateway().ab_counters();
  EXPECT_EQ(ab.requests[0], expected_arm_counts[0]);
  EXPECT_EQ(ab.requests[1], expected_arm_counts[1]);
}

TEST(AbRoutingTest, DeadAnnArmDegradesToVmisWithoutFailedRequests) {
  // Pods carry no embedding artifact: every session is bucketed ANN, and
  // every request must still be answered — by VMIS, counted as fallback.
  auto cluster =
      SimCluster::Start(AbConfig(100, /*pods_have_embeddings=*/false));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ASSERT_TRUE((*cluster)->AwaitHealthy(2, 5000));
  GatewayClient client((*cluster)->gateway().port());

  const size_t kRequests = 20;
  for (size_t i = 0; i < kRequests; ++i) {
    const std::string key = "dead-" + std::to_string(i);
    HttpResponse response = client.Get("/v1/recommend?session_id=" + key +
                                       "&item_id=" +
                                       std::to_string(1 + i % 30));
    ASSERT_EQ(response.status, 200)
        << "a dead ANN arm must never fail user traffic: " << response.body;
    EXPECT_EQ(response.Header(kEngineHeader), "vmis");
  }

  const AbCounters ab = (*cluster)->gateway().ab_counters();
  const GatewayCounters totals = (*cluster)->gateway().counters();
  EXPECT_EQ(totals.failed, 0u);
  EXPECT_EQ(totals.forwarded_ok, kRequests);
  EXPECT_EQ(ab.requests[1], kRequests) << "assigned arm stays ANN";
  EXPECT_EQ(ab.fallbacks, kRequests)
      << "every ANN-arm request was served by VMIS and must be counted";

  // The pod-side safety valve counted too.
  uint64_t pod_fallbacks = 0;
  for (size_t i = 0; i < (*cluster)->num_pods(); ++i) {
    pod_fallbacks += (*cluster)->pod(i)->service().ann_fallbacks_total();
  }
  EXPECT_EQ(pod_fallbacks, kRequests);
}

}  // namespace
}  // namespace serenade
