// Differential-correctness harness (testing/differential.h): random
// click histories and evolving sessions, one query through six engines
// — VS-kNN, VMIS-kNN, the no-opt VMIS variant, VMIS forced to the
// scalar SIMD level, VMIS over the compressed index's fused decode
// path, and the micro-batched service path — demanding bit-identical
// scores and ranks.
//
// The CI smoke below generates >= 5,000 random sessions under a pinned
// seed with zero tolerated divergence, and the mutation self-check
// proves the oracle can actually fail: a deliberately perturbed engine
// must be caught and reported with its reproducing seed.
#include <gtest/gtest.h>

#include "testing/differential.h"

namespace serenade {
namespace {

// Every fuzz entry point in the repository pins this seed: the CI run is
// a replay, not a lottery. Deeper exploration belongs to
// tools/serenade_fuzz (SERENADE_FUZZ_SECONDS, --seed).
constexpr uint64_t kPinnedSeed = 20260806;

TEST(DifferentialKnnTest, GenerateIsDeterministicPerSeed) {
  DiffSpec spec;
  Rng rng_a(kPinnedSeed), rng_b(kPinnedSeed);
  const DiffCase a = GenerateDiffCase(spec, &rng_a);
  const DiffCase b = GenerateDiffCase(spec, &rng_b);
  ASSERT_EQ(a.train.num_sessions(), b.train.num_sessions());
  for (size_t s = 0; s < a.train.num_sessions(); ++s) {
    EXPECT_EQ(a.train.sessions()[s].items, b.train.sessions()[s].items);
    EXPECT_EQ(a.train.sessions()[s].end_time, b.train.sessions()[s].end_time);
  }
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.knn.m, b.knn.m);
  EXPECT_EQ(a.knn.k, b.knn.k);
}

TEST(DifferentialKnnTest, FuzzSmokeAgreesOverFiveThousandSessions) {
  DiffSpec spec;  // defaults include the batched service path
  DiffFuzzStats stats;
  const auto reproducer = RunDiffFuzz(spec, kPinnedSeed, 64, &stats);
  ASSERT_FALSE(reproducer.has_value()) << *reproducer;
  // The acceptance bar: at least 5,000 random sessions per smoke run.
  EXPECT_GE(stats.sessions, 5000u) << "cases=" << stats.cases;
  EXPECT_EQ(stats.cases, 64u);
  EXPECT_GT(stats.queries, 0u);
}

TEST(DifferentialKnnTest, KernelOnlyFuzzCoversWiderShapes) {
  // Without the service in the loop each case is cheap, so push the
  // generator into larger histories and m values than the smoke run.
  DiffSpec spec;
  spec.include_service = false;
  spec.max_sessions = 400;
  spec.m_max = 80;
  spec.num_queries = 16;
  DiffFuzzStats stats;
  const auto reproducer =
      RunDiffFuzz(spec, kPinnedSeed + 1000, 48, &stats);
  ASSERT_FALSE(reproducer.has_value()) << *reproducer;
  EXPECT_EQ(stats.cases, 48u);
}

TEST(DifferentialKnnTest, PostingLengthEdgesAgreeAcrossEngines) {
  // Deliberately constructed histories whose posting lists sit exactly at
  // the SIMD block boundaries (lengths 0, 1, 7, 8, 9, 16, 17, 33): item j
  // appears in the first length[j] sessions, and the query touches every
  // item, so the intersection loop scans each edge-length list. Swept
  // over m values around the block width so the fill-regime/eviction
  // transition lands mid-block, on the boundary, and far beyond it.
  const size_t lengths[] = {0, 1, 7, 8, 9, 16, 17, 33};
  std::vector<Click> clicks;
  Timestamp now = 1000;
  constexpr size_t kNumSessions = 40;
  for (size_t s = 0; s < kNumSessions; ++s) {
    bool any = false;
    for (size_t j = 0; j < std::size(lengths); ++j) {
      if (s < lengths[j]) {
        clicks.push_back(Click{static_cast<SessionId>(s),
                               static_cast<ItemId>(j), now++});
        any = true;
      }
    }
    if (!any) {
      // Keep session ids dense (FromClicks requires every id present);
      // a filler item beyond the edge items.
      clicks.push_back(Click{static_cast<SessionId>(s),
                             static_cast<ItemId>(std::size(lengths)), now++});
    }
  }

  for (const size_t m : {size_t{1}, size_t{7}, size_t{8}, size_t{9},
                         size_t{33}, size_t{40}}) {
    DiffCase c;
    c.train = Dataset::FromClicks(clicks, /*min_session_length=*/1);
    c.queries.assign(1, EvolvingSession{});
    for (size_t j = 0; j <= std::size(lengths); ++j) {
      c.queries[0].push_back(static_cast<ItemId>(j));
    }
    c.knn.m = m;
    c.knn.k = std::max<size_t>(m / 2, 1);
    c.knn.vs_length_norm = false;
    const auto divergence = CheckDiffCase(c, /*include_service=*/false);
    ASSERT_FALSE(divergence.has_value())
        << "m=" << m << ": " << divergence->engine_a << " vs "
        << divergence->engine_b << "\n" << divergence->detail;
  }
}

TEST(DifferentialKnnTest, MutationSelfCheckIsCaught) {
  // A harness that cannot fail proves nothing. Perturb the no-opt
  // engine's output and demand the oracle notices — on many seeds, so a
  // future comparator bug cannot hide behind one lucky case.
  DiffSpec spec;
  spec.include_service = false;
  for (uint64_t seed = kPinnedSeed; seed < kPinnedSeed + 8; ++seed) {
    Rng rng(seed);
    const DiffCase c = GenerateDiffCase(spec, &rng);
    const auto divergence =
        CheckDiffCase(c, /*include_service=*/false, /*mutate=*/true);
    ASSERT_TRUE(divergence.has_value()) << "seed " << seed;
    EXPECT_EQ(divergence->engine_b, "vmis-knn-no-opt");

    // The report regenerates from its seed: it names both engines and
    // carries the seed, config, and full history.
    const std::string report = FormatReproducer(c, seed, *divergence);
    EXPECT_NE(report.find("seed " + std::to_string(seed)), std::string::npos);
    EXPECT_NE(report.find("vmis-knn-no-opt"), std::string::npos);
    EXPECT_NE(report.find("config:"), std::string::npos);

    // And the unmutated run of the very same case is clean.
    EXPECT_FALSE(CheckDiffCase(c, /*include_service=*/false).has_value())
        << "seed " << seed;
  }
}

TEST(DifferentialKnnTest, ShrinkKeepsOnlyWhatTheFailureNeeds) {
  // Shrinking needs a genuinely failing case; engines agree on purpose,
  // so build one from a divergent *configuration*: the oracle compares a
  // case against itself under CheckDiffCase, but ShrinkDiffCase's
  // contract is only "the returned case still fails". Drive it through
  // the mutate path indirectly: a case whose VS-kNN runs length
  // normalisation diverges from VMIS by construction.
  DiffSpec spec;
  spec.include_service = false;
  Rng rng(kPinnedSeed + 77);
  DiffCase c = GenerateDiffCase(spec, &rng);
  c.knn.vs_length_norm = true;  // reintroduce Algorithm 1's 1/|s| scale
  c.knn.decay = DecayType::kLinear;
  c.knn.match_weight = MatchWeightType::kConstant;
  auto divergence = CheckDiffCase(c, /*include_service=*/false);
  if (!divergence.has_value()) {
    GTEST_SKIP() << "length normalisation happened to be score-neutral here";
  }
  const DiffCase minimal = ShrinkDiffCase(c, /*include_service=*/false);
  // Minimality: still failing, never larger than the original.
  EXPECT_TRUE(CheckDiffCase(minimal, false).has_value());
  EXPECT_LE(minimal.train.num_sessions(), c.train.num_sessions());
  EXPECT_EQ(minimal.queries.size(), 1u);
}

}  // namespace
}  // namespace serenade
