// The ANN-vs-exact differential oracle (testing/ann_oracle.h) holding the
// recall@20 >= 0.95 gate under a pinned seed, plus the harness's own
// honesty checks: the mutation self-check must flag a sabotaged ANN arm,
// a deliberately crippled graph must violate and shrink to a smaller
// still-failing reproducer, and the fuzz driver must replay
// deterministically from (spec, seed).
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "testing/ann_oracle.h"

namespace serenade {
namespace {

constexpr uint64_t kPinnedSeed = 20260806;

TEST(AnnOracleTest, PinnedSeedSweepHoldsTheRecallGate) {
  AnnOracleSpec spec;  // recall@20 >= 0.95 with default HNSW parameters
  AnnFuzzStats stats;
  const std::optional<std::string> violation =
      RunAnnFuzz(spec, kPinnedSeed, /*num_cases=*/25, &stats);
  EXPECT_FALSE(violation.has_value()) << *violation;
  EXPECT_EQ(stats.cases, 25u);
  EXPECT_GT(stats.queries, 0u);
  EXPECT_GT(stats.items, 0u);
}

TEST(AnnOracleTest, MutationSelfCheckProvesTheHarnessCanFail) {
  // A recall gate that can never fire would pass silently forever; the
  // sabotaged arm (half the ANN answer discarded) must be flagged.
  AnnOracleSpec spec;
  Rng rng(kPinnedSeed);
  const AnnCase c = GenerateAnnCase(spec, &rng);
  ASSERT_FALSE(CheckAnnCase(c, spec.min_recall).has_value())
      << "the unmutated case must hold, or the self-check proves nothing";
  const auto violation = CheckAnnCase(c, spec.min_recall, /*mutate=*/true);
  ASSERT_TRUE(violation.has_value())
      << "discarding half the ANN results must break the recall gate";
  EXPECT_LT(violation->mean_recall, spec.min_recall);
}

TEST(AnnOracleTest, CrippledGraphViolatesAndShrinks) {
  // ef_search=1 with minimal connectivity cannot hold 0.95 recall on a
  // clustered corpus; the shrunk reproducer must still violate and be no
  // larger than the original.
  AnnOracleSpec spec;
  spec.hnsw.M = 2;
  spec.hnsw.ef_construction = 4;
  spec.hnsw.ef_search = 1;

  std::optional<AnnViolation> violation;
  AnnCase failing;
  for (uint64_t seed = kPinnedSeed; seed < kPinnedSeed + 16; ++seed) {
    Rng rng(seed);
    AnnCase c = GenerateAnnCase(spec, &rng);
    violation = CheckAnnCase(c, spec.min_recall);
    if (violation.has_value()) {
      failing = c;
      break;
    }
  }
  ASSERT_TRUE(violation.has_value())
      << "a crippled graph held 0.95 recall across 16 seeds — the gate "
         "is not actually measuring the approximate arm";

  const AnnCase shrunk = ShrinkAnnCase(failing, spec.min_recall);
  EXPECT_TRUE(CheckAnnCase(shrunk, spec.min_recall).has_value())
      << "shrinking must preserve the violation";
  EXPECT_LE(shrunk.queries.size(), failing.queries.size());
  EXPECT_LE(shrunk.embeddings.num_items, failing.embeddings.num_items);

  const std::string report =
      FormatAnnReproducer(shrunk, kPinnedSeed,
                          *CheckAnnCase(shrunk, spec.min_recall));
  EXPECT_NE(report.find("seed="), std::string::npos);
  EXPECT_NE(report.find("mean_recall="), std::string::npos);
}

TEST(AnnOracleTest, GenerationIsDeterministicPerSeed) {
  AnnOracleSpec spec;
  Rng rng_a(kPinnedSeed);
  Rng rng_b(kPinnedSeed);
  const AnnCase a = GenerateAnnCase(spec, &rng_a);
  const AnnCase b = GenerateAnnCase(spec, &rng_b);
  EXPECT_TRUE(a.embeddings == b.embeddings);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.hnsw.seed, b.hnsw.seed);

  Rng rng_c(kPinnedSeed + 1);
  const AnnCase c = GenerateAnnCase(spec, &rng_c);
  EXPECT_FALSE(a.embeddings == c.embeddings);
}

}  // namespace
}  // namespace serenade
