#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/item_knn.h"
#include "baselines/popularity.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace serenade {
namespace {

Dataset ToyDataset() {
  // Item 1 appears in 3 sessions, item 2 in 2, items 3/4 once each.
  std::vector<Click> clicks = {
      {1, 1, 10}, {1, 2, 20},
      {2, 1, 30}, {2, 2, 40},
      {3, 1, 50}, {3, 3, 60}, {3, 4, 70},
  };
  return Dataset::FromClicks(clicks);
}

TEST(PopularityTest, RanksByFrequency) {
  PopularityRecommender model(ToyDataset());
  const auto recs = model.RecommendNext({99}, 2);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 1u);
  EXPECT_EQ(recs[1].item, 2u);
}

TEST(PopularityTest, TiesBrokenByItemId) {
  PopularityRecommender model(ToyDataset());
  const auto recs = model.RecommendNext({}, 4);
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[2].item, 3u);  // 3 and 4 tie at count 1
  EXPECT_EQ(recs[3].item, 4u);
}

TEST(MarkovTest, UsesTransitionCounts) {
  // 1 -> 2 twice, 1 -> 3 once.
  std::vector<Click> clicks = {
      {1, 1, 10}, {1, 2, 20},
      {2, 1, 30}, {2, 2, 40},
      {3, 1, 50}, {3, 3, 60},
  };
  MarkovRecommender model(Dataset::FromClicks(clicks));
  const auto recs = model.RecommendNext({1}, 2);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 2u);
  EXPECT_EQ(recs[1].item, 3u);
}

TEST(MarkovTest, FallsBackToPopularityForUnknownItem) {
  MarkovRecommender model(ToyDataset());
  const auto recs = model.RecommendNext({999}, 1);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].item, 1u);  // most popular
}

TEST(MarkovTest, EmptySession) {
  MarkovRecommender model(ToyDataset());
  EXPECT_TRUE(model.RecommendNext({}, 5).empty());
}

TEST(ItemKnnTest, CosineSimilarityHandComputed) {
  // Sessions: {1,2}, {1,2}, {1,3}. freq(1)=3, freq(2)=2, freq(3)=1.
  // cooc(1,2)=2 -> sim = 2/sqrt(6); cooc(1,3)=1 -> sim = 1/sqrt(3).
  std::vector<Click> clicks = {
      {1, 1, 10}, {1, 2, 20},
      {2, 1, 30}, {2, 2, 40},
      {3, 1, 50}, {3, 3, 60},
  };
  ItemKnnRecommender model(Dataset::FromClicks(clicks), ItemKnnConfig{});
  const auto& similar = model.SimilarItems(1);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0].item, 2u);
  EXPECT_NEAR(similar[0].score, 2.0 / std::sqrt(6.0), 1e-5);
  EXPECT_EQ(similar[1].item, 3u);
  EXPECT_NEAR(similar[1].score, 1.0 / std::sqrt(3.0), 1e-5);
}

TEST(ItemKnnTest, SymmetricSimilarity) {
  std::vector<Click> clicks = {
      {1, 1, 10}, {1, 2, 20},
      {2, 1, 30}, {2, 2, 40},
  };
  ItemKnnRecommender model(Dataset::FromClicks(clicks), ItemKnnConfig{});
  ASSERT_FALSE(model.SimilarItems(1).empty());
  ASSERT_FALSE(model.SimilarItems(2).empty());
  EXPECT_FLOAT_EQ(model.SimilarItems(1)[0].score,
                  model.SimilarItems(2)[0].score);
}

TEST(ItemKnnTest, RecommendsFromLastItem) {
  std::vector<Click> clicks = {
      {1, 1, 10}, {1, 2, 20},
      {2, 3, 30}, {2, 4, 40},
  };
  ItemKnnRecommender model(Dataset::FromClicks(clicks), ItemKnnConfig{});
  const auto recs = model.RecommendNext({2, 3}, 5);  // last item 3
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].item, 4u);  // co-occurs with 3, not with 2
}

TEST(ItemKnnTest, NeighborListCapRespected) {
  SyntheticConfig config;
  config.seed = 10;
  config.num_items = 100;
  config.num_sessions = 2000;
  config.num_days = 3;
  ItemKnnConfig knn_config;
  knn_config.neighbors_per_item = 7;
  ItemKnnRecommender model(GenerateDataset(config), knn_config);
  for (ItemId item = 0; item < 100; ++item) {
    EXPECT_LE(model.SimilarItems(item).size(), 7u);
  }
}

TEST(ItemKnnTest, EmptySessionAndUnknownItem) {
  ItemKnnRecommender model(ToyDataset(), ItemKnnConfig{});
  EXPECT_TRUE(model.RecommendNext({}, 5).empty());
  EXPECT_TRUE(model.RecommendNext({12345}, 5).empty());
}

// On clustered synthetic data, every structure-aware baseline must beat
// popularity on MRR@20 — the signal-exists sanity check behind the
// prediction-quality experiment.
TEST(BaselineQualityTest, StructuredBaselinesBeatPopularity) {
  SyntheticConfig config;
  config.seed = 404;
  config.num_items = 500;
  config.num_sessions = 6000;
  config.num_days = 8;
  config.cluster_size = 25;
  Dataset dataset = GenerateDataset(config);
  TrainTestSplit split = SplitLastDays(dataset, 1);
  ASSERT_GT(split.test.num_sessions(), 50u);

  EvalOptions options;
  options.max_sessions = 300;

  PopularityRecommender popularity(split.train);
  MarkovRecommender markov(split.train);
  ItemKnnRecommender item_knn(split.train, ItemKnnConfig{});

  const double popularity_mrr =
      EvaluateRecommender(popularity, split.test, options).metrics.Mrr();
  const double markov_mrr =
      EvaluateRecommender(markov, split.test, options).metrics.Mrr();
  const double item_knn_mrr =
      EvaluateRecommender(item_knn, split.test, options).metrics.Mrr();

  EXPECT_GT(markov_mrr, popularity_mrr);
  EXPECT_GT(item_knn_mrr, popularity_mrr);
}

}  // namespace
}  // namespace serenade
