#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace serenade {
namespace {

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(pool, touched.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(pool, 0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallCountFewerChunksThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  ParallelFor(pool, 3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

}  // namespace
}  // namespace serenade
