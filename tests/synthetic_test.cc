#include "data/synthetic.h"

#include <algorithm>
#include <unordered_map>

#include <gtest/gtest.h>

#include "data/stats.h"

namespace serenade {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig config;
  config.seed = 7;
  config.num_items = 2000;
  config.num_sessions = 8000;
  config.num_days = 10;
  config.cluster_size = 50;
  return config;
}

TEST(SyntheticTest, Deterministic) {
  const auto a = GenerateClicks(SmallConfig());
  const auto b = GenerateClicks(SmallConfig());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig other = SmallConfig();
  other.seed = 8;
  const auto a = GenerateClicks(SmallConfig());
  const auto b = GenerateClicks(other);
  EXPECT_FALSE(a.size() == b.size() &&
               std::equal(a.begin(), a.end(), b.begin()));
}

TEST(SyntheticTest, RespectsConfiguredCounts) {
  const auto clicks = GenerateClicks(SmallConfig());
  Dataset dataset = Dataset::FromClicks(clicks, 1);
  EXPECT_EQ(dataset.num_sessions(), 8000u);
  for (const Click& click : clicks) {
    EXPECT_LT(click.item_id, 2000u);
  }
}

TEST(SyntheticTest, SessionLengthPercentilesMatchProprietaryProfile) {
  SyntheticConfig config = SmallConfig();
  config.num_sessions = 50000;
  const DatasetStats stats =
      ComputeStats("test", Dataset::FromClicks(GenerateClicks(config), 1));
  // Table 1 proprietary profile: p25=2, p50=4, p75=6-7, p99~28-39.
  EXPECT_EQ(stats.p25, 2u);
  EXPECT_GE(stats.p50, 3u);
  EXPECT_LE(stats.p50, 4u);
  EXPECT_GE(stats.p75, 5u);
  EXPECT_LE(stats.p75, 8u);
  EXPECT_GE(stats.p99, 25u);
  EXPECT_LE(stats.p99, 50u);
}

TEST(SyntheticTest, PublicProfileHasShorterTail) {
  DatasetProfile profile = RetailRocketProfile(1.0);
  profile.config.num_sessions = 50000;
  const DatasetStats stats = ComputeStats(
      "rr", Dataset::FromClicks(GenerateClicks(profile.config), 1));
  EXPECT_LE(stats.p50, 3u);
  EXPECT_LE(stats.p75, 5u);
  EXPECT_GE(stats.p99, 14u);
  EXPECT_LE(stats.p99, 26u);
}

TEST(SyntheticTest, TimestampsSpanConfiguredDays) {
  const auto clicks = GenerateClicks(SmallConfig());
  Timestamp min_ts = ~Timestamp{0}, max_ts = 0;
  for (const Click& click : clicks) {
    min_ts = std::min(min_ts, click.timestamp);
    max_ts = std::max(max_ts, click.timestamp);
  }
  const uint64_t span_days = (max_ts - min_ts) / 86400 + 1;
  EXPECT_GE(span_days, 8u);
  EXPECT_LE(span_days, 11u);
}

TEST(SyntheticTest, PopularityIsSkewed) {
  const auto clicks = GenerateClicks(SmallConfig());
  std::unordered_map<ItemId, size_t> counts;
  for (const Click& click : clicks) ++counts[click.item_id];
  std::vector<size_t> sorted;
  sorted.reserve(counts.size());
  for (const auto& [item, count] : counts) sorted.push_back(count);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  // Top 1% of items should attract far more than 1% of clicks.
  const size_t top = sorted.size() / 100 + 1;
  size_t top_clicks = 0;
  for (size_t i = 0; i < top; ++i) top_clicks += sorted[i];
  EXPECT_GT(static_cast<double>(top_clicks) / clicks.size(), 0.05);
}

TEST(SyntheticTest, ClusterStructureCreatesCoVisitationSignal) {
  // Sessions sharing one item should be far more likely to share a second
  // item than random pairs — the property kNN exploits.
  SyntheticConfig config = SmallConfig();
  config.num_sessions = 4000;
  Dataset dataset = GenerateDataset(config);

  std::unordered_map<ItemId, std::vector<SessionId>> postings;
  for (const SessionData& session : dataset.sessions()) {
    std::vector<ItemId> distinct = session.items;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (ItemId item : distinct) postings[item].push_back(session.id);
  }

  size_t sharing_pairs = 0, overlap_two = 0;
  for (const auto& [item, sessions] : postings) {
    if (sessions.size() < 2) continue;
    for (size_t i = 0; i + 1 < std::min<size_t>(sessions.size(), 10); ++i) {
      const auto& a = dataset.sessions()[sessions[i]].items;
      const auto& b = dataset.sessions()[sessions[i + 1]].items;
      ++sharing_pairs;
      size_t shared = 0;
      for (ItemId x : a) {
        if (std::find(b.begin(), b.end(), x) != b.end()) ++shared;
        if (shared >= 2) break;
      }
      if (shared >= 2) ++overlap_two;
    }
  }
  ASSERT_GT(sharing_pairs, 100u);
  EXPECT_GT(static_cast<double>(overlap_two) / sharing_pairs, 0.10);
}

TEST(CatalogTest, FlagsApproximatelyConfiguredFractions) {
  const ItemCatalog catalog = GenerateCatalog(100000, 3, 0.02, 0.01);
  size_t unavailable = 0, adult = 0;
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    if (!catalog.available[i]) ++unavailable;
    if (catalog.adult[i]) ++adult;
  }
  EXPECT_NEAR(static_cast<double>(unavailable) / 100000, 0.02, 0.005);
  EXPECT_NEAR(static_cast<double>(adult) / 100000, 0.01, 0.005);
}

TEST(CatalogTest, Deterministic) {
  const ItemCatalog a = GenerateCatalog(1000, 5);
  const ItemCatalog b = GenerateCatalog(1000, 5);
  EXPECT_EQ(a.available, b.available);
  EXPECT_EQ(a.adult, b.adult);
}

TEST(StatsTest, TableFormatting) {
  Dataset dataset = GenerateDataset(SmallConfig());
  const DatasetStats stats = ComputeStats("small", dataset);
  const std::string table = FormatStatsTable({stats});
  EXPECT_NE(table.find("small"), std::string::npos);
  EXPECT_NE(table.find("clicks"), std::string::npos);
}

TEST(StatsTest, CountsDistinctItemsNotVocabulary) {
  // Items 5 and 7 only -> 2 distinct items even though max id is 7.
  std::vector<Click> clicks = {{1, 5, 10}, {1, 7, 20}, {2, 5, 30}, {2, 7, 40}};
  const DatasetStats stats =
      ComputeStats("toy", Dataset::FromClicks(clicks));
  EXPECT_EQ(stats.items, 2u);
}

}  // namespace
}  // namespace serenade
