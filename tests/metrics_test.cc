#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/grid_search.h"

namespace serenade {
namespace {

std::vector<ScoredItem> Recs(std::initializer_list<ItemId> items) {
  std::vector<ScoredItem> result;
  float score = static_cast<float>(items.size());
  for (ItemId item : items) result.push_back({item, score--});
  return result;
}

TEST(MetricsTest, MrrUsesRankOfNextItem) {
  MetricsAccumulator acc;
  acc.Add(Recs({7, 8, 9}), /*next_item=*/9, /*remainder=*/{9});
  EXPECT_DOUBLE_EQ(acc.Mrr(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(acc.HitRate(), 1.0);
}

TEST(MetricsTest, MissedNextItemScoresZero) {
  MetricsAccumulator acc;
  acc.Add(Recs({7, 8, 9}), 4, {4});
  EXPECT_DOUBLE_EQ(acc.Mrr(), 0.0);
  EXPECT_DOUBLE_EQ(acc.HitRate(), 0.0);
}

TEST(MetricsTest, PrecisionAndRecall) {
  MetricsAccumulator acc;
  // 4 recommendations, remainder {8, 9, 50}: hits = {8, 9} -> P = 2/4,
  // R = 2/3.
  acc.Add(Recs({7, 8, 9, 10}), 8, {8, 9, 50});
  EXPECT_DOUBLE_EQ(acc.Precision(), 0.5);
  EXPECT_NEAR(acc.Recall(), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, MapHandComputed) {
  MetricsAccumulator acc;
  // Hits at ranks 2 and 4 of 4; |relevant| = 3.
  // AP = (1/2 + 2/4) / min(3, 4) = 1/3.
  acc.Add(Recs({7, 8, 9, 10}), 8, {8, 10, 50});
  EXPECT_NEAR(acc.Map(), 1.0 / 3.0, 1e-12);
}

TEST(MetricsTest, AveragesOverEvents) {
  MetricsAccumulator acc;
  acc.Add(Recs({1}), 1, {1});  // MRR 1
  acc.Add(Recs({2}), 3, {3});  // MRR 0
  EXPECT_DOUBLE_EQ(acc.Mrr(), 0.5);
  EXPECT_EQ(acc.num_events(), 2u);
}

TEST(MetricsTest, MergeEqualsCombined) {
  MetricsAccumulator a, b, combined;
  a.Add(Recs({1, 2}), 2, {2, 3});
  b.Add(Recs({5, 6}), 5, {5});
  combined.Add(Recs({1, 2}), 2, {2, 3});
  combined.Add(Recs({5, 6}), 5, {5});
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Mrr(), combined.Mrr());
  EXPECT_DOUBLE_EQ(a.Precision(), combined.Precision());
  EXPECT_EQ(a.num_events(), combined.num_events());
}

TEST(MetricsTest, DuplicateRemainderCountsOnce) {
  MetricsAccumulator acc;
  // remainder has item 8 twice -> relevant set {8}; recall denominator 1.
  acc.Add(Recs({8, 9}), 8, {8, 8});
  EXPECT_DOUBLE_EQ(acc.Recall(), 1.0);
}

TEST(MetricsTest, EmptyRecommendationsCountAsEvent) {
  MetricsAccumulator acc;
  acc.Add({}, 1, {1});
  EXPECT_EQ(acc.num_events(), 1u);
  EXPECT_DOUBLE_EQ(acc.Mrr(), 0.0);
}

TEST(MetricsTest, SummaryMentionsCutoff) {
  MetricsAccumulator acc;
  acc.Add(Recs({1}), 1, {1});
  EXPECT_NE(acc.Summary(20).find("MRR@20"), std::string::npos);
}

// --- Evaluator integration --------------------------------------------------

// A recommender that always predicts the fixed list it was given.
class FixedRecommender : public Recommender {
 public:
  explicit FixedRecommender(std::vector<ScoredItem> recs)
      : recs_(std::move(recs)) {}
  std::vector<ScoredItem> RecommendNext(const EvolvingSession&,
                                        size_t how_many) override {
    std::vector<ScoredItem> out = recs_;
    if (out.size() > how_many) out.resize(how_many);
    return out;
  }
  std::string Name() const override { return "fixed"; }

 private:
  std::vector<ScoredItem> recs_;
};

TEST(EvaluatorTest, CountsOneEventPerNonFinalClick) {
  // Sessions of length 3 and 2 -> 2 + 1 = 3 prediction events.
  std::vector<Click> clicks = {
      {1, 10, 100}, {1, 11, 200}, {1, 12, 300},
      {2, 10, 400}, {2, 11, 500},
  };
  Dataset test = Dataset::FromClicks(clicks);
  FixedRecommender model(Recs({10, 11, 12}));
  EvalOptions options;
  const EvalResult result = EvaluateRecommender(model, test, options);
  EXPECT_EQ(result.metrics.num_events(), 3u);
  EXPECT_GT(result.metrics.Mrr(), 0.0);
}

TEST(EvaluatorTest, MaxSessionsLimits) {
  std::vector<Click> clicks;
  for (SessionId s = 0; s < 10; ++s) {
    clicks.push_back({s, 1, 100 * s + 1});
    clicks.push_back({s, 2, 100 * s + 2});
  }
  Dataset test = Dataset::FromClicks(clicks);
  FixedRecommender model(Recs({1, 2}));
  EvalOptions options;
  options.max_sessions = 4;
  const EvalResult result = EvaluateRecommender(model, test, options);
  EXPECT_EQ(result.metrics.num_events(), 4u);  // one event per 2-click session
}

TEST(EvaluatorTest, RecordsLatencyWhenAsked) {
  std::vector<Click> clicks = {{1, 10, 100}, {1, 11, 200}};
  Dataset test = Dataset::FromClicks(clicks);
  FixedRecommender model(Recs({10}));
  EvalOptions options;
  options.record_latency = true;
  const EvalResult result = EvaluateRecommender(model, test, options);
  EXPECT_EQ(result.latency_micros.count(), 1u);
}

TEST(EvaluatorTest, PerfectRecommenderOnDeterministicData) {
  // Sessions alternate 1 -> 2 -> 1 -> 2; predicting the alternation gives
  // MRR 1.
  std::vector<Click> clicks;
  for (SessionId s = 0; s < 5; ++s) {
    clicks.push_back({s, 1, 1000 * s + 1});
    clicks.push_back({s, 2, 1000 * s + 2});
  }
  Dataset test = Dataset::FromClicks(clicks);

  class Alternator : public Recommender {
   public:
    std::vector<ScoredItem> RecommendNext(const EvolvingSession& session,
                                          size_t) override {
      return {{session.back() == 1 ? ItemId{2} : ItemId{1}, 1.0f}};
    }
    std::string Name() const override { return "alternator"; }
  } model;

  const EvalResult result =
      EvaluateRecommender(model, test, EvalOptions{});
  EXPECT_DOUBLE_EQ(result.metrics.Mrr(), 1.0);
  EXPECT_DOUBLE_EQ(result.metrics.HitRate(), 1.0);
}

TEST(EvaluatorTest, PerDayBreakdownPartitionsEvents) {
  // Two sessions on day 0, one on day 2.
  std::vector<Click> clicks = {
      {1, 10, 100},          {1, 11, 200},
      {2, 10, 5000},         {2, 11, 5100},
      {3, 10, 100 + 200000}, {3, 11, 200 + 200000},
  };
  Dataset test = Dataset::FromClicks(clicks);
  FixedRecommender model(Recs({10, 11}));
  const auto days = EvaluateRecommenderPerDay(model, test, EvalOptions{});
  ASSERT_EQ(days.size(), 2u);
  EXPECT_EQ(days[0].day_index, 0u);
  EXPECT_EQ(days[0].num_sessions, 2u);
  EXPECT_EQ(days[0].metrics.num_events(), 2u);
  EXPECT_EQ(days[1].day_index, 2u);
  EXPECT_EQ(days[1].num_sessions, 1u);

  // Per-day metrics merge back to the aggregate evaluation.
  MetricsAccumulator merged;
  for (const auto& day : days) merged.Merge(day.metrics);
  const EvalResult total = EvaluateRecommender(model, test, EvalOptions{});
  EXPECT_EQ(merged.num_events(), total.metrics.num_events());
  EXPECT_DOUBLE_EQ(merged.Mrr(), total.metrics.Mrr());
}

TEST(EvaluatorTest, PerDayEmptyDataset) {
  FixedRecommender model(Recs({1}));
  EXPECT_TRUE(EvaluateRecommenderPerDay(model, Dataset(), EvalOptions{})
                  .empty());
}

// --- Grid search smoke test -------------------------------------------------

TEST(GridSearchTest, ProducesAllCellsAndFindsSignal) {
  SyntheticConfig config;
  config.seed = 808;
  config.num_items = 300;
  config.num_sessions = 4000;
  config.num_days = 6;
  Dataset dataset = GenerateDataset(config);
  TrainTestSplit split = SplitLastDays(dataset, 1);
  ASSERT_GT(split.test.num_sessions(), 20u);

  GridSearchOptions options;
  options.k_values = {10, 50};
  options.m_values = {50, 250};
  options.max_test_sessions = 150;
  options.num_threads = 2;
  const auto cells = GridSearch(split.train, split.test, options);
  ASSERT_EQ(cells.size(), 4u);
  for (const GridCell& cell : cells) {
    EXPECT_GT(cell.mrr, 0.0) << "k=" << cell.k << " m=" << cell.m;
    EXPECT_LE(cell.mrr, 1.0);
  }
  const std::string table = FormatGrid(cells, "mrr");
  EXPECT_NE(table.find("k \\ m"), std::string::npos);
}

}  // namespace
}  // namespace serenade
