#include "core/session_index.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace serenade {
namespace {

// Sessions (by end time): s0={1,2,4} ends t=30, s1={2,4} ends t=50,
// s2={2,3} ends t=70.
Dataset ToyDataset() {
  std::vector<Click> clicks = {
      {100, 1, 10}, {100, 2, 20}, {100, 4, 30},
      {200, 2, 40}, {200, 4, 50},
      {300, 2, 60}, {300, 3, 70},
  };
  return Dataset::FromClicks(clicks);
}

TEST(SessionIndexTest, PostingsAreMostRecentFirst) {
  SessionIndex index = SessionIndex::Build(ToyDataset(), 10);
  const auto postings = index.SessionsForItem(2);
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[0], 2u);  // ends at 70
  EXPECT_EQ(postings[1], 1u);  // ends at 50
  EXPECT_EQ(postings[2], 0u);  // ends at 30
}

TEST(SessionIndexTest, PostingsTruncatedToM) {
  SessionIndex index = SessionIndex::Build(ToyDataset(), 2);
  const auto postings = index.SessionsForItem(2);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0], 2u);
  EXPECT_EQ(postings[1], 1u);
}

TEST(SessionIndexTest, TimestampsAndItems) {
  SessionIndex index = SessionIndex::Build(ToyDataset(), 10);
  EXPECT_EQ(index.SessionTimestamp(0), 30u);
  EXPECT_EQ(index.SessionTimestamp(1), 50u);
  EXPECT_EQ(index.SessionTimestamp(2), 70u);
  const auto items = index.ItemsForSession(0);
  EXPECT_EQ(std::vector<ItemId>(items.begin(), items.end()),
            (std::vector<ItemId>{1, 2, 4}));
}

TEST(SessionIndexTest, UnknownItemHasEmptyPostings) {
  SessionIndex index = SessionIndex::Build(ToyDataset(), 10);
  EXPECT_TRUE(index.SessionsForItem(999).empty());
  EXPECT_TRUE(index.SessionsForItem(0).empty());  // item 0 never clicked
}

TEST(SessionIndexTest, IdfUsesFullFrequency) {
  // Even with m=1 (postings truncated), IDF must count all 3 sessions
  // containing item 2.
  SessionIndex index = SessionIndex::Build(ToyDataset(), 1);
  EXPECT_NEAR(index.Idf(2), std::log(3.0 / 3.0), 1e-6);
  EXPECT_NEAR(index.Idf(4), std::log(3.0 / 2.0), 1e-6);
  EXPECT_NEAR(index.Idf(1), std::log(3.0 / 1.0), 1e-6);
}

TEST(SessionIndexTest, DuplicateClicksCountOnce) {
  std::vector<Click> clicks = {
      {1, 5, 10}, {1, 5, 20}, {1, 6, 30},  // item 5 twice in one session
      {2, 5, 40}, {2, 6, 50},
  };
  SessionIndex index = SessionIndex::Build(Dataset::FromClicks(clicks), 10);
  EXPECT_EQ(index.SessionsForItem(5).size(), 2u);
  const auto items = index.ItemsForSession(0);
  EXPECT_EQ(items.size(), 2u);  // distinct items only
  EXPECT_NEAR(index.Idf(5), std::log(2.0 / 2.0), 1e-6);
}

TEST(SessionIndexTest, SpaceIsBoundedByItemsTimesM) {
  SyntheticConfig config;
  config.seed = 9;
  config.num_items = 500;
  config.num_sessions = 5000;
  config.num_days = 5;
  Dataset dataset = GenerateDataset(config);
  for (size_t m : {5u, 20u}) {
    SessionIndex index = SessionIndex::Build(dataset, m);
    EXPECT_LE(index.num_postings(), dataset.num_items() * m);
    for (ItemId item = 0; item < dataset.num_items(); ++item) {
      EXPECT_LE(index.SessionsForItem(item).size(), m);
    }
  }
}

TEST(SessionIndexTest, RawRoundTrip) {
  SessionIndex index = SessionIndex::Build(ToyDataset(), 10);
  SessionIndex copy = SessionIndex::FromRaw(index.ToRaw());
  EXPECT_EQ(copy.num_sessions(), index.num_sessions());
  EXPECT_EQ(copy.num_items(), index.num_items());
  EXPECT_EQ(copy.num_postings(), index.num_postings());
  for (ItemId item = 0; item < index.num_items(); ++item) {
    const auto a = index.SessionsForItem(item);
    const auto b = copy.SessionsForItem(item);
    EXPECT_EQ(std::vector<SessionId>(a.begin(), a.end()),
              std::vector<SessionId>(b.begin(), b.end()));
  }
}

TEST(SessionIndexTest, MemoryBytesNonZero) {
  SessionIndex index = SessionIndex::Build(ToyDataset(), 10);
  EXPECT_GT(index.MemoryBytes(), 0u);
}

// Property sweep: for random datasets and several m values, every posting
// list is sorted by strictly non-increasing timestamp and contains
// exactly the most recent sessions for the item.
class SessionIndexPropertyTest : public testing::TestWithParam<size_t> {};

TEST_P(SessionIndexPropertyTest, PostingsAreExactlyMostRecent) {
  const size_t m = GetParam();
  SyntheticConfig config;
  config.seed = 31;
  config.num_items = 300;
  config.num_sessions = 2000;
  config.num_days = 7;
  Dataset dataset = GenerateDataset(config);
  SessionIndex index = SessionIndex::Build(dataset, m);

  // Reference: all sessions per item, most recent first.
  std::vector<std::vector<SessionId>> reference(dataset.num_items());
  for (size_t s = dataset.num_sessions(); s-- > 0;) {
    std::vector<ItemId> distinct = dataset.sessions()[s].items;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (ItemId item : distinct) {
      reference[item].push_back(static_cast<SessionId>(s));
    }
  }
  for (ItemId item = 0; item < dataset.num_items(); ++item) {
    auto expected = reference[item];
    if (expected.size() > m) expected.resize(m);
    const auto actual_span = index.SessionsForItem(item);
    const std::vector<SessionId> actual(actual_span.begin(),
                                        actual_span.end());
    ASSERT_EQ(actual, expected) << "item " << item << " m=" << m;
    for (size_t i = 1; i < actual.size(); ++i) {
      EXPECT_GE(index.SessionTimestamp(actual[i - 1]),
                index.SessionTimestamp(actual[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VariousM, SessionIndexPropertyTest,
                         testing::Values(1, 3, 10, 100, 10000));

}  // namespace
}  // namespace serenade
