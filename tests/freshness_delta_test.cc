// Delta artifact codec and overlay application (index/index_format.h,
// index/snapshot.h) — the distribution half of the streaming freshness
// pipeline (DESIGN.md §9). Pinned invariants:
//   * delta serialization is deterministic and round-trips losslessly,
//   * any truncation or bit flip is rejected as corruption (section CRCs),
//   * structurally invalid deltas (regressing end times, unsorted items,
//     version <= base) never deserialize,
//   * ApplyDeltaToIndex is byte-identical to a full rebuild over
//     base + delta sessions — the central equivalence the overlay path
//     rests on,
//   * IndexManager::ApplyDelta enforces lineage (base version and CRC),
//     treats re-delivery as idempotent, layers cumulative deltas over the
//     pinned base (not over each other), and never disturbs a pinned
//     reader snapshot,
//   * manifest sidecars round-trip the delta lineage fields and
//     CheckManifestOverwrite refuses version regressions.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/session_index.h"
#include "data/click_log.h"
#include "index/index_format.h"
#include "index/snapshot.h"

namespace serenade {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Six base sessions over items 1..6; item 1 is popular enough that a
// small m truncates its postings list (exercising the merge cap).
std::vector<Click> BaseClicks() {
  return {
      Click{0, 1, 10}, Click{0, 2, 11},                  // end 11
      Click{1, 1, 20}, Click{1, 3, 21},                  // end 21
      Click{2, 1, 30}, Click{2, 4, 31},                  // end 31
      Click{3, 2, 40}, Click{3, 5, 41},                  // end 41
      Click{4, 1, 50}, Click{4, 6, 51},                  // end 51
      Click{5, 3, 60}, Click{5, 5, 61}, Click{5, 6, 62}, // end 62
  };
}

// Three streamed sessions strictly above the base horizon (end 62); the
// last one introduces item 9, growing the vocabulary.
std::vector<DeltaSession> StreamedSessions() {
  return {
      DeltaSession{{1, 2, 5}, /*end_time=*/63, /*observed_unix_ms=*/1063},
      DeltaSession{{1, 4}, /*end_time=*/64, /*observed_unix_ms=*/1064},
      DeltaSession{{2, 6, 9}, /*end_time=*/65, /*observed_unix_ms=*/1065},
  };
}

IndexDelta MakeDelta(std::vector<DeltaSession> sessions,
                     uint64_t base_version = 1, uint32_t base_crc32 = 0,
                     uint64_t delta_version = 2) {
  IndexDelta delta;
  delta.base_version = base_version;
  delta.base_crc32 = base_crc32;
  delta.delta_version = delta_version;
  delta.sessions = std::move(sessions);
  uint64_t watermark = 0;
  for (const DeltaSession& s : delta.sessions) {
    watermark = std::max(watermark, s.observed_unix_ms);
  }
  delta.watermark_unix_ms = watermark;
  return delta;
}

TEST(DeltaCodecTest, RoundTripsLosslesslyAndDeterministically) {
  const IndexDelta delta = MakeDelta(StreamedSessions());
  const std::string bytes = SerializeDelta(delta);
  EXPECT_EQ(bytes, SerializeDelta(delta)) << "serialization must be stable";

  auto decoded = DeserializeDelta(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->base_version, delta.base_version);
  EXPECT_EQ(decoded->base_crc32, delta.base_crc32);
  EXPECT_EQ(decoded->delta_version, delta.delta_version);
  EXPECT_EQ(decoded->watermark_unix_ms, delta.watermark_unix_ms);
  ASSERT_EQ(decoded->sessions.size(), delta.sessions.size());
  for (size_t s = 0; s < delta.sessions.size(); ++s) {
    EXPECT_EQ(decoded->sessions[s].items, delta.sessions[s].items);
    EXPECT_EQ(decoded->sessions[s].end_time, delta.sessions[s].end_time);
    EXPECT_EQ(decoded->sessions[s].observed_unix_ms,
              delta.sessions[s].observed_unix_ms);
  }
  EXPECT_EQ(SerializeDelta(*decoded), bytes);
}

TEST(DeltaCodecTest, EveryTruncationIsRejected) {
  const std::string bytes = SerializeDelta(MakeDelta(StreamedSessions()));
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = DeserializeDelta(bytes.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes accepted";
  }
  // Trailing garbage is corruption too, not silently ignored.
  EXPECT_FALSE(DeserializeDelta(bytes + "x").ok());
}

TEST(DeltaCodecTest, BitFlipsAreCaughtBySectionCrcs) {
  const std::string clean = SerializeDelta(MakeDelta(StreamedSessions()));
  // Flip one bit in every byte past the magic; each flip must either be
  // rejected or (for length/CRC fields) fail structurally — never decode
  // to a *different* accepted delta.
  for (size_t pos = 8; pos < clean.size(); ++pos) {
    std::string bytes = clean;
    bytes[pos] ^= 0x01;
    auto decoded = DeserializeDelta(bytes);
    if (decoded.ok()) {
      EXPECT_EQ(SerializeDelta(*decoded), clean)
          << "flip at byte " << pos << " decoded to a different delta";
    }
  }
}

TEST(DeltaCodecTest, StructurallyInvalidDeltasNeverDeserialize) {
  // Version must exceed the base it layers over.
  EXPECT_FALSE(
      DeserializeDelta(
          SerializeDelta(MakeDelta(StreamedSessions(), 5, 0, /*delta=*/5)))
          .ok());

  // End times may not regress across sessions.
  auto regressing = StreamedSessions();
  regressing[2].end_time = regressing[0].end_time - 1;
  EXPECT_FALSE(
      DeserializeDelta(SerializeDelta(MakeDelta(std::move(regressing)))).ok());

  // Items must be strictly ascending (gap coding doubles as the check).
  auto duplicated = StreamedSessions();
  duplicated[0].items = {3, 3};
  EXPECT_FALSE(
      DeserializeDelta(SerializeDelta(MakeDelta(std::move(duplicated)))).ok());

  // Empty sessions carry no signal and are rejected.
  auto empty = StreamedSessions();
  empty[1].items.clear();
  EXPECT_FALSE(
      DeserializeDelta(SerializeDelta(MakeDelta(std::move(empty)))).ok());
}

TEST(DeltaCodecTest, DeltaFileRoundTrips) {
  const std::string path = TempPath("roundtrip.srndelta");
  const IndexDelta delta = MakeDelta(StreamedSessions());
  ASSERT_TRUE(WriteDeltaFile(path, delta).ok());
  auto read = ReadDeltaFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(SerializeDelta(*read), SerializeDelta(delta));
}

TEST(ApplyDeltaTest, MergedIndexIsByteIdenticalToFullRebuild) {
  // m = 3 forces postings truncation for item 1 (base frequency 4, plus
  // two more delta sessions), so the "delta newest first, base tail
  // truncated" merge order is actually load-bearing here.
  const size_t m = 3;
  const Dataset base_data = Dataset::FromClicks(BaseClicks(), 2);
  const SessionIndex base = SessionIndex::Build(base_data, m);
  ASSERT_TRUE(base.has_frequencies());

  const IndexDelta delta = MakeDelta(StreamedSessions());
  auto merged = ApplyDeltaToIndex(base, delta);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  // The oracle: rebuild from scratch over base clicks + streamed clicks
  // (each streamed session's clicks share its end_time).
  std::vector<Click> all_clicks = BaseClicks();
  SessionId next_session = 100;
  for (const DeltaSession& session : StreamedSessions()) {
    for (ItemId item : session.items) {
      all_clicks.push_back(
          Click{next_session, item, static_cast<Timestamp>(session.end_time)});
    }
    ++next_session;
  }
  const SessionIndex full =
      SessionIndex::Build(Dataset::FromClicks(std::move(all_clicks), 2), m);

  EXPECT_EQ(SerializeIndex(*merged), SerializeIndex(full))
      << "base + overlay must be indistinguishable from a full rebuild";

  // Spot checks readable without decoding bytes.
  EXPECT_EQ(merged->num_sessions(), base.num_sessions() + 3);
  EXPECT_EQ(merged->num_items(), size_t{10});  // item 9 extended the space
  EXPECT_EQ(merged->ItemFrequency(1), base.ItemFrequency(1) + 2);
  EXPECT_EQ(merged->ItemFrequency(9), 1u);
}

TEST(ApplyDeltaTest, RejectsBasesAndSessionsItCannotMergeSafely) {
  const SessionIndex base =
      SessionIndex::Build(Dataset::FromClicks(BaseClicks(), 2), 3);

  // A format-v1 base (no exact frequencies) cannot take overlays.
  SessionIndex::Raw raw = base.ToRaw();
  raw.item_frequencies.clear();
  const SessionIndex v1_base = SessionIndex::FromRaw(std::move(raw));
  ASSERT_FALSE(v1_base.has_frequencies());
  EXPECT_EQ(
      ApplyDeltaToIndex(v1_base, MakeDelta(StreamedSessions())).status().code(),
      StatusCode::kInvalidArgument);

  // Sessions below the base horizon would corrupt recency ordering.
  auto stale = StreamedSessions();
  stale[0].end_time = 5;
  stale[1].end_time = 63;
  stale[2].end_time = 64;
  EXPECT_EQ(ApplyDeltaToIndex(base, MakeDelta(std::move(stale))).status().code(),
            StatusCode::kInvalidArgument);

  // Unsorted items (the codec rejects these too; the merge re-checks for
  // callers that build IndexDelta structs directly).
  auto unsorted = StreamedSessions();
  unsorted[0].items = {5, 2};
  EXPECT_EQ(
      ApplyDeltaToIndex(base, MakeDelta(std::move(unsorted))).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(IndexManagerDeltaTest, LayersCumulativeDeltasOverThePinnedBase) {
  auto index = std::make_shared<const SessionIndex>(
      SessionIndex::Build(Dataset::FromClicks(BaseClicks(), 2), 3));
  auto manager = IndexManager::CreateFromIndex(index, /*version=*/1);
  const auto pinned_base = manager->Current();  // a reader mid-request

  // Delta v2: first two streamed sessions.
  auto streamed = StreamedSessions();
  IndexDelta v2 = MakeDelta({streamed[0], streamed[1]});
  IndexManager::DeltaApplyInfo info;
  ASSERT_TRUE(manager->ApplyDelta(v2, &info).ok());
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.sessions_applied, 2u);
  ASSERT_EQ(info.observed_unix_ms.size(), 2u);
  EXPECT_EQ(info.observed_unix_ms[0], 1063u);
  EXPECT_EQ(manager->current_version(), 2u);
  EXPECT_EQ(manager->applied_delta_version(), 2u);
  EXPECT_EQ(manager->base_version(), 1u);
  EXPECT_EQ(manager->deltas_applied_total(), 1u);
  EXPECT_EQ(manager->freshness_watermark_unix_ms(), 1064u);
  EXPECT_EQ(manager->Current()->manifest().kind, "delta");
  EXPECT_EQ(manager->Current()->manifest().base_version, 1u);

  // Idempotent re-delivery: same version again is covered, not a reject.
  EXPECT_EQ(manager->ApplyDelta(v2).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(manager->delta_rejects_total(), 0u);

  // Delta v3 is cumulative (all three sessions) and must merge over the
  // *base*, not over the v2 overlay: total sessions = base + 3, not + 5.
  IndexDelta v3 = MakeDelta(StreamedSessions(), 1, 0, /*delta_version=*/3);
  ASSERT_TRUE(manager->ApplyDelta(v3, &info).ok());
  EXPECT_EQ(info.sessions_applied, 1u)  // only the genuinely new session
      << "cumulative re-delivery must not re-count covered sessions";
  ASSERT_EQ(info.observed_unix_ms.size(), 1u);
  EXPECT_EQ(info.observed_unix_ms[0], 1065u);
  EXPECT_EQ(manager->Current()->index().num_sessions(),
            index->num_sessions() + 3);
  EXPECT_EQ(manager->freshness_watermark_unix_ms(), 1065u);

  // The reader's pinned snapshot never moved under it.
  EXPECT_EQ(pinned_base->version(), 1u);
  EXPECT_EQ(pinned_base->index().num_sessions(), index->num_sessions());
}

TEST(IndexManagerDeltaTest, RejectsLineageMismatches) {
  auto index = std::make_shared<const SessionIndex>(
      SessionIndex::Build(Dataset::FromClicks(BaseClicks(), 2), 3));
  auto manager = IndexManager::CreateFromIndex(index, /*version=*/4);
  const uint64_t before = manager->current_version();

  // Wrong base version: the delta was cut against someone else's snapshot.
  IndexDelta wrong_base =
      MakeDelta(StreamedSessions(), /*base_version=*/3, 0, /*delta=*/5);
  EXPECT_EQ(manager->ApplyDelta(wrong_base).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager->delta_rejects_total(), 1u);
  EXPECT_EQ(manager->current_version(), before);
  EXPECT_EQ(manager->applied_delta_version(), 0u);
}

TEST(IndexManagerDeltaTest, RejectsBaseCrcMismatchForFileBackedBases) {
  const std::string path = TempPath("crc-base.index");
  const SessionIndex index =
      SessionIndex::Build(Dataset::FromClicks(BaseClicks(), 2), 3);
  IndexManifest manifest;
  manifest.version = 7;
  manifest.build_id = "crc-test";
  auto written = WriteIndexWithManifest(path, index, manifest);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  ASSERT_NE(written->index_crc32, 0u);

  auto manager = IndexManager::CreateFromFile(path);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  // Right version, wrong artifact CRC: same-numbered rollout, different
  // bytes — exactly the split-brain lineage check exists to catch.
  IndexDelta bad_crc = MakeDelta(StreamedSessions(), /*base_version=*/7,
                                 written->index_crc32 ^ 0xdeadbeef,
                                 /*delta=*/8);
  EXPECT_EQ((*manager)->ApplyDelta(bad_crc).code(), StatusCode::kCorruption);
  EXPECT_EQ((*manager)->delta_rejects_total(), 1u);

  // Matching CRC (or an unstamped 0) is accepted.
  IndexDelta good = MakeDelta(StreamedSessions(), /*base_version=*/7,
                              written->index_crc32, /*delta=*/8);
  EXPECT_TRUE((*manager)->ApplyDelta(good).ok());
  EXPECT_EQ((*manager)->applied_delta_version(), 8u);
}

TEST(ManifestTest, DeltaLineageFieldsRoundTrip) {
  const std::string path = TempPath("delta-lineage.manifest");
  IndexManifest manifest;
  manifest.version = 12;
  manifest.build_id = "delta-12";
  manifest.kind = "delta";
  manifest.base_version = 7;
  manifest.base_crc32 = 0xabcdef01;
  manifest.watermark_unix_ms = 1723000000123ull;
  ASSERT_TRUE(WriteManifestFile(path, manifest).ok());

  auto read = ReadManifestFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->kind, "delta");
  EXPECT_EQ(read->base_version, 7u);
  EXPECT_EQ(read->base_crc32, 0xabcdef01u);
  EXPECT_EQ(read->watermark_unix_ms, 1723000000123ull);
}

TEST(ManifestTest, CheckManifestOverwriteGuardsVersionRegressions) {
  const std::string index_path = TempPath("overwrite-guard.index");

  // No sidecar: nothing to clobber.
  EXPECT_TRUE(CheckManifestOverwrite(index_path + ".nosuch", 1).ok());

  IndexManifest manifest;
  manifest.version = 5;
  ASSERT_TRUE(WriteManifestFile(ManifestPathFor(index_path), manifest).ok());

  EXPECT_EQ(CheckManifestOverwrite(index_path, 4).code(),
            StatusCode::kAlreadyExists);  // regression
  EXPECT_EQ(CheckManifestOverwrite(index_path, 5).code(),
            StatusCode::kAlreadyExists);  // same version re-run
  EXPECT_TRUE(CheckManifestOverwrite(index_path, 6).ok());
}

}  // namespace
}  // namespace serenade
