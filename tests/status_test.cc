#include "common/status.h"

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/hash.h"

namespace serenade {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kIoError, StatusCode::kCorruption,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::IoError("disk gone"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("hello"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

Status FailingHelper() { return Status::Corruption("inner"); }
Status PropagatingHelper() {
  SERENADE_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kCorruption);
}

// --- crc32 / hash sanity, colocated with the other tiny-common tests ---

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char data[] = "hello world, this is a checksum test";
  const uint32_t one_shot = Crc32(data, sizeof(data) - 1);
  uint32_t incremental = Crc32(data, 10);
  incremental = Crc32(data + 10, sizeof(data) - 1 - 10, incremental);
  EXPECT_EQ(incremental, one_shot);
}

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t a = Mix64(0x1234);
  const uint64_t b = Mix64(0x1235);
  const int differing = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

TEST(HashTest, Fnv1aDistinguishesStrings) {
  EXPECT_NE(Fnv1a("session-1"), Fnv1a("session-2"));
  EXPECT_EQ(Fnv1a("same"), Fnv1a("same"));
}

}  // namespace
}  // namespace serenade
