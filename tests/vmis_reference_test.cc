// Brute-force reference model for VMIS-kNN's specified semantics,
// checked against the optimised implementation in regimes where the
// candidate budget m is tight and eviction churns constantly.
//
// The specification (provable from Algorithm 2's eviction monotonicity —
// the recency minimum of the candidate set only ever grows, so a session
// once rejected/evicted can never re-enter):
//   1. For every distinct item i of the (truncated) evolving session,
//      postings_i = the min(m, h_i) most recent sessions containing i.
//   2. The candidate set C = the m most recent sessions of U postings_i
//      (recency = (timestamp, session id), a total order).
//   3. r_j = sum of pi_i over the items i with j in postings_i, for j in C.
//   4. Neighbours = top-k of C by (r_j, recency).
//   5. d_item = sum over neighbours containing the item of
//      lambda(max shared position) * r_j * idf(item).
#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "data/synthetic.h"

namespace serenade {
namespace {

struct ReferenceModel {
  const Dataset* train;
  KnnConfig config;

  // Recency total order: newer first.
  static bool Newer(const std::pair<Timestamp, SessionId>& a,
                    const std::pair<Timestamp, SessionId>& b) {
    return a > b;
  }

  std::vector<Neighbor> Neighbors(const EvolvingSession& session) const {
    // Truncate.
    const size_t start = session.size() > config.max_session_length
                             ? session.size() - config.max_session_length
                             : 0;
    std::vector<ItemId> items(session.begin() + static_cast<ptrdiff_t>(start),
                              session.end());
    const size_t len = items.size();
    if (len == 0) return {};

    // Last positions of distinct items.
    std::map<ItemId, size_t> last_position;  // 1-based
    for (size_t p = 0; p < len; ++p) last_position[items[p]] = p + 1;

    // Per-item postings: min(m, h_i) most recent sessions, brute force.
    std::map<ItemId, std::vector<SessionId>> postings;
    for (const auto& [item, position] : last_position) {
      (void)position;
      std::vector<std::pair<std::pair<Timestamp, SessionId>, SessionId>> all;
      for (const SessionData& historical : train->sessions()) {
        if (std::find(historical.items.begin(), historical.items.end(),
                      item) != historical.items.end()) {
          all.push_back({{historical.end_time, historical.id},
                         historical.id});
        }
      }
      std::sort(all.begin(), all.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      if (all.size() > config.m) all.resize(config.m);
      for (const auto& entry : all) postings[item].push_back(entry.second);
    }

    // Candidate set: m most recent of the union.
    std::set<SessionId> union_sessions;
    for (const auto& [item, sessions] : postings) {
      union_sessions.insert(sessions.begin(), sessions.end());
    }
    std::vector<std::pair<std::pair<Timestamp, SessionId>, SessionId>> ranked;
    for (SessionId s : union_sessions) {
      ranked.push_back(
          {{train->sessions()[s].end_time, s}, s});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (ranked.size() > config.m) ranked.resize(config.m);

    // Scores.
    std::vector<Neighbor> candidates;
    for (const auto& entry : ranked) {
      const SessionId j = entry.second;
      float score = 0.0f;
      for (const auto& [item, sessions] : postings) {
        if (std::find(sessions.begin(), sessions.end(), j) !=
            sessions.end()) {
          score += static_cast<float>(
              DecayWeight(config.decay, last_position.at(item), len));
        }
      }
      if (score > 0.0f) {
        candidates.push_back(
            Neighbor{j, score, train->sessions()[j].end_time});
      }
    }

    // Top-k by (score, timestamp, id).
    std::sort(candidates.begin(), candidates.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
                return a.session > b.session;
              });
    if (candidates.size() > config.k) candidates.resize(config.k);
    return candidates;
  }
};

class VmisReferenceTest
    : public testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(VmisReferenceTest, OptimisedMatchesBruteForce) {
  const auto [m, k] = GetParam();

  SyntheticConfig config;
  config.seed = 1000 + m * 10 + k;
  config.num_items = 120;   // few items + many sessions => heavy eviction
  config.num_sessions = 1500;
  config.num_days = 4;
  config.cluster_size = 30;
  Dataset train = GenerateDataset(config);

  KnnConfig knn_config;
  knn_config.m = m;
  knn_config.k = k;

  SessionIndex index = SessionIndex::Build(train, m);
  VmisKnn optimised(&index, knn_config);
  ReferenceModel reference{&train, knn_config};

  SyntheticConfig query_config = config;
  query_config.seed = 2000 + m;
  query_config.num_sessions = 25;
  Dataset queries = GenerateDataset(query_config);

  for (const SessionData& query : queries.sessions()) {
    const auto actual = optimised.NeighborSessions(query.items);
    const auto expected = reference.Neighbors(query.items);
    ASSERT_EQ(actual.size(), expected.size()) << "query " << query.id;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].session, expected[i].session)
          << "query " << query.id << " rank " << i;
      ASSERT_NEAR(actual[i].score, expected[i].score, 1e-4);
      ASSERT_EQ(actual[i].timestamp, expected[i].timestamp);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TightBudgets, VmisReferenceTest,
    testing::Values(std::make_tuple(3, 3), std::make_tuple(10, 5),
                    std::make_tuple(25, 10), std::make_tuple(100, 50),
                    std::make_tuple(400, 100)),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace serenade
