// Session replication and hand-off torture (src/replication): the WAL
// shipper, the replica hub, and the promotion/hand-off control plane.
// The invariants under attack:
//   * a replica's accepted byte stream is byte-identical to a prefix of
//     the donor's on-disk WAL — even with batches truncated in flight
//     (repl_ship_truncate) or acks lost after apply (repl_ack_lost),
//   * a torn batch is rejected wholesale (no partial apply) and a resend
//     at the wrong offset is answered with the real offset, never
//     double-applied,
//   * a restarted replica catches up from offset zero via the 409 rewind,
//   * promotion merges replica history with clicks the survivor accrued
//     during failover, and never resurrects an expired session,
//   * a donor that crashes mid-hand-off (handoff_cutover_crash) is
//     retried by the gateway until the join completes with every
//     acknowledged click intact.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/click_log.h"
#include "replication/pod_replication.h"
#include "replication/replica_hub.h"
#include "replication/replication_protocol.h"
#include "serving/http.h"
#include "serving/server.h"
#include "serving/service.h"
#include "store/wal.h"
#include "testing/fault_injection.h"
#include "testing/sim_cluster.h"

namespace serenade {
namespace {

Dataset SmallTrainingSet() {
  std::vector<Click> clicks;
  Timestamp now = 1;
  for (SessionId s = 0; s < 40; ++s) {
    for (size_t i = 0; i < 5; ++i) {
      clicks.push_back(
          Click{s, static_cast<ItemId>(1 + (s * 3 + i * 7) % 30), now++});
    }
  }
  return Dataset::FromClicks(std::move(clicks), /*min_session_length=*/2);
}

std::string FreshWorkDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SimClusterConfig ReplicationConfig(const std::string& work_dir) {
  SimClusterConfig config;
  config.num_pods = 2;
  config.train = SmallTrainingSet();
  config.knn.m = 50;
  config.knn.k = 10;
  config.work_dir = work_dir;
  config.store.sync_every_write = true;
  config.batch.max_batch_size = 4;
  config.batch.max_delay_us = 300;
  config.batch.num_workers = 2;
  config.gateway.health.probe_interval_ms = 20;
  config.gateway.health.probe_timeout_ms = 250;
  config.gateway.health.failures_to_eject = 2;
  config.gateway.health.successes_to_readmit = 2;
  config.gateway.forward_timeout_ms = 1000;
  config.replication.enabled = true;
  config.replication.pod.ship_interval_ms = 5;
  return config;
}

bool AwaitBackendHealth(SimCluster& cluster, const std::string& name,
                        bool want_healthy, uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (cluster.health().IsHealthy(name) != want_healthy) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

StatusOr<int> SendClick(uint16_t port, const std::string& session,
                        ItemId item) {
  HttpClient client;
  SERENADE_RETURN_IF_ERROR(client.Connect(port));
  auto response = client.Get("/v1/recommend?session_id=" + session +
                             "&item_id=" + std::to_string(item));
  SERENADE_RETURN_IF_ERROR(response.status());
  return response->status;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

WalRecord PutRecord(const std::string& key, const std::string& value,
                    uint64_t timestamp) {
  WalRecord record;
  record.type = WalRecordType::kPut;
  record.key = key;
  record.value = value;
  record.timestamp = timestamp;
  return record;
}

// Asserts the replica on `replica_pod` holds a byte-identical copy of the
// donor pod's on-disk WAL (full parity: lag must be zero at call time).
void ExpectWalParity(SimCluster& sim, size_t donor_pod, size_t replica_pod) {
  const std::string wal = ReadFileBytes(sim.pod_wal_path(donor_pod));
  const std::string replica =
      sim.pod_repl(replica_pod)->hub().LogBytes(sim.pod_name(donor_pod));
  ASSERT_GT(wal.size(), 0u) << "donor " << donor_pod << " has an empty WAL";
  ASSERT_EQ(replica.size(), wal.size())
      << "replica of " << sim.pod_name(donor_pod) << " holds "
      << replica.size() << " bytes, donor WAL has " << wal.size();
  EXPECT_TRUE(replica == wal)
      << "replica byte stream diverges from donor WAL";
}

// ---------------------------------------------------------------------------
// MergeSessionValues: the promotion-time merge of replica history with
// clicks the survivor accrued during failover.

TEST(MergeSessionValuesTest, EmptySidesYieldTheOther) {
  EXPECT_EQ(MergeSessionValues("", "4,5"), "4,5");
  EXPECT_EQ(MergeSessionValues("1,2", ""), "1,2");
  EXPECT_EQ(MergeSessionValues("", ""), "");
}

TEST(MergeSessionValuesTest, TokenPrefixLetsTheLongerHistoryWin) {
  EXPECT_EQ(MergeSessionValues("1,2", "1,2"), "1,2");
  // Local extended the replica's history while serving failover traffic.
  EXPECT_EQ(MergeSessionValues("1,2", "1,2,3"), "1,2,3");
  // Replica is ahead (local restarted empty and saw a single click).
  EXPECT_EQ(MergeSessionValues("1,2,3", "1"), "1,2,3");
}

TEST(MergeSessionValuesTest, StringPrefixIsNotTokenPrefix) {
  // "1,2" is a character prefix of "1,22" but NOT a token prefix: item 2
  // and item 22 are different clicks, so the histories diverged.
  EXPECT_EQ(MergeSessionValues("1,2", "1,22"), "1,2,1,22");
}

TEST(MergeSessionValuesTest, DivergentHistoriesConcatenateReplicaFirst) {
  // Replica clicks are older; they precede the local suffix.
  EXPECT_EQ(MergeSessionValues("1,2", "7,8"), "1,2,7,8");
}

// ---------------------------------------------------------------------------
// ReplicaHub: batch application, byte parity, rejection semantics.

TEST(ReplicaHubTest, AppliesSequencedBatchesWithByteParity) {
  ReplicaHub hub;
  std::string batch1;
  EncodeWalRecord(PutRecord("alice", "1", 10), &batch1);
  EncodeWalRecord(PutRecord("bob", "2", 11), &batch1);
  std::string batch2;
  EncodeWalRecord(PutRecord("alice", "1,3", 12), &batch2);

  uint64_t acked = 0;
  auto first = hub.ApplyBatch("pod-x", 1, 0, /*reset=*/false, batch1, &acked);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, batch1.size());

  auto second = hub.ApplyBatch("pod-x", 2, batch1.size(), /*reset=*/false,
                               batch2, &acked);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(*second, batch1.size() + batch2.size());

  // The accepted stream is verbatim: byte-identical to the donor's WAL
  // prefix it was cut from.
  EXPECT_EQ(hub.LogBytes("pod-x"), batch1 + batch2);

  const ReplicaDonorState state = hub.DonorState("pod-x");
  EXPECT_EQ(state.acked_offset, batch1.size() + batch2.size());
  EXPECT_EQ(state.last_seq, 2u);
  EXPECT_EQ(state.batches_applied, 2u);
  EXPECT_EQ(state.entries, 2u);

  // The shadow table holds the latest value per key with donor timestamps.
  bool found_alice = false;
  for (const auto& entry : hub.SnapshotDonor("pod-x")) {
    if (entry.key != "alice") continue;
    found_alice = true;
    EXPECT_EQ(entry.value, "1,3");
    EXPECT_EQ(entry.last_access, 12u);
  }
  EXPECT_TRUE(found_alice);
}

TEST(ReplicaHubTest, DeleteRecordsRemoveShadowEntries) {
  ReplicaHub hub;
  std::string batch;
  EncodeWalRecord(PutRecord("alice", "1", 10), &batch);
  WalRecord del;
  del.type = WalRecordType::kDelete;
  del.key = "alice";
  del.timestamp = 11;
  EncodeWalRecord(del, &batch);

  uint64_t acked = 0;
  auto applied = hub.ApplyBatch("pod-x", 1, 0, false, batch, &acked);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(hub.DonorState("pod-x").entries, 0u);
  // The delete still lives in the byte stream (parity over tombstones).
  EXPECT_EQ(hub.LogBytes("pod-x"), batch);
}

TEST(ReplicaHubTest, TornBatchIsRejectedWholesale) {
  ReplicaHub hub;
  std::string batch;
  EncodeWalRecord(PutRecord("alice", "1", 10), &batch);
  EncodeWalRecord(PutRecord("bob", "2", 11), &batch);

  // Truncate inside the second record: the whole batch must bounce —
  // applying the intact first record would desynchronise the offsets.
  std::string torn = batch.substr(0, batch.size() - 3);
  uint64_t acked = 0;
  auto rejected = hub.ApplyBatch("pod-x", 1, 0, false, torn, &acked);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(hub.DonorState("pod-x").acked_offset, 0u);
  EXPECT_EQ(hub.DonorState("pod-x").entries, 0u);
  EXPECT_TRUE(hub.LogBytes("pod-x").empty());
  EXPECT_GE(hub.batches_rejected_total(), 1u);

  // The shipper resends the intact bytes; now everything lands.
  auto applied = hub.ApplyBatch("pod-x", 1, 0, false, batch, &acked);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, batch.size());
  EXPECT_EQ(hub.LogBytes("pod-x"), batch);
}

TEST(ReplicaHubTest, OffsetMismatchAnswersWithRealOffsetAndNeverDoubleApplies) {
  ReplicaHub hub;
  std::string batch;
  EncodeWalRecord(PutRecord("alice", "1", 10), &batch);
  uint64_t acked = 0;
  ASSERT_TRUE(hub.ApplyBatch("pod-x", 1, 0, false, batch, &acked).ok());

  // A duplicate resend (the ack was lost in flight) starts at offset 0
  // again: rejected with the real offset, the stream is untouched.
  auto duplicate = hub.ApplyBatch("pod-x", 2, 0, false, batch, &acked);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(acked, batch.size());
  EXPECT_EQ(hub.LogBytes("pod-x"), batch);

  // A gap (shipper restarted ahead of the replica) is rejected the same
  // way; the shipper rewinds to the returned offset.
  auto gap = hub.ApplyBatch("pod-x", 3, batch.size() + 100, false, batch,
                            &acked);
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(acked, batch.size());
}

TEST(ReplicaHubTest, ResetDropsPriorDonorState) {
  ReplicaHub hub;
  std::string old_bytes;
  EncodeWalRecord(PutRecord("alice", "1", 10), &old_bytes);
  std::string new_bytes;
  EncodeWalRecord(PutRecord("carol", "5", 20), &new_bytes);

  uint64_t acked = 0;
  ASSERT_TRUE(hub.ApplyBatch("pod-x", 1, 0, false, old_bytes, &acked).ok());
  // The donor compacted its WAL: shipping restarts from offset zero with
  // the reset flag, and the stale stream is discarded.
  auto reset = hub.ApplyBatch("pod-x", 1, 0, /*reset=*/true, new_bytes,
                              &acked);
  ASSERT_TRUE(reset.ok()) << reset.status().ToString();
  EXPECT_EQ(*reset, new_bytes.size());
  EXPECT_EQ(hub.LogBytes("pod-x"), new_bytes);
  EXPECT_EQ(hub.DonorState("pod-x").entries, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end shipping over the simulated cluster.

TEST(ReplicationTest, ShipperMirrorsDonorWalOnRingSuccessor) {
  auto cluster =
      SimCluster::Start(ReplicationConfig(FreshWorkDir("repl-parity")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  for (int u = 0; u < 12; ++u) {
    for (ItemId item : {3, 4, 5}) {
      auto status =
          SendClick(sim.gateway().port(), "user-" + std::to_string(u), item);
      ASSERT_TRUE(status.ok()) << status.status().ToString();
      ASSERT_EQ(*status, 200);
    }
  }

  // Deterministic zero lag, then parity in both directions (with two
  // pods each is the other's ring successor).
  ASSERT_TRUE(sim.pod_repl(0)->shipper().FlushNow().ok());
  ASSERT_TRUE(sim.pod_repl(1)->shipper().FlushNow().ok());
  EXPECT_EQ(sim.pod_repl(0)->shipper().lag_bytes(), 0u);
  EXPECT_EQ(sim.pod_repl(1)->shipper().lag_bytes(), 0u);
  ExpectWalParity(sim, /*donor_pod=*/0, /*replica_pod=*/1);
  ExpectWalParity(sim, /*donor_pod=*/1, /*replica_pod=*/0);
}

TEST(ReplicationTest, ShippingFaultsNeverBreakByteParity) {
  auto cluster =
      SimCluster::Start(ReplicationConfig(FreshWorkDir("repl-faults")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  // Phase 1: batches truncated in flight. The receiver rejects the torn
  // tail wholesale (or acks the shorter prefix when the cut lands on a
  // record boundary); the resend keeps byte parity either way.
  {
    ScopedFaultInjector injector(909);
    injector->Arm(FaultSite::kReplShipTruncate, FaultRule{1.0, 3, 0});
    for (int u = 0; u < 10; ++u) {
      auto status = SendClick(sim.gateway().port(),
                              "faulty-" + std::to_string(u), 2);
      ASSERT_TRUE(status.ok()) << status.status().ToString();
      ASSERT_EQ(*status, 200);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (injector->fires(FaultSite::kReplShipTruncate) < 3) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "truncate budget never spent: "
          << injector->fires(FaultSite::kReplShipTruncate);
      (void)sim.pod_repl(0)->shipper().FlushNow();
      (void)sim.pod_repl(1)->shipper().FlushNow();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  // Phase 2: the replica applies a batch but the ack is lost in flight.
  // The shipper's resend of already-applied bytes must be answered with
  // the real offset (409 rewind), never double-applied.
  {
    ScopedFaultInjector injector(910);
    injector->Arm(FaultSite::kReplAckLost, FaultRule{1.0, 3, 0});
    for (int u = 0; u < 10; ++u) {
      auto status = SendClick(sim.gateway().port(),
                              "faulty-" + std::to_string(u), 6);
      ASSERT_TRUE(status.ok()) << status.status().ToString();
      ASSERT_EQ(*status, 200);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (injector->fires(FaultSite::kReplAckLost) < 3) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "ack-lost budget never spent: "
          << injector->fires(FaultSite::kReplAckLost);
      (void)sim.pod_repl(0)->shipper().FlushNow();
      (void)sim.pod_repl(1)->shipper().FlushNow();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  ASSERT_TRUE(sim.pod_repl(0)->shipper().FlushNow().ok());
  ASSERT_TRUE(sim.pod_repl(1)->shipper().FlushNow().ok());
  // A lost ack means the donor resent bytes the replica already applied:
  // idempotency demands exact parity, not just convergence.
  ExpectWalParity(sim, 0, 1);
  ExpectWalParity(sim, 1, 0);

  const WalShipperStats stats0 = sim.pod_repl(0)->shipper().stats();
  const WalShipperStats stats1 = sim.pod_repl(1)->shipper().stats();
  EXPECT_GE(stats0.batches_rejected + stats1.batches_rejected, 1u)
      << "no truncated batch was ever rejected";
  EXPECT_GE(stats0.ship_errors + stats1.ship_errors, 1u)
      << "no lost ack was ever observed";
  EXPECT_GE(stats0.offset_rewinds + stats1.offset_rewinds, 1u)
      << "a lost ack must resynchronise via the 409 rewind";
}

TEST(ReplicationTest, RestartedReplicaCatchesUpViaWalReplay) {
  auto cluster =
      SimCluster::Start(ReplicationConfig(FreshWorkDir("repl-catchup")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  // Straight at pod 0 so its WAL is the stream under test.
  for (int u = 0; u < 8; ++u) {
    auto status =
        SendClick(sim.pod_port(0), "catch-" + std::to_string(u), 3);
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(*status, 200);
  }
  ASSERT_TRUE(sim.pod_repl(0)->shipper().FlushNow().ok());
  ExpectWalParity(sim, 0, 1);

  // The replica dies; the donor keeps acking clicks it can no longer ship.
  sim.KillPod(1);
  ASSERT_TRUE(AwaitBackendHealth(sim, sim.pod_name(1), false, 5000));
  for (int u = 0; u < 8; ++u) {
    auto status =
        SendClick(sim.pod_port(0), "catch-" + std::to_string(u), 4);
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(*status, 200);
  }

  // Reborn replica starts with an empty hub. The donor's shipper resends
  // from its old offset, gets the 409 rewind to zero, and re-ships the
  // whole WAL — catch-up is just replay.
  ASSERT_TRUE(sim.RestartPod(1).ok());
  ASSERT_TRUE(AwaitBackendHealth(sim, sim.pod_name(1), true, 5000));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!sim.pod_repl(0)->shipper().FlushNow().ok()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "shipper never reconnected to the restarted replica";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ExpectWalParity(sim, 0, 1);
  EXPECT_GE(sim.pod_repl(0)->shipper().stats().offset_rewinds, 1u);
}

// ---------------------------------------------------------------------------
// Promotion: the gateway merges a dead pod's replica into the successor.

TEST(ReplicationTest, PromotionMergesFailoverClicksAndSkipsExpired) {
  auto clock = std::make_shared<std::atomic<uint64_t>>(1000);
  SimClusterConfig config =
      ReplicationConfig(FreshWorkDir("repl-promote"));
  config.store.ttl_seconds = 60;
  config.store.clock = [clock] { return clock->load(); };
  auto cluster = SimCluster::Start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  // t=1000: a session that will be long expired by promotion time.
  ASSERT_EQ(*SendClick(sim.pod_port(0), "stale", 2), 200);
  clock->fetch_add(120);

  // t=1120: live history on pod 0 — two clicks for the shared session.
  ASSERT_EQ(*SendClick(sim.pod_port(0), "shared", 1), 200);
  ASSERT_EQ(*SendClick(sim.pod_port(0), "shared", 2), 200);
  ASSERT_EQ(*SendClick(sim.pod_port(0), "fresh", 5), 200);
  ASSERT_TRUE(sim.pod_repl(0)->shipper().FlushNow().ok());

  // Pod 1 serves failover traffic for the shared session and extends the
  // history the replica already holds.
  ASSERT_EQ(*SendClick(sim.pod_port(1), "shared", 1), 200);
  ASSERT_EQ(*SendClick(sim.pod_port(1), "shared", 2), 200);
  ASSERT_EQ(*SendClick(sim.pod_port(1), "shared", 3), 200);

  // t=1150: "stale" is 150s old (dead), "shared"/"fresh" are 30s old.
  clock->fetch_add(30);
  HttpClient client;
  ASSERT_TRUE(client.Connect(sim.pod_port(1)).ok());
  auto promoted = client.Post(repl::kPromotePath,
                              "{\"donor\":\"" + sim.pod_name(0) + "\"}");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  ASSERT_EQ(promoted->status, 200) << promoted->body;

  // Replica "1,2" is a token prefix of local "1,2,3": the longer failover
  // history wins — no click lost, none duplicated.
  auto shared = sim.pod(1)->service().GetSession("shared");
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  EXPECT_EQ(*shared, (EvolvingSession{1, 2, 3}));

  // A session only the dead donor saw is restored with its timestamps.
  auto fresh = sim.pod(1)->service().GetSession("fresh");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(*fresh, (EvolvingSession{5}));

  // Promotion is not resurrection: the expired session stays dead.
  EXPECT_EQ(sim.pod(1)->service().GetSession("stale").status().code(),
            StatusCode::kNotFound);

  // The donor's replica state is consumed by the promotion.
  EXPECT_TRUE(sim.pod_repl(1)->hub().Donors().empty());
  EXPECT_EQ(sim.pod_repl(1)->promotions_total(), 1u);
}

// ---------------------------------------------------------------------------
// Hand-off: a donor that crashes mid-transfer is retried to completion.

TEST(ReplicationTest, HandoffCutoverCrashIsRetriedUntilJoinCompletes) {
  auto cluster =
      SimCluster::Start(ReplicationConfig(FreshWorkDir("repl-handoff")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  std::map<std::string, EvolvingSession> expected;
  for (int u = 0; u < 20; ++u) {
    const std::string key = "hand-" + std::to_string(u);
    for (ItemId item : {1, 2, 3}) {
      auto status = SendClick(sim.gateway().port(), key, item);
      ASSERT_TRUE(status.ok()) << status.status().ToString();
      ASSERT_EQ(*status, 200);
    }
    expected[key] = EvolvingSession{1, 2, 3};
  }

  uint64_t crash_fires = 0;
  size_t joined = 0;
  {
    ScopedFaultInjector injector(1337);
    // The donor 500s after pushing its first chunk — twice. The gateway's
    // retried hand-off must resume the same transfer idempotently.
    injector->Arm(FaultSite::kHandoffCutoverCrash, FaultRule{1.0, 2, 0});
    auto added = sim.AddPod();
    ASSERT_TRUE(added.ok()) << added.status().ToString();
    joined = *added;
    crash_fires = injector->fires(FaultSite::kHandoffCutoverCrash);
  }
  EXPECT_EQ(crash_fires, 2u) << "the cutover crash never fired";
  ASSERT_TRUE(sim.AwaitHealthy(3, 5000));

  auto epoch = sim.FetchRingEpoch();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 2u);

  // Every acknowledged click must live on its (possibly new) ring owner,
  // and the ring must actually have moved some keys to the new pod.
  size_t moved_to_new_pod = 0;
  for (const auto& [key, session] : expected) {
    const std::string owner = sim.gateway().OwnerOf(key);
    ASSERT_FALSE(owner.empty());
    size_t owner_index = sim.num_pods();
    for (size_t i = 0; i < sim.num_pods(); ++i) {
      if (sim.pod_name(i) == owner) owner_index = i;
    }
    ASSERT_LT(owner_index, sim.num_pods()) << "unknown owner " << owner;
    if (owner_index == joined) ++moved_to_new_pod;
    auto recovered = sim.pod(owner_index)->service().GetSession(key);
    ASSERT_TRUE(recovered.ok())
        << key << " lost across the hand-off: "
        << recovered.status().ToString();
    EXPECT_EQ(*recovered, session) << key;
  }
  EXPECT_GT(moved_to_new_pod, 0u)
      << "the join moved no keys; the hand-off path went untested";

  // Post-join traffic extends the histories in place (no stranded state,
  // no duplicate replay from a stale donor copy).
  for (auto& [key, session] : expected) {
    auto status = SendClick(sim.gateway().port(), key, 4);
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    ASSERT_EQ(*status, 200);
    session.push_back(4);
  }
  for (const auto& [key, session] : expected) {
    const std::string owner = sim.gateway().OwnerOf(key);
    size_t owner_index = sim.num_pods();
    for (size_t i = 0; i < sim.num_pods(); ++i) {
      if (sim.pod_name(i) == owner) owner_index = i;
    }
    ASSERT_LT(owner_index, sim.num_pods());
    auto extended = sim.pod(owner_index)->service().GetSession(key);
    ASSERT_TRUE(extended.ok()) << key << ": " << extended.status().ToString();
    EXPECT_EQ(*extended, session) << key;
  }
}

}  // namespace
}  // namespace serenade
