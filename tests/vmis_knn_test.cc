#include "core/vmis_knn.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/vs_knn.h"
#include "data/synthetic.h"

namespace serenade {
namespace {

// Sessions (by end time): s0={1,2,4} t=30, s1={2,4} t=50, s2={2,3} t=70.
Dataset ToyDataset() {
  std::vector<Click> clicks = {
      {100, 1, 10}, {100, 2, 20}, {100, 4, 30},
      {200, 2, 40}, {200, 4, 50},
      {300, 2, 60}, {300, 3, 70},
  };
  return Dataset::FromClicks(clicks);
}

KnnConfig ToyConfig() {
  KnnConfig config;
  config.m = 10;
  config.k = 10;
  return config;
}

TEST(VmisKnnTest, ToyExampleSimilarities) {
  Dataset dataset = ToyDataset();
  SessionIndex index = SessionIndex::Build(dataset, 10);
  VmisKnn model(&index, ToyConfig());

  // Paper toy example: evolving session [1, 2, 4]; similarity to the
  // historical session {2, 4} is 2/3 + 3/3 = 5/3.
  const auto neighbors = model.NeighborSessions({1, 2, 4});
  ASSERT_EQ(neighbors.size(), 3u);

  auto score_of = [&](SessionId id) {
    for (const Neighbor& n : neighbors) {
      if (n.session == id) return n.score;
    }
    ADD_FAILURE() << "session " << id << " not found";
    return -1.0f;
  };
  EXPECT_NEAR(score_of(1), 5.0f / 3.0f, 1e-5);          // {2,4}
  EXPECT_NEAR(score_of(0), 1.0f / 3 + 2.0f / 3 + 1.0f, 1e-5);  // {1,2,4}
  EXPECT_NEAR(score_of(2), 2.0f / 3.0f, 1e-5);          // {2,3}
}

TEST(VmisKnnTest, NeighborsSortedByScoreThenRecency) {
  Dataset dataset = ToyDataset();
  SessionIndex index = SessionIndex::Build(dataset, 10);
  VmisKnn model(&index, ToyConfig());
  const auto neighbors = model.NeighborSessions({1, 2, 4});
  for (size_t i = 1; i < neighbors.size(); ++i) {
    const bool ordered =
        neighbors[i - 1].score > neighbors[i].score ||
        (neighbors[i - 1].score == neighbors[i].score &&
         neighbors[i - 1].timestamp >= neighbors[i].timestamp);
    EXPECT_TRUE(ordered) << "position " << i;
  }
}

TEST(VmisKnnTest, EmptySessionYieldsNothing) {
  Dataset dataset = ToyDataset();
  SessionIndex index = SessionIndex::Build(dataset, 10);
  VmisKnn model(&index, ToyConfig());
  EXPECT_TRUE(model.RecommendNext({}, 20).empty());
  EXPECT_TRUE(model.NeighborSessions({}).empty());
}

TEST(VmisKnnTest, UnknownItemsYieldNothing) {
  Dataset dataset = ToyDataset();
  SessionIndex index = SessionIndex::Build(dataset, 10);
  VmisKnn model(&index, ToyConfig());
  EXPECT_TRUE(model.RecommendNext({999, 1000}, 20).empty());
}

TEST(VmisKnnTest, RecommendationsAreRankedAndBounded) {
  Dataset dataset = ToyDataset();
  SessionIndex index = SessionIndex::Build(dataset, 10);
  VmisKnn model(&index, ToyConfig());
  const auto recs = model.RecommendNext({2}, 2);
  ASSERT_LE(recs.size(), 2u);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].score, recs[i].score);
  }
}

TEST(VmisKnnTest, ExcludeSessionItemsFlag) {
  Dataset dataset = ToyDataset();
  SessionIndex index = SessionIndex::Build(dataset, 10);
  KnnConfig config = ToyConfig();
  config.exclude_session_items = true;
  VmisKnn model(&index, config);
  for (const ScoredItem& rec : model.RecommendNext({2, 4}, 20)) {
    EXPECT_NE(rec.item, 2u);
    EXPECT_NE(rec.item, 4u);
  }
}

TEST(VmisKnnTest, DuplicateItemsProcessedOnce) {
  Dataset dataset = ToyDataset();
  SessionIndex index = SessionIndex::Build(dataset, 10);
  VmisKnn model(&index, ToyConfig());
  // [2, 2, 2] must behave like a session whose only distinct item is 2 at
  // its most recent position.
  const auto a = model.NeighborSessions({2, 2, 2});
  ASSERT_FALSE(a.empty());
  // All three historical sessions contain item 2 with decay pi = 3/3 = 1.
  for (const Neighbor& n : a) EXPECT_NEAR(n.score, 1.0f, 1e-6);
}

TEST(VmisKnnTest, SessionCapUsesMostRecentItems) {
  Dataset dataset = ToyDataset();
  SessionIndex index = SessionIndex::Build(dataset, 10);
  KnnConfig config = ToyConfig();
  config.max_session_length = 1;
  VmisKnn model(&index, config);
  // Only item 4 (most recent) is considered: s2={2,3} shares nothing.
  const auto neighbors = model.NeighborSessions({2, 3, 4});
  std::set<SessionId> ids;
  for (const Neighbor& n : neighbors) ids.insert(n.session);
  EXPECT_EQ(ids, (std::set<SessionId>{0, 1}));
}

TEST(VmisKnnTest, MBoundsCandidateCount) {
  SyntheticConfig synth;
  synth.seed = 77;
  synth.num_items = 200;
  synth.num_sessions = 3000;
  synth.num_days = 5;
  Dataset dataset = GenerateDataset(synth);
  SessionIndex index = SessionIndex::Build(dataset, 3000);
  KnnConfig config;
  config.m = 17;
  config.k = 17;
  VmisKnn model(&index, config);
  // Even for a very popular item the candidate set (and hence neighbor
  // count) must not exceed m.
  const auto neighbors = model.NeighborSessions({0, 1, 2, 3});
  EXPECT_LE(neighbors.size(), 17u);
}

TEST(VmisKnnTest, EvictionKeepsMostRecentCandidates) {
  // 5 sessions all containing item 7; m = 2 must keep the 2 most recent.
  std::vector<Click> clicks;
  for (SessionId s = 0; s < 5; ++s) {
    clicks.push_back({s, 7, 100 * (s + 1)});
    clicks.push_back({s, 8 + s, 100 * (s + 1) + 1});
  }
  Dataset dataset = Dataset::FromClicks(clicks);
  SessionIndex index = SessionIndex::Build(dataset, 10);
  KnnConfig config;
  config.m = 2;
  config.k = 2;
  VmisKnn model(&index, config);
  const auto neighbors = model.NeighborSessions({7});
  ASSERT_EQ(neighbors.size(), 2u);
  std::set<Timestamp> times{neighbors[0].timestamp, neighbors[1].timestamp};
  EXPECT_EQ(times, (std::set<Timestamp>{401, 501}));
}

// --- Equivalence properties -------------------------------------------------

struct EquivalenceCase {
  size_t m;
  size_t k;
  DecayType decay;
};

class VmisEquivalenceTest : public testing::TestWithParam<EquivalenceCase> {
 protected:
  static Dataset MakeData() {
    SyntheticConfig config;
    config.seed = 1234;
    config.num_items = 400;
    config.num_sessions = 3000;
    config.num_days = 6;
    config.cluster_size = 40;
    return GenerateDataset(config);
  }
};

// Property: the no-opt variant (binary heaps, no early stopping) computes
// EXACTLY the same neighbors — early stopping is an exact optimisation.
TEST_P(VmisEquivalenceTest, NoOptMatchesOptimised) {
  const EquivalenceCase param = GetParam();
  Dataset dataset = MakeData();
  SessionIndex index = SessionIndex::Build(dataset, param.m);

  KnnConfig config;
  config.m = param.m;
  config.k = param.k;
  config.decay = param.decay;
  VmisKnn optimised(&index, config);
  VmisKnn no_opt(&index, NoOptConfig(config));

  SyntheticConfig query_config;
  query_config.seed = 4321;
  query_config.num_items = 400;
  query_config.num_sessions = 60;
  query_config.num_days = 1;
  Dataset queries = GenerateDataset(query_config);

  for (const SessionData& query : queries.sessions()) {
    EvolvingSession evolving;
    for (ItemId item : query.items) {
      evolving.push_back(item);
      const auto a = optimised.RecommendNext(evolving, 20);
      const auto b = no_opt.RecommendNext(evolving, 20);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].item, b[i].item) << "rank " << i;
        ASSERT_NEAR(a[i].score, b[i].score, 1e-4);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VmisEquivalenceTest,
    testing::Values(EquivalenceCase{5, 3, DecayType::kLinear},
                    EquivalenceCase{50, 10, DecayType::kLinear},
                    EquivalenceCase{500, 100, DecayType::kLinear},
                    EquivalenceCase{50, 10, DecayType::kSame},
                    EquivalenceCase{50, 10, DecayType::kQuadratic},
                    EquivalenceCase{5000, 500, DecayType::kHarmonic}));

// Property: with m large enough that no recency eviction can occur,
// VMIS-kNN's neighbor set equals VS-kNN's (same similarities; both
// consider every matching session).
TEST(VmisVsKnnEquivalence, NeighborsMatchWithoutEviction) {
  SyntheticConfig config;
  config.seed = 555;
  config.num_items = 300;
  config.num_sessions = 1500;
  config.num_days = 4;
  Dataset dataset = GenerateDataset(config);

  KnnConfig knn_config;
  knn_config.m = 100000;  // > num_sessions: no eviction, no sampling
  knn_config.k = 30;

  SessionIndex index = SessionIndex::Build(dataset, knn_config.m);
  VmisKnn vmis(&index, knn_config);
  VsKnn vs(dataset, knn_config);

  SyntheticConfig query_config = config;
  query_config.seed = 556;
  query_config.num_sessions = 40;
  Dataset queries = GenerateDataset(query_config);

  for (const SessionData& query : queries.sessions()) {
    const auto a = vmis.NeighborSessions(query.items);
    const auto b = vs.NeighborSessions(query.items);
    ASSERT_EQ(a.size(), b.size());
    // Compare as sets of (session, score): heap tie-breaking may order
    // equal-scored neighbors differently at the k boundary.
    std::set<std::pair<SessionId, int64_t>> set_a, set_b;
    for (const Neighbor& n : a) {
      set_a.emplace(n.session, static_cast<int64_t>(n.score * 1e6));
    }
    for (const Neighbor& n : b) {
      set_b.emplace(n.session, static_cast<int64_t>(n.score * 1e6));
    }
    // Scores at the boundary may tie; require at least 90% agreement.
    std::vector<std::pair<SessionId, int64_t>> intersection;
    std::set_intersection(set_a.begin(), set_a.end(), set_b.begin(),
                          set_b.end(), std::back_inserter(intersection));
    EXPECT_GE(intersection.size(), a.size() * 9 / 10);
  }
}

TEST(VmisKnnTest, TopNLimitRespected) {
  SyntheticConfig config;
  config.seed = 88;
  config.num_items = 100;
  config.num_sessions = 500;
  config.num_days = 3;
  Dataset dataset = GenerateDataset(config);
  SessionIndex index = SessionIndex::Build(dataset, 100);
  KnnConfig knn_config;
  knn_config.m = 100;
  knn_config.k = 50;
  VmisKnn model(&index, knn_config);
  for (size_t n : {1u, 5u, 21u}) {
    EXPECT_LE(model.RecommendNext({0, 1, 2}, n).size(), n);
  }
  EXPECT_TRUE(model.RecommendNext({0, 1, 2}, 0).empty());
}

}  // namespace
}  // namespace serenade
