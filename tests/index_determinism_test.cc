// Build determinism (satellite of the fault-injection/differential PR):
// the nightly rollout trusts that rebuilding an index over the same click
// log yields the same artifact — otherwise CRC-based validation and
// cross-pod artifact comparison are meaningless. Assert it at three
// levels: serialized bytes across thread counts, on-disk artifact files
// across repeated WriteIndexWithManifest calls, and the manifest CRCs.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "index/index_builder.h"
#include "index/index_format.h"
#include "index/snapshot.h"

namespace serenade {
namespace {

Dataset TrainingSet() {
  SyntheticConfig config;
  config.seed = 1234;
  config.num_items = 400;
  config.num_sessions = 2500;
  return GenerateDataset(config);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(IndexDeterminismTest, ParallelBuildIsByteIdenticalAcrossThreadCounts) {
  const Dataset train = TrainingSet();
  const SessionIndex reference = SessionIndex::Build(train, 100);
  const std::string reference_bytes = SerializeIndex(reference);
  ASSERT_FALSE(reference_bytes.empty());

  for (size_t threads : {1, 2, 4}) {
    IndexBuilderOptions options;
    options.max_sessions_per_item = 100;
    options.num_threads = threads;
    const SessionIndex parallel = BuildIndexParallel(train, options);
    EXPECT_EQ(SerializeIndex(parallel), reference_bytes)
        << "num_threads=" << threads
        << " diverged from the single-threaded reference";
  }
}

TEST(IndexDeterminismTest, RebuildingWritesByteIdenticalArtifacts) {
  const Dataset train = TrainingSet();
  const std::string dir = testing::TempDir() + "/index-determinism";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Two full build-and-stamp runs over the same clicks. Provenance
  // fields (version, build id, source, build time) are pinned — they are
  // rollout metadata, not a function of the data.
  IndexManifest stamp;
  stamp.version = 7;
  stamp.build_id = "determinism-check";
  stamp.source = "synthetic-1234";
  stamp.built_unix = 1700000000;

  std::string paths[2];
  IndexManifest manifests[2];
  for (int run = 0; run < 2; ++run) {
    paths[run] = dir + "/run" + std::to_string(run) + ".idx";
    IndexBuilderOptions options;
    options.max_sessions_per_item = 100;
    options.num_threads = run + 1;  // thread count must not matter either
    const SessionIndex index = BuildIndexParallel(train, options);
    auto manifest = WriteIndexWithManifest(paths[run], index, stamp);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    manifests[run] = *manifest;
  }

  const std::string artifact_a = ReadFileBytes(paths[0]);
  const std::string artifact_b = ReadFileBytes(paths[1]);
  ASSERT_FALSE(artifact_a.empty());
  EXPECT_EQ(artifact_a, artifact_b) << "artifact bytes differ across rebuilds";

  EXPECT_EQ(manifests[0].index_crc32, manifests[1].index_crc32);
  EXPECT_EQ(manifests[0].index_bytes, manifests[1].index_bytes);
  EXPECT_EQ(manifests[0].num_postings, manifests[1].num_postings);

  // The manifest sidecars are byte-identical files too (provenance was
  // pinned, everything else is derived from identical bytes).
  EXPECT_EQ(ReadFileBytes(ManifestPathFor(paths[0])),
            ReadFileBytes(ManifestPathFor(paths[1])));

  // And a manifest round-trip matches what the writer reported.
  auto read_back = ReadManifestFile(ManifestPathFor(paths[0]));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->index_crc32, manifests[0].index_crc32);
  EXPECT_EQ(read_back->version, 7u);
}

}  // namespace
}  // namespace serenade
