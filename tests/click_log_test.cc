#include "data/click_log.h"

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/split.h"

namespace serenade {
namespace {

std::vector<Click> ToyClicks() {
  // Session 100 clicks items 1,2,4 at t=10..30; session 200 clicks 2,4 at
  // t=40..50; session 300 has a single click (filtered by default).
  return {
      {100, 1, 10}, {100, 2, 20}, {100, 4, 30},
      {200, 2, 40}, {200, 4, 50},
      {300, 3, 60},
  };
}

TEST(DatasetTest, GroupsAndFiltersSessions) {
  Dataset dataset = Dataset::FromClicks(ToyClicks());
  EXPECT_EQ(dataset.num_sessions(), 2u);  // session 300 dropped (length 1)
  EXPECT_EQ(dataset.num_clicks(), 5u);
  EXPECT_EQ(dataset.num_items(), 5u);  // max item id 4 -> vocabulary size 5
}

TEST(DatasetTest, SessionsSortedByEndTimeWithDenseIds) {
  Dataset dataset = Dataset::FromClicks(ToyClicks());
  const auto& sessions = dataset.sessions();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].id, 0u);
  EXPECT_EQ(sessions[1].id, 1u);
  EXPECT_LE(sessions[0].end_time, sessions[1].end_time);
  EXPECT_EQ(sessions[0].items, (std::vector<ItemId>{1, 2, 4}));
  EXPECT_EQ(sessions[1].items, (std::vector<ItemId>{2, 4}));
}

TEST(DatasetTest, ClicksSortedWithinSession) {
  std::vector<Click> shuffled = {
      {7, 3, 30}, {7, 1, 10}, {7, 2, 20},
  };
  Dataset dataset = Dataset::FromClicks(shuffled, 2);
  ASSERT_EQ(dataset.num_sessions(), 1u);
  EXPECT_EQ(dataset.sessions()[0].items, (std::vector<ItemId>{1, 2, 3}));
}

TEST(DatasetTest, MinMaxTimestamps) {
  Dataset dataset = Dataset::FromClicks(ToyClicks());
  EXPECT_EQ(dataset.min_timestamp(), 10u);
  EXPECT_EQ(dataset.max_timestamp(), 50u);
}

TEST(DatasetTest, EmptyInput) {
  Dataset dataset = Dataset::FromClicks({});
  EXPECT_EQ(dataset.num_sessions(), 0u);
  EXPECT_EQ(dataset.num_items(), 0u);
  EXPECT_TRUE(dataset.ToClicks().empty());
}

TEST(DatasetTest, MinSessionLengthOne) {
  Dataset dataset = Dataset::FromClicks(ToyClicks(), 1);
  EXPECT_EQ(dataset.num_sessions(), 3u);
}

TEST(CsvTest, ParseRoundTrip) {
  Dataset dataset = Dataset::FromClicks(ToyClicks());
  const std::string path = testing::TempDir() + "/clicks.csv";
  ASSERT_TRUE(WriteClicksCsv(path, dataset.ToClicks()).ok());
  auto parsed = ReadClicksCsv(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Dataset reparsed = Dataset::FromClicks(std::move(parsed).value());
  EXPECT_EQ(reparsed.num_sessions(), dataset.num_sessions());
  EXPECT_EQ(reparsed.num_clicks(), dataset.num_clicks());
  for (size_t i = 0; i < dataset.num_sessions(); ++i) {
    EXPECT_EQ(reparsed.sessions()[i].items, dataset.sessions()[i].items);
  }
}

TEST(CsvTest, ParsesTabSeparatedWithHeader) {
  auto parsed = ParseClicksCsv("SessionId\tItemId\tTime\n1\t2\t3\n4\t5\t6\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], (Click{1, 2, 3}));
  EXPECT_EQ((*parsed)[1], (Click{4, 5, 6}));
}

TEST(CsvTest, ParsesFractionalTimestamps) {
  auto parsed = ParseClicksCsv("1,2,1433221332.117\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)[0].timestamp, 1433221332u);
}

TEST(CsvTest, RejectsMalformedRow) {
  EXPECT_EQ(ParseClicksCsv("1,2\n").status().code(), StatusCode::kCorruption);
  EXPECT_EQ(ParseClicksCsv("1,x,3\n").status().code(),
            StatusCode::kCorruption);
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadClicksCsv("/nonexistent/path.csv").status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, EmptyContentYieldsNoClicks) {
  auto parsed = ParseClicksCsv("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(SplitTest, LastDayHeldOut) {
  // Two "old" sessions and one session on the final day.
  std::vector<Click> clicks = {
      {1, 10, 1000},          {1, 11, 1100},
      {2, 10, 2000},          {2, 12, 2100},
      {3, 10, 1000 + 200000}, {3, 11, 1100 + 200000},  // ~2.3 days later
  };
  Dataset dataset = Dataset::FromClicks(clicks);
  TrainTestSplit split = SplitLastDays(dataset, 1);
  EXPECT_EQ(split.train.num_sessions(), 2u);
  EXPECT_EQ(split.test.num_sessions(), 1u);
}

TEST(SplitTest, TestItemsUnseenInTrainAreDropped) {
  std::vector<Click> clicks = {
      {1, 10, 1000},   {1, 11, 1100},
      // Test session contains item 99 never seen in training.
      {3, 10, 300000}, {3, 99, 300100}, {3, 11, 300200},
  };
  Dataset dataset = Dataset::FromClicks(clicks);
  TrainTestSplit split = SplitLastDays(dataset, 1);
  ASSERT_EQ(split.test.num_sessions(), 1u);
  EXPECT_EQ(split.test.sessions()[0].items, (std::vector<ItemId>{10, 11}));
}

TEST(SplitTest, TestSessionTooShortAfterFilteringIsDropped) {
  std::vector<Click> clicks = {
      {1, 10, 1000},   {1, 11, 1100},
      {3, 99, 300000}, {3, 98, 300100},  // both unseen in train
  };
  Dataset dataset = Dataset::FromClicks(clicks);
  TrainTestSplit split = SplitLastDays(dataset, 1);
  EXPECT_EQ(split.test.num_sessions(), 0u);
}

TEST(SplitTest, EmptyDataset) {
  TrainTestSplit split = SplitLastDays(Dataset(), 1);
  EXPECT_EQ(split.train.num_sessions(), 0u);
  EXPECT_EQ(split.test.num_sessions(), 0u);
}

}  // namespace
}  // namespace serenade
