#include <cmath>

#include <gtest/gtest.h>

#include "baselines/gru4rec.h"
#include "baselines/nn.h"
#include "baselines/stamp.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace serenade {
namespace {

// --- nn primitives ----------------------------------------------------------

TEST(NnTest, MatVecHandComputed) {
  Tensor w(2, 3);
  float* r0 = w.Row(0);
  r0[0] = 1;
  r0[1] = 2;
  r0[2] = 3;
  float* r1 = w.Row(1);
  r1[0] = 4;
  r1[1] = 5;
  r1[2] = 6;
  const float x[3] = {1, 0, -1};
  float out[2];
  MatVec(w, x, out);
  EXPECT_FLOAT_EQ(out[0], -2.0f);
  EXPECT_FLOAT_EQ(out[1], -2.0f);
}

TEST(NnTest, TransposeIsAdjoint) {
  // <W x, y> == <x, W^T y> for random W, x, y.
  Rng rng(5);
  Tensor w(4, 3);
  w.InitUniform(rng, 1.0f);
  float x[3], y[4], wx[4], wty[3] = {0, 0, 0};
  for (float& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  for (float& v : y) v = static_cast<float>(rng.Uniform(-1, 1));
  MatVec(w, x, wx);
  MatVecTransposeAdd(w, y, wty);
  EXPECT_NEAR(Dot(wx, y, 4), Dot(x, wty, 3), 1e-5);
}

TEST(NnTest, SoftmaxSumsToOne) {
  float logits[4] = {1.0f, 2.0f, 3.0f, 1000.0f};  // test overflow safety
  SoftmaxInPlace(logits, 4);
  float sum = 0;
  for (float p : logits) {
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
  EXPECT_GT(logits[3], 0.99f);
}

TEST(NnTest, AdagradDecreasesQuadratic) {
  // Minimise f(w) = (w - 3)^2 with manual gradients.
  Tensor w(1, 1);
  w.Row(0)[0] = 0.0f;
  for (int step = 0; step < 300; ++step) {
    w.GradRow(0)[0] = 2.0f * (w.Row(0)[0] - 3.0f);
    w.ApplyAdagrad(0.5f);
  }
  EXPECT_NEAR(w.Row(0)[0], 3.0f, 0.1f);
}

TEST(NnTest, SparseRowUpdateTouchesOnlyGivenRows) {
  Tensor w(3, 2);
  for (size_t r = 0; r < 3; ++r) {
    w.GradRow(r)[0] = 1.0f;
  }
  w.ApplyAdagradRows({1}, 0.1f);
  EXPECT_FLOAT_EQ(w.Row(0)[0], 0.0f);   // untouched value
  EXPECT_LT(w.Row(1)[0], 0.0f);         // moved against gradient
  EXPECT_FLOAT_EQ(w.Row(2)[0], 0.0f);
}

// --- GRU4Rec ----------------------------------------------------------------

Dataset DeterministicPairs() {
  // Strongly deterministic structure: item 2i is always followed by 2i+1.
  std::vector<Click> clicks;
  SessionId session = 0;
  for (int repeat = 0; repeat < 120; ++repeat) {
    for (ItemId pair = 0; pair < 6; ++pair) {
      clicks.push_back({session, 2 * pair, 1000u + session * 10u});
      clicks.push_back({session, 2 * pair + 1, 1000u + session * 10u + 5u});
      ++session;
    }
  }
  return Dataset::FromClicks(clicks);
}

TEST(Gru4RecTest, LossDecreasesAndLearnsDeterministicTransitions) {
  Dataset train = DeterministicPairs();
  Gru4RecConfig config;
  config.embedding_dim = 16;
  config.hidden_dim = 16;
  config.epochs = 1;
  config.seed = 7;

  Gru4Rec one_epoch(12, config);
  const float loss_after_one = one_epoch.Train(train);

  config.epochs = 8;
  Gru4Rec many_epochs(12, config);
  const float loss_after_many = many_epochs.Train(train);
  EXPECT_LT(loss_after_many, loss_after_one);

  // After training, the model must rank the deterministic successor first.
  size_t correct = 0;
  for (ItemId pair = 0; pair < 6; ++pair) {
    const auto recs = many_epochs.RecommendNext({2 * pair}, 1);
    ASSERT_FALSE(recs.empty());
    if (recs[0].item == 2 * pair + 1) ++correct;
  }
  EXPECT_GE(correct, 5u);
}

TEST(Gru4RecTest, DeterministicForSeed) {
  Dataset train = DeterministicPairs();
  Gru4RecConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  config.epochs = 2;
  Gru4Rec a(12, config), b(12, config);
  a.Train(train);
  b.Train(train);
  const auto ra = a.RecommendNext({0, 1, 2}, 5);
  const auto rb = b.RecommendNext({0, 1, 2}, 5);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].item, rb[i].item);
    EXPECT_FLOAT_EQ(ra[i].score, rb[i].score);
  }
}

TEST(Gru4RecTest, HandlesUnknownItemsAndEmptySession) {
  Gru4RecConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  Gru4Rec model(10, config);
  EXPECT_TRUE(model.RecommendNext({}, 5).empty());
  // Unknown items are skipped, not crashed on.
  const auto recs = model.RecommendNext({999, 3}, 5);
  EXPECT_LE(recs.size(), 5u);
}

// --- STAMP ------------------------------------------------------------------

TEST(StampTest, LossDecreasesAndLearnsDeterministicTransitions) {
  Dataset train = DeterministicPairs();
  StampConfig config;
  config.embedding_dim = 16;
  config.epochs = 1;
  config.seed = 9;

  Stamp one_epoch(12, config);
  const float loss_after_one = one_epoch.Train(train);

  config.epochs = 10;
  Stamp many_epochs(12, config);
  const float loss_after_many = many_epochs.Train(train);
  EXPECT_LT(loss_after_many, loss_after_one);

  size_t correct = 0;
  for (ItemId pair = 0; pair < 6; ++pair) {
    const auto recs = many_epochs.RecommendNext({2 * pair}, 1);
    ASSERT_FALSE(recs.empty());
    if (recs[0].item == 2 * pair + 1) ++correct;
  }
  EXPECT_GE(correct, 5u);
}

TEST(StampTest, DeterministicForSeed) {
  Dataset train = DeterministicPairs();
  StampConfig config;
  config.embedding_dim = 8;
  config.epochs = 2;
  Stamp a(12, config), b(12, config);
  a.Train(train);
  b.Train(train);
  const auto ra = a.RecommendNext({2, 3}, 5);
  const auto rb = b.RecommendNext({2, 3}, 5);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i].item, rb[i].item);
}

TEST(StampTest, HandlesUnknownItemsAndEmptySession) {
  StampConfig config;
  config.embedding_dim = 8;
  Stamp model(10, config);
  EXPECT_TRUE(model.RecommendNext({}, 5).empty());
  EXPECT_TRUE(model.RecommendNext({999}, 5).empty());  // nothing known
  EXPECT_LE(model.RecommendNext({999, 2}, 5).size(), 5u);
}

// STAMP gradient check: numerical vs analytical gradient of the loss wrt
// one embedding entry, via finite differences on the public API. We
// verify indirectly: a single training step on one example must reduce
// that example's loss (descent direction test).
TEST(StampTest, SingleBatchStepDescendsLoss) {
  // Two deterministic transitions (0 -> 1 and 2 -> 3) so the in-batch
  // sampled softmax sees real negatives.
  std::vector<Click> clicks;
  for (SessionId s = 0; s < 40; ++s) {
    const ItemId first = (s % 2 == 0) ? 0u : 2u;
    clicks.push_back({s, first, 100u + s * 10u});
    clicks.push_back({s, first + 1, 105u + s * 10u});
  }
  Dataset train = Dataset::FromClicks(clicks);
  StampConfig config;
  config.embedding_dim = 8;
  config.epochs = 1;
  config.learning_rate = 0.01f;
  Stamp first(4, config);
  const float loss1 = first.Train(train);
  config.epochs = 4;
  Stamp fourth(4, config);
  const float loss4 = fourth.Train(train);
  EXPECT_LT(loss4, loss1);
}

}  // namespace
}  // namespace serenade
