#include "core/vs_knn.h"

#include <set>

#include <gtest/gtest.h>

namespace serenade {
namespace {

// Sessions (by end time): s0={1,2,4} t=30, s1={2,4} t=50, s2={2,3} t=70.
Dataset ToyDataset() {
  std::vector<Click> clicks = {
      {100, 1, 10}, {100, 2, 20}, {100, 4, 30},
      {200, 2, 40}, {200, 4, 50},
      {300, 2, 60}, {300, 3, 70},
  };
  return Dataset::FromClicks(clicks);
}

KnnConfig ToyConfig() {
  KnnConfig config;
  config.m = 10;
  config.k = 10;
  return config;
}

TEST(VsKnnTest, PaperToyExampleSimilarity) {
  VsKnn model(ToyDataset(), ToyConfig());
  const auto neighbors = model.NeighborSessions({1, 2, 4});
  ASSERT_EQ(neighbors.size(), 3u);
  auto score_of = [&](SessionId id) {
    for (const Neighbor& n : neighbors) {
      if (n.session == id) return n.score;
    }
    ADD_FAILURE() << "session " << id << " missing";
    return -1.0f;
  };
  // Similarity with {2,4} is 2/3 + 3/3 = 5/3 (the paper's toy example).
  EXPECT_NEAR(score_of(1), 5.0f / 3.0f, 1e-5);
  EXPECT_NEAR(score_of(0), 2.0f, 1e-5);        // {1,2,4}: 1/3+2/3+3/3
  EXPECT_NEAR(score_of(2), 2.0f / 3.0f, 1e-5); // {2,3}: item 2 only
}

TEST(VsKnnTest, RecencySampleKeepsMostRecent) {
  KnnConfig config = ToyConfig();
  config.m = 2;  // only the two most recent matching sessions survive
  VsKnn model(ToyDataset(), config);
  const auto neighbors = model.NeighborSessions({2});
  std::set<SessionId> ids;
  for (const Neighbor& n : neighbors) ids.insert(n.session);
  EXPECT_EQ(ids, (std::set<SessionId>{1, 2}));  // t=50 and t=70
}

TEST(VsKnnTest, KLimitsNeighborCount) {
  KnnConfig config = ToyConfig();
  config.k = 1;
  VsKnn model(ToyDataset(), config);
  EXPECT_EQ(model.NeighborSessions({1, 2, 4}).size(), 1u);
}

TEST(VsKnnTest, ScoringUsesSessionLengthFactorAndOnePlusLogIdf) {
  // Single neighbour makes the item scores fully hand-computable.
  // History: one session {7, 8} at t=20.
  std::vector<Click> clicks = {{1, 7, 10}, {1, 8, 20}};
  KnnConfig config = ToyConfig();
  config.idf = IdfWeighting::kOnePlusLog;
  VsKnn model(Dataset::FromClicks(clicks), config);

  // Evolving session [7]: similarity = 1 (position 1 of 1, linear decay);
  // lambda(steps-from-end, pos 1 of 1) = 1; 1/|s| = 1.
  // idf = log(1/1) = 0 -> factor 1 + 0 = 1. Scores: d_7 = d_8 = 1.
  const auto recs = model.RecommendNext({7}, 10);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_NEAR(recs[0].score, 1.0f, 1e-5);
  EXPECT_NEAR(recs[1].score, 1.0f, 1e-5);
}

TEST(VsKnnTest, EmptyAndUnknownSessions) {
  VsKnn model(ToyDataset(), ToyConfig());
  EXPECT_TRUE(model.NeighborSessions({}).empty());
  EXPECT_TRUE(model.RecommendNext({}, 5).empty());
  EXPECT_TRUE(model.RecommendNext({777}, 5).empty());
}

TEST(VsKnnTest, ExcludeSessionItems) {
  KnnConfig config = ToyConfig();
  config.exclude_session_items = true;
  VsKnn model(ToyDataset(), config);
  for (const ScoredItem& rec : model.RecommendNext({2, 4}, 10)) {
    EXPECT_NE(rec.item, 2u);
    EXPECT_NE(rec.item, 4u);
  }
}

TEST(VsKnnTest, DuplicateEvolvingItemsCountOnce) {
  VsKnn model(ToyDataset(), ToyConfig());
  const auto once = model.NeighborSessions({2});
  const auto thrice = model.NeighborSessions({2, 2, 2});
  ASSERT_EQ(once.size(), thrice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].session, thrice[i].session);
    // [2,2,2]: only the most recent occurrence contributes, decay 3/3 = 1,
    // same as [2] with decay 1/1.
    EXPECT_NEAR(once[i].score, thrice[i].score, 1e-6);
  }
}

}  // namespace
}  // namespace serenade
