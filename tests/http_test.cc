#include "serving/http.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace serenade {
namespace {

HttpResponse EchoHandler(const HttpRequest& request) {
  HttpResponse response;
  response.body = request.method + " " + request.path + " q=" +
                  request.Param("q", "<none>") + " body=" + request.body;
  response.content_type = "text/plain";
  return response;
}

class HttpTest : public testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<HttpServer>(EchoHandler);
    ASSERT_TRUE(server_->Start(0).ok());
  }
  void TearDown() override { server_->Stop(); }
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpTest, SimpleGet) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto response = client.Get("/hello?q=world");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "GET /hello q=world body=");
}

TEST_F(HttpTest, UrlDecoding) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto response = client.Get("/path?q=a%2Cb+c");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "GET /path q=a,b c body=");
}

TEST_F(HttpTest, KeepAliveReusesConnection) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  for (int i = 0; i < 50; ++i) {
    auto response = client.Get("/r?q=" + std::to_string(i));
    ASSERT_TRUE(response.ok()) << "request " << i;
    EXPECT_EQ(response->body, "GET /r q=" + std::to_string(i) + " body=");
  }
  EXPECT_EQ(server_->requests_served(), 50u);
}

TEST_F(HttpTest, ConcurrentClients) {
  constexpr int kClients = 8, kRequests = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect(server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        auto response = client.Get("/c?q=" + std::to_string(c * 1000 + i));
        if (!response.ok() ||
            response->body !=
                "GET /c q=" + std::to_string(c * 1000 + i) + " body=") {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->requests_served(),
            static_cast<uint64_t>(kClients * kRequests));
}

TEST_F(HttpTest, MultipleSequentialConnections) {
  for (int i = 0; i < 5; ++i) {
    HttpClient client;
    ASSERT_TRUE(client.Connect(server_->port()).ok());
    auto response = client.Get("/seq");
    ASSERT_TRUE(response.ok());
    client.Close();
  }
}

TEST_F(HttpTest, PostBodyRoundTrip) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto response = client.Post("/submit?q=1", "{\"payload\":42}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "POST /submit q=1 body={\"payload\":42}");
}

TEST_F(HttpTest, PostEmptyBody) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto response = client.Post("/submit", "");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "POST /submit q=<none> body=");
}

TEST_F(HttpTest, InterleavedGetAndPostOnOneConnection) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  for (int i = 0; i < 10; ++i) {
    auto get = client.Get("/g");
    ASSERT_TRUE(get.ok());
    auto post = client.Post("/p", "b" + std::to_string(i));
    ASSERT_TRUE(post.ok());
    EXPECT_EQ(post->body, "POST /p q=<none> body=b" + std::to_string(i));
  }
}

TEST(UrlDecodeTest, Basics) {
  EXPECT_EQ(UrlDecode("a%20b"), "a b");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("%2F%3f"), "/?");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  EXPECT_EQ(UrlDecode("bad%zz"), "bad%zz");  // invalid escapes pass through
  EXPECT_EQ(UrlDecode("%"), "%");            // trailing percent
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());
  const uint16_t first_port = server.port();
  EXPECT_GT(first_port, 0);
  server.Stop();
  server.Stop();  // no crash
}

TEST(HttpServerTest, HandlerExceptionYields500) {
  HttpServer server([](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("boom");
  });
  ASSERT_TRUE(server.Start(0).ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto response = client.Get("/explode");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 500);
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestRejected) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());
  // Raw socket speaking garbage.
  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  // The client API only sends valid requests, so craft a malformed one by
  // using Get with a path that yields a bad request line (embedded space).
  auto response = client.Get("/a b");  // "GET /a b HTTP/1.1" -> 3+ spaces
  // Server either parses leniently (rfind splits off version) or rejects;
  // in both cases it must respond rather than hang.
  ASSERT_TRUE(response.ok());
  server.Stop();
}

}  // namespace
}  // namespace serenade
