#include "serving/http.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include <gtest/gtest.h>

namespace serenade {
namespace {

HttpResponse EchoHandler(const HttpRequest& request) {
  HttpResponse response;
  response.body = request.method + " " + request.path + " q=" +
                  request.Param("q", "<none>") + " body=" + request.body;
  response.content_type = "text/plain";
  return response;
}

class HttpTest : public testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<HttpServer>(EchoHandler);
    ASSERT_TRUE(server_->Start(0).ok());
  }
  void TearDown() override { server_->Stop(); }
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpTest, SimpleGet) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto response = client.Get("/hello?q=world");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "GET /hello q=world body=");
}

TEST_F(HttpTest, UrlDecoding) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto response = client.Get("/path?q=a%2Cb+c");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "GET /path q=a,b c body=");
}

TEST_F(HttpTest, KeepAliveReusesConnection) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  for (int i = 0; i < 50; ++i) {
    auto response = client.Get("/r?q=" + std::to_string(i));
    ASSERT_TRUE(response.ok()) << "request " << i;
    EXPECT_EQ(response->body, "GET /r q=" + std::to_string(i) + " body=");
  }
  EXPECT_EQ(server_->requests_served(), 50u);
}

TEST_F(HttpTest, ConcurrentClients) {
  constexpr int kClients = 8, kRequests = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect(server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        auto response = client.Get("/c?q=" + std::to_string(c * 1000 + i));
        if (!response.ok() ||
            response->body !=
                "GET /c q=" + std::to_string(c * 1000 + i) + " body=") {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->requests_served(),
            static_cast<uint64_t>(kClients * kRequests));
}

TEST_F(HttpTest, MultipleSequentialConnections) {
  for (int i = 0; i < 5; ++i) {
    HttpClient client;
    ASSERT_TRUE(client.Connect(server_->port()).ok());
    auto response = client.Get("/seq");
    ASSERT_TRUE(response.ok());
    client.Close();
  }
}

TEST_F(HttpTest, PostBodyRoundTrip) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto response = client.Post("/submit?q=1", "{\"payload\":42}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "POST /submit q=1 body={\"payload\":42}");
}

TEST_F(HttpTest, PostEmptyBody) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto response = client.Post("/submit", "");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "POST /submit q=<none> body=");
}

TEST_F(HttpTest, InterleavedGetAndPostOnOneConnection) {
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  for (int i = 0; i < 10; ++i) {
    auto get = client.Get("/g");
    ASSERT_TRUE(get.ok());
    auto post = client.Post("/p", "b" + std::to_string(i));
    ASSERT_TRUE(post.ok());
    EXPECT_EQ(post->body, "POST /p q=<none> body=b" + std::to_string(i));
  }
}

TEST(UrlDecodeTest, Basics) {
  EXPECT_EQ(UrlDecode("a%20b"), "a b");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("%2F%3f"), "/?");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  EXPECT_EQ(UrlDecode("bad%zz"), "bad%zz");  // invalid escapes pass through
  EXPECT_EQ(UrlDecode("%"), "%");            // trailing percent
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());
  const uint16_t first_port = server.port();
  EXPECT_GT(first_port, 0);
  server.Stop();
  server.Stop();  // no crash
}

TEST(HttpServerTest, HandlerExceptionYields500) {
  HttpServer server([](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("boom");
  });
  ASSERT_TRUE(server.Start(0).ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto response = client.Get("/explode");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 500);
  server.Stop();
}

// --- client failure paths ---------------------------------------------------

// A raw TCP listener that feeds each accepted connection to a scripted
// session — for serving deliberately broken HTTP that HttpServer would
// never produce.
class RawServer {
 public:
  explicit RawServer(std::function<void(int fd)> session)
      : session_(std::move(session)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (listen_fd_ < 0 ||
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
               sizeof(address)) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
      std::abort();  // test infrastructure failure, not a test outcome
    }
    socklen_t length = sizeof(address);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
    port_ = ntohs(address.sin_port);
    acceptor_ = std::thread([this] {
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;  // listener closed
        session_(fd);
        ::close(fd);
      }
    });
  }

  ~RawServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (acceptor_.joinable()) acceptor_.join();
  }

  uint16_t port() const { return port_; }

 private:
  std::function<void(int)> session_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
};

// Reads until the request's blank line so the peer is not reset before it
// finishes sending.
void DrainRequest(int fd) {
  std::string seen;
  char c;
  while (seen.find("\r\n\r\n") == std::string::npos &&
         ::recv(fd, &c, 1, 0) == 1) {
    seen.push_back(c);
  }
}

TEST(HttpClientFailureTest, ConnectionRefused) {
  // Grab an ephemeral port, then close the listener so nothing is there.
  uint16_t dead_port = 0;
  {
    HttpServer server(EchoHandler);
    ASSERT_TRUE(server.Start(0).ok());
    dead_port = server.port();
    server.Stop();
  }
  HttpClient client(HttpClientOptions{.connect_timeout_ms = 500});
  const Status status = client.Connect(dead_port);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(HttpClientFailureTest, ReadTimeoutSurfacesAsDeadlineExceeded) {
  RawServer server([](int fd) {
    DrainRequest(fd);
    // Never answer; the client's SO_RCVTIMEO must fire.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  });
  HttpClient client(
      HttpClientOptions{.connect_timeout_ms = 500, .io_timeout_ms = 50});
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto response = client.Get("/slow");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(HttpClientFailureTest, MidBodyConnectionReset) {
  RawServer server([](int fd) {
    DrainRequest(fd);
    const char kPartial[] =
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
        "Content-Length: 1000\r\n\r\nonly-a-few-bytes";
    ::send(fd, kPartial, sizeof(kPartial) - 1, MSG_NOSIGNAL);
    // close() without the remaining 984 bytes: mid-body reset.
  });
  HttpClient client(
      HttpClientOptions{.connect_timeout_ms = 500, .io_timeout_ms = 500});
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto response = client.Get("/truncated");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

TEST(HttpClientFailureTest, TruncatedHeaders) {
  RawServer server([](int fd) {
    DrainRequest(fd);
    const char kHalfHeader[] = "HTTP/1.1 200 OK\r\nContent-Le";
    ::send(fd, kHalfHeader, sizeof(kHalfHeader) - 1, MSG_NOSIGNAL);
  });
  HttpClient client(
      HttpClientOptions{.connect_timeout_ms = 500, .io_timeout_ms = 500});
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto response = client.Get("/half");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

TEST(HttpClientFailureTest, OversizedResponseRejected) {
  RawServer server([](int fd) {
    DrainRequest(fd);
    const char kHuge[] =
        "HTTP/1.1 200 OK\r\nContent-Length: 104857600\r\n\r\n";
    ::send(fd, kHuge, sizeof(kHuge) - 1, MSG_NOSIGNAL);
  });
  HttpClient client(
      HttpClientOptions{.connect_timeout_ms = 500, .io_timeout_ms = 500});
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto response = client.Get("/huge");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCorruption);
}

TEST(HttpClientFailureTest, GarbageStatusLine) {
  RawServer server([](int fd) {
    DrainRequest(fd);
    const char kGarbage[] = "NONSENSE NOISE\r\n\r\n";
    ::send(fd, kGarbage, sizeof(kGarbage) - 1, MSG_NOSIGNAL);
  });
  HttpClient client(
      HttpClientOptions{.connect_timeout_ms = 500, .io_timeout_ms = 500});
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto response = client.Get("/garbage");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCorruption);
}

TEST(HttpServerTest, MalformedRequestRejected) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());
  // Raw socket speaking garbage.
  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  // The client API only sends valid requests, so craft a malformed one by
  // using Get with a path that yields a bad request line (embedded space).
  auto response = client.Get("/a b");  // "GET /a b HTTP/1.1" -> 3+ spaces
  // Server either parses leniently (rfind splits off version) or rejects;
  // in both cases it must respond rather than hang.
  ASSERT_TRUE(response.ok());
  server.Stop();
}

// --- router + error envelope -------------------------------------------------

// Router is non-movable (it owns an atomic counter), so tests populate a
// local instance in place.
void SetupTestRouter(Router& router) {
  router.Handle("GET", "/v1/thing", [](const HttpRequest&, Trace*) {
    return HttpResponse::Json("{\"ok\":true}");
  });
  router.Handle("POST", "/v1/thing", [](const HttpRequest& request, Trace*) {
    return HttpResponse::Json("{\"echo\":\"" + request.body + "\"}");
  });
  router.Alias("/thing", "/v1/thing");
}

HttpRequest MakeRequest(const std::string& method, const std::string& path) {
  HttpRequest request;
  request.method = method;
  request.path = path;
  return request;
}

TEST(RouterDispatchTest, DispatchesByMethodAndPath) {
  Router router;
  SetupTestRouter(router);
  Trace trace;
  auto get = router.Dispatch(MakeRequest("GET", "/v1/thing"), &trace);
  EXPECT_EQ(get.status, 200);
  EXPECT_EQ(get.body, "{\"ok\":true}");
  EXPECT_EQ(get.headers.count("Deprecation"), 0u);

  HttpRequest post = MakeRequest("POST", "/v1/thing");
  post.body = "hi";
  EXPECT_EQ(router.Dispatch(post, &trace).body, "{\"echo\":\"hi\"}");
}

TEST(RouterDispatchTest, UnknownPathIs404Envelope) {
  Router router;
  SetupTestRouter(router);
  Trace trace("feedc0de00000001");
  auto response = router.Dispatch(MakeRequest("GET", "/nope"), &trace);
  EXPECT_EQ(response.status, 404);
  // The unified envelope: {"error":{"code","message","trace_id"}}.
  EXPECT_NE(response.body.find("\"error\""), std::string::npos);
  EXPECT_NE(response.body.find("\"code\":\"not_found\""), std::string::npos);
  EXPECT_NE(response.body.find("\"trace_id\":\"feedc0de00000001\""),
            std::string::npos);
}

TEST(RouterDispatchTest, WrongMethodIs405WithAllow) {
  Router router;
  SetupTestRouter(router);
  Trace trace;
  auto response = router.Dispatch(MakeRequest("DELETE", "/v1/thing"), &trace);
  EXPECT_EQ(response.status, 405);
  EXPECT_NE(response.body.find("\"code\":\"method_not_allowed\""),
            std::string::npos);
  // The Allow header lists every registered method for the path.
  EXPECT_EQ(response.headers.at("Allow"), "GET, POST");
}

TEST(RouterDispatchTest, AliasServesSameBodyPlusDeprecationHeader) {
  Router router;
  SetupTestRouter(router);
  Trace trace;
  auto canonical = router.Dispatch(MakeRequest("GET", "/v1/thing"), &trace);
  auto legacy = router.Dispatch(MakeRequest("GET", "/thing"), &trace);
  EXPECT_EQ(legacy.body, canonical.body);
  EXPECT_EQ(legacy.status, canonical.status);
  EXPECT_EQ(legacy.headers.at("Deprecation"), "true");
  EXPECT_EQ(router.deprecated_requests(), 1u);
  EXPECT_EQ(router.CanonicalPath("/thing"), "/v1/thing");
  EXPECT_EQ(router.CanonicalPath("/v1/thing"), "/v1/thing");
}

TEST(ApiErrorTest, EnvelopeShape) {
  auto with_trace = ApiError(413, "too big", "abad1dea00000001");
  EXPECT_EQ(with_trace.status, 413);
  EXPECT_EQ(with_trace.body,
            "{\"error\":{\"code\":\"payload_too_large\",\"message\":"
            "\"too big\",\"trace_id\":\"abad1dea00000001\"}}");
  // Without a trace id the field is omitted, not empty.
  auto without = ApiError(400, "bad \"quoted\" input");
  EXPECT_EQ(without.body,
            "{\"error\":{\"code\":\"bad_request\",\"message\":"
            "\"bad \\\"quoted\\\" input\"}}");
}

TEST(ApiErrorTest, StatusMapping) {
  EXPECT_EQ(HttpStatusForStatus(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpStatusForStatus(Status::NotFound("x")), 404);
  EXPECT_EQ(HttpStatusForStatus(Status::Unavailable("x")), 503);
  EXPECT_EQ(HttpStatusForStatus(Status::DeadlineExceeded("x")), 504);
  EXPECT_EQ(HttpStatusForStatus(Status::Internal("x")), 500);
}

TEST(HttpServerTest, OversizedBodyGets413Envelope) {
  HttpServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());

  // The server rejects on the declared Content-Length without draining
  // the body (and then closes), so a well-behaved HttpClient mid-upload
  // would see a reset — speak raw TCP and send only the headers.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)),
            0);
  const std::string request =
      "POST /echo HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
      std::to_string(kMaxBodyBytes + 1) + "\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));

  std::string response;
  char chunk[1024];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("413"), std::string::npos) << response;
  EXPECT_NE(response.find("\"code\":\"payload_too_large\""),
            std::string::npos)
      << response;
  // Fail-fast rejection poisons the framing (the body is never drained),
  // so the server must refuse to keep the connection alive.
  EXPECT_NE(response.find("Connection: close"), std::string::npos) << response;
  server.Stop();
}

}  // namespace
}  // namespace serenade
