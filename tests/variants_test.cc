#include "core/variants.h"

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/vmis_knn.h"
#include "data/synthetic.h"

namespace serenade {
namespace {

Dataset MakeData(uint64_t seed = 222) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_items = 300;
  config.num_sessions = 2000;
  config.num_days = 5;
  config.cluster_size = 40;
  return GenerateDataset(config);
}

Dataset MakeQueries() {
  SyntheticConfig config;
  config.seed = 223;
  config.num_items = 300;
  config.num_sessions = 40;
  config.num_days = 1;
  config.cluster_size = 40;
  return GenerateDataset(config);
}

// Compares two recommendation lists as item -> score maps. Items present
// in both must score (almost) identically; an item present in only one
// list must be a boundary tie — its score within epsilon of the weakest
// returned score (float summation order differs between the execution
// strategies, so exact rank order at ties is not guaranteed).
void ExpectSameRecommendations(Recommender& a, Recommender& b,
                               const EvolvingSession& session,
                               size_t how_many) {
  const auto ra = a.RecommendNext(session, how_many);
  const auto rb = b.RecommendNext(session, how_many);
  ASSERT_EQ(ra.size(), rb.size()) << a.Name() << " vs " << b.Name();
  if (ra.empty()) return;
  const float boundary =
      std::min(ra.back().score, rb.back().score) - 1e-3f;

  std::map<ItemId, float> map_a, map_b;
  for (const ScoredItem& s : ra) map_a[s.item] = s.score;
  for (const ScoredItem& s : rb) map_b[s.item] = s.score;
  for (const auto& [item, score] : map_a) {
    auto it = map_b.find(item);
    if (it != map_b.end()) {
      ASSERT_NEAR(score, it->second, 1e-3 * (1.0 + std::abs(score)))
          << a.Name() << " vs " << b.Name() << " item " << item;
    } else {
      ASSERT_LE(score, boundary + 2e-3f)
          << a.Name() << " vs " << b.Name() << " item " << item
          << " missing from " << b.Name() << " but scored well";
    }
  }
  for (const auto& [item, score] : map_b) {
    if (map_a.find(item) == map_a.end()) {
      ASSERT_LE(score, boundary + 2e-3f)
          << a.Name() << " vs " << b.Name() << " item " << item
          << " missing from " << a.Name() << " but scored well";
    }
  }
}

// All execution strategies must agree with the reference VMIS-kNN when m
// is large enough that recency eviction / sampling cannot kick in (the
// strategies differ in *when* they sample, which only matters under
// contention for the m slots).
TEST(VariantsTest, AllVariantsMatchVmisWithoutEviction) {
  Dataset train = MakeData();
  KnnConfig config;
  config.m = 1000000;
  config.k = 25;
  SessionIndex index = SessionIndex::Build(train, train.num_sessions());

  VmisKnn vmis(&index, config);
  MaterializingVsKnn materializing(&index, config);
  JoinAggregateVmisKnn join_aggregate(&index, config);
  IncrementalVmisKnn incremental(&index, config);

  Dataset queries = MakeQueries();
  for (const SessionData& query : queries.sessions()) {
    EvolvingSession evolving;
    for (ItemId item : query.items) {
      evolving.push_back(item);
      if (evolving.size() > config.max_session_length) continue;
      ExpectSameRecommendations(vmis, materializing, evolving, 20);
      ExpectSameRecommendations(vmis, join_aggregate, evolving, 20);
      ExpectSameRecommendations(vmis, incremental, evolving, 20);
    }
  }
}

TEST(VariantsTest, JoinAggregateMatchesVmisWithCappedM) {
  // JoinAggregate consumes the same capped postings as VMIS-kNN; with a
  // small k but large m the aggregation semantics still agree as long as
  // the candidate set fits in m.
  Dataset train = MakeData(333);
  KnnConfig config;
  config.m = 100000;
  config.k = 10;
  SessionIndex index = SessionIndex::Build(train, train.num_sessions());
  VmisKnn vmis(&index, config);
  JoinAggregateVmisKnn join_aggregate(&index, config);
  Dataset queries = MakeQueries();
  for (const SessionData& query : queries.sessions()) {
    if (query.items.size() > config.max_session_length) continue;
    ExpectSameRecommendations(vmis, join_aggregate, query.items, 21);
  }
}

TEST(VariantsTest, IncrementalExtensionMatchesReplay) {
  Dataset train = MakeData(444);
  KnnConfig config;
  config.m = 1000000;
  config.k = 15;
  SessionIndex index = SessionIndex::Build(train, train.num_sessions());

  IncrementalVmisKnn grown(&index, config);
  Dataset queries = MakeQueries();
  ASSERT_FALSE(queries.sessions().empty());
  const auto& items = queries.sessions()[0].items;

  // Feed prefixes incrementally...
  EvolvingSession evolving;
  std::vector<ScoredItem> incremental_result;
  for (ItemId item : items) {
    evolving.push_back(item);
    incremental_result = grown.RecommendNext(evolving, 20);
  }
  // ...and compare against a cold replay of the full session.
  IncrementalVmisKnn fresh(&index, config);
  const auto replay_result = fresh.RecommendNext(evolving, 20);
  ASSERT_EQ(incremental_result.size(), replay_result.size());
  for (size_t i = 0; i < replay_result.size(); ++i) {
    EXPECT_EQ(incremental_result[i].item, replay_result[i].item);
    EXPECT_NEAR(incremental_result[i].score, replay_result[i].score, 1e-4);
  }
}

TEST(VariantsTest, IncrementalArrangementGrows) {
  Dataset train = MakeData(555);
  KnnConfig config;
  config.m = 1000000;
  config.k = 15;
  SessionIndex index = SessionIndex::Build(train, train.num_sessions());
  IncrementalVmisKnn model(&index, config);
  EXPECT_EQ(model.ArrangementBytes(), 0u);
  model.RecommendNext({0, 1}, 20);
  const size_t after_two = model.ArrangementBytes();
  EXPECT_GT(after_two, 0u);
  model.RecommendNext({0, 1, 2}, 20);
  EXPECT_GE(model.ArrangementBytes(), after_two);
  model.Reset();
  EXPECT_EQ(model.ArrangementBytes(), 0u);
}

// The boxed (managed-runtime stand-in) variant runs the *identical*
// algorithm, so it must match VMIS-kNN exactly — including in eviction
// regimes — not just without eviction.
TEST(VariantsTest, BoxedMatchesVmisExactlyUnderEviction) {
  Dataset train = MakeData(777);
  for (size_t m : {7u, 50u, 500u}) {
    KnnConfig config;
    config.m = m;
    config.k = std::min<size_t>(20, m);
    SessionIndex index = SessionIndex::Build(train, m);
    VmisKnn vmis(&index, config);
    BoxedVmisKnn boxed(&index, config);

    Dataset queries = MakeQueries();
    for (const SessionData& query : queries.sessions()) {
      const auto a = vmis.NeighborSessions(query.items);
      const auto b = boxed.NeighborSessions(query.items);
      ASSERT_EQ(a.size(), b.size()) << "m=" << m;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].session, b[i].session) << "m=" << m << " rank " << i;
        ASSERT_NEAR(a[i].score, b[i].score, 1e-5);
      }
      ExpectSameRecommendations(vmis, boxed, query.items, 20);
    }
  }
}

TEST(VariantsTest, EmptySessionHandled) {
  Dataset train = MakeData(666);
  KnnConfig config;
  SessionIndex index = SessionIndex::Build(train, 500);
  MaterializingVsKnn materializing(&index, config);
  JoinAggregateVmisKnn join_aggregate(&index, config);
  IncrementalVmisKnn incremental(&index, config);
  EXPECT_TRUE(materializing.RecommendNext({}, 20).empty());
  EXPECT_TRUE(join_aggregate.RecommendNext({}, 20).empty());
  EXPECT_TRUE(incremental.RecommendNext({}, 20).empty());
}

}  // namespace
}  // namespace serenade
