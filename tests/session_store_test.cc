#include "store/session_store.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "store/wal.h"
#include "testing/fault_injection.h"

namespace serenade {
namespace {

// A controllable clock shared with the store under test (atomic so tests
// may advance time from a different thread than the store's callers).
struct ManualClock {
  std::atomic<uint64_t> now{1000};
  ClockFn Fn() {
    return [this] { return now.load(); };
  }
};

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

SessionStoreOptions VolatileOptions(ManualClock& clock) {
  SessionStoreOptions options;
  options.clock = clock.Fn();
  return options;
}

TEST(SessionStoreTest, PutGetRoundTrip) {
  ManualClock clock;
  auto store = SessionStore::Open(VolatileOptions(clock));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("session-1", "1,2,3").ok());
  auto value = (*store)->Get("session-1");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "1,2,3");
}

TEST(SessionStoreTest, MissingKeyIsNotFound) {
  ManualClock clock;
  auto store = SessionStore::Open(VolatileOptions(clock));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Get("ghost").status().code(), StatusCode::kNotFound);
}

TEST(SessionStoreTest, DeleteRemoves) {
  ManualClock clock;
  auto store = SessionStore::Open(VolatileOptions(clock));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "v").ok());
  ASSERT_TRUE((*store)->Delete("k").ok());
  EXPECT_FALSE((*store)->Get("k").ok());
  // Idempotent.
  EXPECT_TRUE((*store)->Delete("k").ok());
}

TEST(SessionStoreTest, MultiGetMixesHitsAndMisses) {
  ManualClock clock;
  auto store = SessionStore::Open(VolatileOptions(clock));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("a", "1").ok());
  ASSERT_TRUE((*store)->Put("b", "2").ok());

  std::vector<std::string> values;
  std::vector<bool> found;
  (*store)->MultiGet({"a", "ghost", "b", "a"}, &values, &found);
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(found, (std::vector<bool>{true, false, true, true}));
  EXPECT_EQ(values[0], "1");
  EXPECT_EQ(values[2], "2");
  EXPECT_EQ(values[3], "1");  // duplicate keys each get the value
}

TEST(SessionStoreTest, MultiGetHonoursTtlAndRefreshesIt) {
  ManualClock clock;
  SessionStoreOptions options = VolatileOptions(clock);
  options.ttl_seconds = 100;
  auto store = SessionStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("fresh", "f").ok());
  clock.now += 60;
  ASSERT_TRUE((*store)->Put("stale", "s").ok());
  clock.now += 60;  // "fresh" is now 120s old, "stale" 60s

  std::vector<std::string> values;
  std::vector<bool> found;
  (*store)->MultiGet({"fresh", "stale"}, &values, &found);
  EXPECT_EQ(found, (std::vector<bool>{false, true}));

  // The batch read refreshed "stale"'s TTL like a single Get would.
  clock.now += 60;
  EXPECT_TRUE((*store)->Get("stale").ok());
}

TEST(SessionStoreTest, MultiPutWritesAllAndLastDuplicateWins) {
  ManualClock clock;
  auto store = SessionStore::Open(VolatileOptions(clock));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)
                  ->MultiPut({{"x", "1"}, {"y", "2"}, {"x", "1,5"}})
                  .ok());
  EXPECT_EQ(*(*store)->Get("x"), "1,5");  // batch order: later wins
  EXPECT_EQ(*(*store)->Get("y"), "2");
  EXPECT_EQ((*store)->Stats().writes, 3u);
}

TEST(SessionStoreTest, MultiPutIsWalDurable) {
  const std::string path = TempPath("multiput.wal");
  ManualClock clock;
  {
    SessionStoreOptions options = VolatileOptions(clock);
    options.wal_path = path;
    auto store = SessionStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->MultiPut({{"m1", "7"}, {"m2", "8,9"}}).ok());
  }
  SessionStoreOptions options = VolatileOptions(clock);
  options.wal_path = path;
  auto reopened = SessionStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(*(*reopened)->Get("m1"), "7");
  EXPECT_EQ(*(*reopened)->Get("m2"), "8,9");
}

TEST(SessionStoreTest, MultiGetExpiredDuplicatesStayDeadWithinTheBatch) {
  ManualClock clock;
  SessionStoreOptions options = VolatileOptions(clock);
  options.ttl_seconds = 100;
  auto store = SessionStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("dead", "d").ok());
  clock.now += 150;  // "dead" expires
  ASSERT_TRUE((*store)->Put("live", "l").ok());

  // The expired key appears twice in one batch, sandwiching a live one:
  // both occurrences must miss identically, and the miss itself must not
  // refresh the corpse back to life for a later read.
  std::vector<std::string> values;
  std::vector<bool> found;
  (*store)->MultiGet({"dead", "live", "dead"}, &values, &found);
  EXPECT_EQ(found, (std::vector<bool>{false, true, false}));
  EXPECT_TRUE(values[0].empty());
  EXPECT_EQ(values[1], "l");
  EXPECT_TRUE(values[2].empty());
  EXPECT_EQ((*store)->Get("dead").status().code(), StatusCode::kNotFound);
}

TEST(SessionStoreTest, SweepExpiredRacingMultiPutLosesNoFreshWrite) {
  ManualClock clock;
  SessionStoreOptions options = VolatileOptions(clock);
  options.ttl_seconds = 100;
  auto opened = SessionStore::Open(options);
  ASSERT_TRUE(opened.ok());
  SessionStore& store = **opened;

  constexpr size_t kKeys = 16;
  std::vector<std::pair<std::string, std::string>> batch;
  for (size_t k = 0; k < kKeys; ++k) {
    batch.emplace_back("old-" + std::to_string(k), "stamped-1000");
  }
  ASSERT_TRUE(store.MultiPut(batch).ok());
  clock.now = 1200;  // every preloaded entry is now expired

  // The sweeper races batched rewrites of the very keys it wants to
  // evict. Time is frozen at 1200, so the race has a deterministic
  // outcome: a sweep may only claim entries still stamped 1000 — any key
  // a MultiPut has touched is stamped 1200 and untouchable until 1300.
  std::thread sweeper([&] {
    for (int i = 0; i < 50; ++i) store.SweepExpired();
  });
  std::thread writer([&] {
    for (int b = 0; b < 50; ++b) {
      for (auto& entry : batch) entry.second = "batch-" + std::to_string(b);
      EXPECT_TRUE(store.MultiPut(batch).ok());
    }
  });
  sweeper.join();
  writer.join();

  for (size_t k = 0; k < kKeys; ++k) {
    auto value = store.Get("old-" + std::to_string(k));
    ASSERT_TRUE(value.ok()) << "eviction swallowed a fresh write to old-"
                            << k << ": " << value.status().ToString();
    EXPECT_EQ(*value, "batch-49");
  }
  EXPECT_EQ(store.SweepExpired(), 0u);
  EXPECT_EQ(store.Stats().live_entries, kKeys);
}

TEST(SessionStoreTest, InjectedMultiPutFailureIsAllOrNothing) {
  ManualClock clock;
  auto store = SessionStore::Open(VolatileOptions(clock));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("keep", "1").ok());

  ScopedFaultInjector injector(31);
  injector->Arm(FaultSite::kStoreMultiPut, FaultRule{1.0, 1, 0});
  const Status rejected =
      (*store)->MultiPut({{"keep", "2"}, {"fresh", "x"}});
  EXPECT_EQ(rejected.code(), StatusCode::kIoError);
  // Rejected means rejected: no half-applied batch.
  EXPECT_EQ(*(*store)->Get("keep"), "1");
  EXPECT_EQ((*store)->Get("fresh").status().code(), StatusCode::kNotFound);

  // Budget spent; the same batch goes through whole.
  ASSERT_TRUE((*store)->MultiPut({{"keep", "2"}, {"fresh", "x"}}).ok());
  EXPECT_EQ(*(*store)->Get("keep"), "2");
  EXPECT_EQ(*(*store)->Get("fresh"), "x");
}

TEST(SessionStoreTest, TtlExpiresInactiveSessions) {
  ManualClock clock;
  SessionStoreOptions options = VolatileOptions(clock);
  options.ttl_seconds = 100;
  auto store = SessionStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("idle", "x").ok());
  clock.now += 101;
  EXPECT_EQ((*store)->Get("idle").status().code(), StatusCode::kNotFound);
}

TEST(SessionStoreTest, GetRefreshesTtl) {
  ManualClock clock;
  SessionStoreOptions options = VolatileOptions(clock);
  options.ttl_seconds = 100;
  auto store = SessionStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("active", "x").ok());
  for (int i = 0; i < 5; ++i) {
    clock.now += 90;  // always touched before expiry
    ASSERT_TRUE((*store)->Get("active").ok()) << "iteration " << i;
  }
}

TEST(SessionStoreTest, SweepEvictsOnlyExpired) {
  ManualClock clock;
  SessionStoreOptions options = VolatileOptions(clock);
  options.ttl_seconds = 100;
  auto store = SessionStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("old", "x").ok());
  clock.now += 60;
  ASSERT_TRUE((*store)->Put("fresh", "y").ok());
  clock.now += 60;  // "old" is now 120s idle, "fresh" 60s
  EXPECT_EQ((*store)->SweepExpired(), 1u);
  EXPECT_FALSE((*store)->Get("old").ok());
  EXPECT_TRUE((*store)->Get("fresh").ok());
}

TEST(SessionStoreTest, UpdateAppendsAtomically) {
  ManualClock clock;
  auto store = SessionStore::Open(VolatileOptions(clock));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*store)
                    ->Update("s",
                             [&](const std::string& current) {
                               return current + (current.empty() ? "" : ",") +
                                      std::to_string(i);
                             })
                    .ok());
  }
  auto value = (*store)->Get("s");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "0,1,2");
}

TEST(SessionStoreTest, StatsAreCounted) {
  ManualClock clock;
  auto store = SessionStore::Open(VolatileOptions(clock));
  ASSERT_TRUE(store.ok());
  (void)(*store)->Put("a", "1");
  (void)(*store)->Get("a");
  (void)(*store)->Get("missing");
  (void)(*store)->Delete("a");
  const SessionStoreStats stats = (*store)->Stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.read_misses, 1u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.live_entries, 0u);
}

TEST(SessionStoreTest, ConcurrentUpdatesAreAtomic) {
  ManualClock clock;
  auto store = SessionStore::Open(VolatileOptions(clock));
  ASSERT_TRUE(store.ok());
  constexpr int kThreads = 8, kIncrements = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        (void)(*store)->Update("counter", [](const std::string& current) {
          const int value = current.empty() ? 0 : std::stoi(current);
          return std::to_string(value + 1);
        });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  auto value = (*store)->Get("counter");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(std::stoi(*value), kThreads * kIncrements);
}

TEST(SessionStoreTest, ConcurrentMixedOpsWithSweeperDoNotRace) {
  // Readers, writers, deleters and a TTL sweeper hammer overlapping keys;
  // the invariant under test is freedom from crashes/deadlocks plus
  // consistent final bookkeeping (runs under the sanitizers in CI-style
  // builds).
  ManualClock clock;
  SessionStoreOptions options = VolatileOptions(clock);
  options.ttl_seconds = 5;
  options.num_shards = 4;
  auto store = SessionStore::Open(options);
  ASSERT_TRUE(store.ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ticks{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4000; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 23);
        switch (i % 4) {
          case 0:
            (void)(*store)->Put(key, "v");
            break;
          case 1:
            (void)(*store)->Get(key);
            break;
          case 2:
            (void)(*store)->Update(
                key, [](const std::string& v) { return v + "x"; });
            break;
          default:
            (void)(*store)->Delete(key);
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      clock.now += 1;  // advance time so TTL expiry actually triggers
      (void)(*store)->SweepExpired();
      ticks.fetch_add(1);
    }
  });
  for (size_t t = 0; t + 1 < threads.size(); ++t) threads[t].join();
  stop.store(true);
  threads.back().join();

  const SessionStoreStats stats = (*store)->Stats();
  EXPECT_EQ(stats.writes, 4u * 2000u);  // 4 threads x (1000 puts + 1000 updates)
  EXPECT_EQ(stats.reads, 4u * 1000u);
  EXPECT_LE(stats.live_entries, 23u);
}

// --- durability -------------------------------------------------------------

TEST(SessionStoreTest, RecoversFromWal) {
  const std::string path = TempPath("recover.wal");
  ManualClock clock;
  {
    SessionStoreOptions options = VolatileOptions(clock);
    options.wal_path = path;
    auto store = SessionStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("a", "1").ok());
    ASSERT_TRUE((*store)->Put("b", "2").ok());
    ASSERT_TRUE((*store)->Delete("a").ok());
  }
  SessionStoreOptions options = VolatileOptions(clock);
  options.wal_path = path;
  auto reopened = SessionStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE((*reopened)->Get("a").ok());
  auto b = (*reopened)->Get("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "2");
}

TEST(SessionStoreTest, RecoveryDropsEntriesExpiredWhileDown) {
  const std::string path = TempPath("expire.wal");
  ManualClock clock;
  SessionStoreOptions options = VolatileOptions(clock);
  options.wal_path = path;
  options.ttl_seconds = 100;
  {
    auto store = SessionStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("s", "v").ok());
  }
  clock.now += 1000;  // store was "down" past the TTL
  auto reopened = SessionStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->Get("s").ok());
}

TEST(SessionStoreTest, TornWalTailIsTolerated) {
  const std::string path = TempPath("torn.wal");
  ManualClock clock;
  SessionStoreOptions options = VolatileOptions(clock);
  options.wal_path = path;
  {
    auto store = SessionStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("a", "1").ok());
    ASSERT_TRUE((*store)->Put("b", "2").ok());
  }
  // Simulate a crash mid-write: chop bytes off the tail.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);

  auto reopened = SessionStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->Get("a").ok());   // first record intact
  EXPECT_FALSE((*reopened)->Get("b").ok());  // torn record dropped
}

TEST(SessionStoreTest, CompactionShrinksWalAndPreservesState) {
  const std::string path = TempPath("compact.wal");
  ManualClock clock;
  SessionStoreOptions options = VolatileOptions(clock);
  options.wal_path = path;
  options.sync_every_write = true;  // make file sizes observable
  auto store = SessionStore::Open(options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Put("key", "value-" + std::to_string(i)).ok());
  }
  const auto before = std::filesystem::file_size(path);
  ASSERT_TRUE((*store)->Compact().ok());
  const auto after = std::filesystem::file_size(path);
  EXPECT_LT(after, before / 10);

  // State survives compaction and a reopen.
  store->reset();
  auto reopened = SessionStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  auto value = (*reopened)->Get("key");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "value-99");
}

TEST(WalTest, ReplayEmptyMissingFile) {
  auto result = ReplayWal("/nonexistent/file.wal", [](const WalRecord&) {});
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(WalTest, ReplayInOrder) {
  const std::string path = TempPath("order.wal");
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer
                    .Append(WalRecord{WalRecordType::kPut,
                                      "k" + std::to_string(i),
                                      "v" + std::to_string(i),
                                      static_cast<uint64_t>(i)})
                    .ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  int next = 0;
  auto replayed = ReplayWal(path, [&](const WalRecord& record) {
    EXPECT_EQ(record.key, "k" + std::to_string(next));
    EXPECT_EQ(record.value, "v" + std::to_string(next));
    EXPECT_EQ(record.timestamp, static_cast<uint64_t>(next));
    ++next;
  });
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 10u);
}

TEST(WalTest, MidFileCorruptionIsReported) {
  const std::string path = TempPath("midcorrupt.wal");
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        writer.Append(WalRecord{WalRecordType::kPut, "key", "value", 1}).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  writer.Close();

  // Flip a byte inside the second record's payload.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() / 2] ^= 0x20;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  auto result = ReplayWal(path, [](const WalRecord&) {});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace serenade
