// Full-pipeline integration tests: offline build -> binary index file ->
// serving over HTTP -> evaluation, plus the incremental-maintenance path
// serving fresh sessions and the TTL janitor actually evicting state.
#include <atomic>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "benchutil/load_generator.h"
#include "benchutil/workload.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "index/index_builder.h"
#include "index/index_format.h"
#include "index/updatable_index.h"
#include "serving/json.h"
#include "serving/server.h"

namespace serenade {
namespace {

TEST(IntegrationTest, OfflinePipelineToServingToEvaluation) {
  // 1. Offline: generate history, build in parallel, write + reload file.
  SyntheticConfig config;
  config.seed = 1001;
  config.num_items = 1500;
  config.num_sessions = 10000;
  config.num_days = 8;
  Dataset dataset = GenerateDataset(config);
  TrainTestSplit split = SplitLastDays(dataset, 1);

  IndexBuilderOptions builder_options;
  builder_options.max_sessions_per_item = 300;
  builder_options.num_threads = 2;
  SessionIndex built = BuildIndexParallel(split.train, builder_options);

  const std::string path = testing::TempDir() + "/integration.index";
  ASSERT_TRUE(WriteIndexFile(path, built).ok());
  auto loaded = ReadIndexFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto index = std::make_shared<SessionIndex>(std::move(loaded).value());

  // 2. Offline evaluation through the library API (sanity floor).
  KnnConfig knn_config;
  knn_config.m = 300;
  knn_config.k = 100;
  VmisKnn model(index.get(), knn_config);
  EvalOptions eval_options;
  eval_options.max_sessions = 200;
  const EvalResult offline = EvaluateRecommender(model, split.test,
                                                 eval_options);
  EXPECT_GT(offline.metrics.Mrr(), 0.05);

  // 3. Serving: run the test sessions through a real HTTP server and
  //    check that the next item is recommended at the same rate as the
  //    offline HitRate (same model behind both paths).
  ServiceConfig service_config;
  service_config.knn = knn_config;
  service_config.rules.filter_unavailable = false;
  service_config.rules.filter_adult = false;
  service_config.rules.max_items = 20;
  ItemCatalog catalog;
  catalog.available.assign(split.train.num_items(), true);
  catalog.adult.assign(split.train.num_items(), false);
  auto service = SerenadeService::Create(index, catalog, service_config);
  ASSERT_TRUE(service.ok());
  SerenadeServer server(std::move(service).value(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  size_t events = 0, hits = 0, served_sessions = 0;
  for (const SessionData& session : split.test.sessions()) {
    if (served_sessions++ >= 150) break;
    const std::string key = "it-" + std::to_string(session.id);
    for (size_t i = 0; i + 1 < session.items.size(); ++i) {
      auto response = client.Get("/recommend?session_id=" + key +
                                 "&item_id=" +
                                 std::to_string(session.items[i]));
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->status, 200);
      auto doc = ParseJson(response->body);
      ASSERT_TRUE(doc.ok());
      ++events;
      for (const JsonValue& value : doc->Find("items")->AsArray()) {
        if (static_cast<ItemId>(value.AsInt()) == session.items[i + 1]) {
          ++hits;
          break;
        }
      }
    }
  }
  ASSERT_GT(events, 100u);
  const double served_hit_rate = static_cast<double>(hits) / events;
  // Offline evaluation cut at @20 as well; rates must be close (the
  // serving path evaluated a subset of sessions).
  EXPECT_NEAR(served_hit_rate, offline.metrics.HitRate(), 0.12);
  server.Stop();
}

TEST(IntegrationTest, JanitorEvictsIdleSessions) {
  SyntheticConfig config;
  config.seed = 1002;
  config.num_items = 200;
  config.num_sessions = 1000;
  config.num_days = 3;
  Dataset train = GenerateDataset(config);
  auto index = std::make_shared<SessionIndex>(SessionIndex::Build(train, 100));

  // Manual clock so TTL expiry is deterministic (atomic: the janitor
  // thread reads it while the test advances it).
  std::atomic<uint64_t> now{1000};
  ServiceConfig service_config;
  service_config.knn.m = 100;
  service_config.knn.k = 50;
  service_config.store.ttl_seconds = 60;
  service_config.store.clock = [&now] { return now.load(); };
  ItemCatalog catalog;
  catalog.available.assign(train.num_items(), true);
  catalog.adult.assign(train.num_items(), false);
  auto service = SerenadeService::Create(index, catalog, service_config);
  ASSERT_TRUE(service.ok());

  ServerConfig server_config;
  server_config.janitor_interval_ms = 30;
  SerenadeServer server(std::move(service).value(), server_config);
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Get("/recommend?session_id=idle&item_id=3").ok());
  EXPECT_EQ(server.service().StoreStats().live_entries, 1u);

  now += 120;  // session is now idle past the TTL
  // Wait for a janitor pass.
  for (int i = 0; i < 100 && server.service().StoreStats().live_entries > 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.service().StoreStats().live_entries, 0u);
  server.Stop();
}

TEST(IntegrationTest, UpdatableIndexServesBrandNewItems) {
  // A brand-new item enters the catalog after the nightly build; with the
  // incremental index it becomes recommendable without a rebuild.
  SyntheticConfig config;
  config.seed = 1003;
  config.num_items = 300;
  config.num_sessions = 2000;
  config.num_days = 4;
  Dataset train = GenerateDataset(config);

  UpdatableSessionIndex index(SessionIndex::Build(train, 200));
  const ItemId new_item = static_cast<ItemId>(train.num_items() + 1);
  // Several fresh sessions pair the new item with item 5.
  for (int i = 0; i < 30; ++i) {
    index.Ingest({5, new_item}, train.max_timestamp() + 100 + i);
  }

  KnnConfig knn_config;
  knn_config.m = 200;
  knn_config.k = 50;
  VmisKnnT<UpdatableSessionIndex> model(&index, knn_config);
  const auto recs = model.RecommendNext({5}, 20);
  bool found = false;
  for (const ScoredItem& rec : recs) found |= rec.item == new_item;
  EXPECT_TRUE(found) << "freshly ingested item must be recommendable";
}

TEST(IntegrationTest, LoadGeneratorAgainstTwoStickyPods) {
  // Sticky routing: every visitor's requests land on one pod, and the two
  // pods together serve everything without error.
  SyntheticConfig config;
  config.seed = 1004;
  config.num_items = 500;
  config.num_sessions = 3000;
  config.num_days = 4;
  Dataset train = GenerateDataset(config);
  auto index = std::make_shared<SessionIndex>(SessionIndex::Build(train, 200));
  ItemCatalog catalog;
  catalog.available.assign(train.num_items(), true);
  catalog.adult.assign(train.num_items(), false);

  ServiceConfig service_config;
  service_config.knn.m = 200;
  service_config.knn.k = 100;

  std::vector<std::unique_ptr<SerenadeServer>> servers;
  std::vector<uint16_t> ports;
  for (int pod = 0; pod < 2; ++pod) {
    auto service = SerenadeService::Create(index, catalog, service_config);
    ASSERT_TRUE(service.ok());
    servers.push_back(std::make_unique<SerenadeServer>(
        std::move(service).value(), ServerConfig{}));
    ASSERT_TRUE(servers.back()->Start().ok());
    ports.push_back(servers.back()->port());
  }

  WorkloadOptions workload_options;
  workload_options.duration_seconds = 1.0;
  const auto events =
      BuildWorkload(train, RateProfile::Constant(300), workload_options);
  LoadGeneratorOptions load_options;
  load_options.connections_per_server = 3;
  const LoadResult result = RunLoad(events, ports, load_options);

  EXPECT_EQ(result.total_errors, 0u);
  EXPECT_EQ(result.total_requests, events.size());
  const uint64_t served =
      servers[0]->requests_served() + servers[1]->requests_served();
  EXPECT_EQ(served, events.size());
  for (auto& server : servers) server->Stop();
}

}  // namespace
}  // namespace serenade
