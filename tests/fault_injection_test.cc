// FaultInjector: the deterministic fault oracle every torture test in
// this repository leans on. The contracts under test:
//   * decisions replay bit-identically from the seed,
//   * budgets cap fires, disarm/re-arm resets a site,
//   * installation is scoped — no injector, no faults, zero behaviour
//     change for unrelated code,
//   * the HttpClient hooks actually produce the advertised failures
//     (refused connects, failed IO absorbed by the keep-alive retry,
//     truncated-but-200 bodies — the health-prober trap).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serving/http.h"
#include "testing/fault_injection.h"

namespace serenade {
namespace {

std::vector<bool> Decisions(FaultInjector& injector, FaultSite site,
                            size_t rolls) {
  std::vector<bool> decisions;
  decisions.reserve(rolls);
  for (size_t i = 0; i < rolls; ++i) {
    decisions.push_back(injector.ShouldFire(site));
  }
  return decisions;
}

TEST(FaultInjectorTest, SameSeedReplaysIdenticalDecisions) {
  FaultInjector a(42), b(42);
  a.Arm(FaultSite::kWalTornWrite, 0.37);
  b.Arm(FaultSite::kWalTornWrite, 0.37);
  const auto decisions_a = Decisions(a, FaultSite::kWalTornWrite, 500);
  const auto decisions_b = Decisions(b, FaultSite::kWalTornWrite, 500);
  EXPECT_EQ(decisions_a, decisions_b);
  EXPECT_EQ(a.fires(FaultSite::kWalTornWrite),
            b.fires(FaultSite::kWalTornWrite));
  // The probability actually bites: neither all-fire nor no-fire.
  EXPECT_GT(a.fires(FaultSite::kWalTornWrite), 0u);
  EXPECT_LT(a.fires(FaultSite::kWalTornWrite), 500u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(1), b(2);
  a.Arm(FaultSite::kHttpRecv, 0.5);
  b.Arm(FaultSite::kHttpRecv, 0.5);
  EXPECT_NE(Decisions(a, FaultSite::kHttpRecv, 256),
            Decisions(b, FaultSite::kHttpRecv, 256));
}

TEST(FaultInjectorTest, RandBelowReplaysFromSeedToo) {
  FaultInjector a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.RandBelow(1000), b.RandBelow(1000));
  }
  EXPECT_EQ(a.RandBelow(0), 0u);
  EXPECT_LT(a.RandBelow(3), 3u);
}

TEST(FaultInjectorTest, BudgetCapsFires) {
  FaultInjector injector(9);
  injector.Arm(FaultSite::kWalAppendFail, FaultRule{1.0, 3, 0});
  size_t fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.ShouldFire(FaultSite::kWalAppendFail)) ++fired;
  }
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(injector.fires(FaultSite::kWalAppendFail), 3u);
  EXPECT_EQ(injector.rolls(FaultSite::kWalAppendFail), 10u);
}

TEST(FaultInjectorTest, UnarmedSitesNeverFireAndRearmResetsCounters) {
  FaultInjector injector(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.ShouldFire(FaultSite::kStoreMultiPut));
  }
  injector.Arm(FaultSite::kStoreMultiPut, 1.0);
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kStoreMultiPut));
  injector.Disarm(FaultSite::kStoreMultiPut);
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kStoreMultiPut));
  EXPECT_EQ(injector.fires(FaultSite::kStoreMultiPut), 0u);  // reset
  // Unarmed sites don't count rolls either: a disarmed hook is a no-op.
  EXPECT_EQ(injector.rolls(FaultSite::kStoreMultiPut), 0u);
}

TEST(FaultInjectorTest, LatencyMicrosReflectsTheArmedRule) {
  FaultInjector injector(13);
  EXPECT_EQ(injector.LatencyMicros(FaultSite::kHttpLatency), 0u);
  injector.Arm(FaultSite::kHttpLatency, FaultRule{1.0, UINT64_MAX, 1500});
  EXPECT_EQ(injector.LatencyMicros(FaultSite::kHttpLatency), 1500u);
}

TEST(FaultInjectorTest, ScopedInstallIsProcessGlobalAndRemovedOnExit) {
  EXPECT_EQ(FaultInjector::Active(), nullptr);
  {
    ScopedFaultInjector scoped(21);
    EXPECT_EQ(FaultInjector::Active(), &*scoped);
    EXPECT_EQ(scoped->seed(), 21u);
  }
  EXPECT_EQ(FaultInjector::Active(), nullptr);
}

TEST(FaultInjectorTest, EverySiteHasADistinctName) {
  std::vector<std::string> names;
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    names.emplace_back(FaultSiteName(static_cast<FaultSite>(i)));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

// ---- HttpClient hooks -------------------------------------------------------

class HttpFaultHookTest : public testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<HttpServer>([](const HttpRequest&) {
      return HttpResponse::Json("{\"status\":\"ok\",\"index_version\":3}");
    });
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpFaultHookTest, InjectedConnectFailureRefusesTheConnection) {
  ScopedFaultInjector injector(31);
  injector->Arm(FaultSite::kHttpConnect, FaultRule{1.0, 1, 0});
  HttpClient client;
  const Status refused = client.Connect(server_->port());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  // Budget exhausted: the next attempt goes through for real.
  EXPECT_TRUE(client.Connect(server_->port()).ok());
}

TEST_F(HttpFaultHookTest, SingleSendFaultIsAbsorbedByKeepAliveRetry) {
  ScopedFaultInjector injector(32);
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());

  // One failed send looks exactly like a stale keep-alive connection, so
  // Get() reconnects and retries — the request still succeeds.
  injector->Arm(FaultSite::kHttpSend, FaultRule{1.0, 1, 0});
  auto response = client.Get("/v1/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(injector->fires(FaultSite::kHttpSend), 1u);

  // Faults on both the first try and the retry surface to the caller.
  injector->Arm(FaultSite::kHttpRecv, FaultRule{1.0, 2, 0});
  EXPECT_FALSE(client.Get("/v1/healthz").ok());
}

TEST_F(HttpFaultHookTest, TruncatedBodyKeepsThe200StatusLine) {
  ScopedFaultInjector injector(33);
  HttpClient client;
  ASSERT_TRUE(client.Connect(server_->port()).ok());
  auto intact = client.Get("/v1/healthz");
  ASSERT_TRUE(intact.ok());

  injector->Arm(FaultSite::kHttpTruncateBody, 1.0);
  HttpClient faulty;
  ASSERT_TRUE(faulty.Connect(server_->port()).ok());
  auto truncated = faulty.Get("/v1/healthz");
  ASSERT_TRUE(truncated.ok());
  // This is the trap the health prober fell into: transport-level success
  // and a 200 status, but the body is a strict prefix of the document.
  EXPECT_EQ(truncated->status, 200);
  EXPECT_LT(truncated->body.size(), intact->body.size());
  EXPECT_EQ(intact->body.rfind(truncated->body, 0), 0u);
}

}  // namespace
}  // namespace serenade
