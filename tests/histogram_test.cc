#include "common/histogram.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace serenade {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.Percentile(0.5), 42u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 64; ++v) h.Record(v);
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(1.0), 63u);
  // Values below 64 land in exact unit buckets.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 32.0, 1.0);
}

TEST(HistogramTest, PercentileWithinRelativeError) {
  Histogram h;
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = 1 + rng.Below(1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.75, 0.9, 0.99, 0.995}) {
    const uint64_t exact = values[static_cast<size_t>(q * (values.size() - 1))];
    const uint64_t approx = h.Percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.05)
        << "q=" << q;
  }
}

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Histogram a, b, combined;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Below(10000);
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Percentile(q), combined.Percentile(q));
  }
}

TEST(HistogramTest, RecordManyEqualsLoop) {
  Histogram a, b;
  a.RecordMany(17, 5);
  for (int i = 0; i < 5; ++i) b.Record(17);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
}

TEST(HistogramTest, LargeValuesDoNotOverflow) {
  Histogram h;
  h.Record(~0ULL);
  h.Record(1ULL << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ULL);
  EXPECT_GE(h.Percentile(1.0), 1ULL << 62);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SummaryContainsFields) {
  Histogram h;
  h.Record(10);
  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("count=1"), std::string::npos);
  EXPECT_NE(summary.find("p90="), std::string::npos);
}

}  // namespace
}  // namespace serenade
