// Swap-under-load: concurrent /recommend traffic while the index is
// hot-swapped must see zero failures, and the published version must be
// observable across /healthz, /stats, and /metrics. Run under ASan and
// TSan by tools/run_sanitized_tests.sh — the point of the RCU snapshot
// design is that a stale scratch recommender can never score against a
// freed index.
#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "index/snapshot.h"
#include "serving/json.h"
#include "serving/server.h"
#include "serving/service.h"

namespace serenade {
namespace {

Dataset MakeDataset(uint64_t seed) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_items = 200;
  config.num_sessions = 1500;
  config.num_days = 4;
  return GenerateDataset(config);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Service-level swap storm: request threads hammer the facade while the
// main thread publishes fresh snapshots. Exercises the pool version
// tagging and snapshot pinning directly, without socket noise.
TEST(IndexSwapTest, ConcurrentRequestsSurviveRepeatedPublishes) {
  const Dataset train = MakeDataset(21);
  auto manager = IndexManager::CreateFromIndex(
      std::make_shared<const SessionIndex>(SessionIndex::Build(train, 500)));

  ServiceConfig config;
  config.knn.m = 500;
  config.knn.k = 100;
  config.max_pooled_recommenders = 4;  // force pool churn under load
  auto created = SerenadeService::Create(
      manager, GenerateCatalog(train.num_items(), 5), config);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto service = std::move(created).value();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const RecommendRequest request{
            "swap-worker-" + std::to_string(t),
            static_cast<ItemId>((t * 31 + i++) % 200), true};
        if (!service->HandleUpdateAndRecommend(request).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Publish a stream of fresh snapshots while traffic is in flight.
  for (uint64_t swap = 0; swap < 8; ++swap) {
    const Dataset fresh = MakeDataset(100 + swap);
    ASSERT_TRUE(manager
                    ->Publish(std::make_shared<const SessionIndex>(
                                  SessionIndex::Build(fresh, 500)),
                              IndexManifest{})
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  stop.store(true);
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(requests.load(), 0u);
  EXPECT_EQ(manager->current_version(), 9u);  // boot v1 + 8 publishes
  EXPECT_LE(service->PooledRecommenders(), 4u);
}

// HTTP-level hot swap: a running SerenadeServer switches to a newly built
// index file via POST /admin/reload with zero failed /recommend requests
// under concurrent load, and the version change is visible on every
// observability surface.
TEST(IndexSwapTest, AdminReloadUnderLoadIsZeroDowntime) {
  const Dataset train_a = MakeDataset(31);
  const Dataset train_b = MakeDataset(32);
  const std::string path_a = TempPath("live_a.index");
  const std::string path_b = TempPath("live_b.index");
  IndexManifest manifest_a;
  manifest_a.version = 1;
  manifest_a.build_id = "build-a";
  IndexManifest manifest_b;
  manifest_b.version = 2;
  manifest_b.build_id = "build-b";
  ASSERT_TRUE(WriteIndexWithManifest(path_a,
                                     SessionIndex::Build(train_a, 500),
                                     manifest_a)
                  .ok());
  ASSERT_TRUE(WriteIndexWithManifest(path_b,
                                     SessionIndex::Build(train_b, 500),
                                     manifest_b)
                  .ok());

  auto manager = IndexManager::CreateFromFile(path_a);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  ServiceConfig config;
  config.knn.m = 500;
  config.knn.k = 100;
  auto service = SerenadeService::Create(
      std::move(manager).value(), GenerateCatalog(train_a.num_items(), 5),
      config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  SerenadeServer server(std::move(service).value(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  HttpClient admin;
  ASSERT_TRUE(admin.Connect(server.port()).ok());

  // Baseline: version 1 everywhere.
  auto health = admin.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(ParseJson(health->body)->Find("index_version")->AsInt(), 1);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect(server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto response =
            client.Get("/recommend?session_id=load-" + std::to_string(t) +
                       "&item_id=" + std::to_string((t * 17 + i++) % 200));
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        requests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Alternate hot swaps A -> B -> A -> … while the load runs. Every swap
  // must succeed and none may fail a client request.
  std::string last_body;
  for (int swap = 0; swap < 6; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const std::string& target = (swap % 2 == 0) ? path_b : path_a;
    auto response = admin.Post("/admin/reload?path=" + target, "");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200) << response->body;
    last_body = response->body;
  }
  stop.store(true);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(requests.load(), 100u);

  // Final state: the last swap targeted path_a (manifest version 1); the
  // reload response reported it and every surface agrees.
  auto reload_doc = ParseJson(last_body);
  ASSERT_TRUE(reload_doc.ok());
  EXPECT_EQ(reload_doc->Find("index_version")->AsInt(), 1);
  EXPECT_EQ(reload_doc->Find("index_source")->AsString(), path_a);

  health = admin.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(ParseJson(health->body)->Find("index_version")->AsInt(), 1);

  auto stats = admin.Get("/stats");
  ASSERT_TRUE(stats.ok());
  auto stats_doc = ParseJson(stats->body);
  ASSERT_TRUE(stats_doc.ok());
  EXPECT_EQ(stats_doc->Find("index_version")->AsInt(), 1);
  EXPECT_EQ(stats_doc->Find("index_build_id")->AsString(), "build-a");
  EXPECT_EQ(stats_doc->Find("index_reloads")->AsInt(), 6);
  EXPECT_EQ(stats_doc->Find("index_reload_failures")->AsInt(), 0);

  auto metrics = admin.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("serenade_index_version 1"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("serenade_index_reloads_total 6"),
            std::string::npos);

  // A failed rollout (bad path) is rejected, counted, and the published
  // snapshot stays put.
  auto bad = admin.Post("/admin/reload?path=" + TempPath("missing.index"), "");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 404);
  stats = admin.Get("/stats");
  stats_doc = ParseJson(stats->body);
  ASSERT_TRUE(stats_doc.ok());
  EXPECT_EQ(stats_doc->Find("index_version")->AsInt(), 1);
  EXPECT_EQ(stats_doc->Find("index_reload_failures")->AsInt(), 1);

  server.Stop();
  std::filesystem::remove(path_a);
  std::filesystem::remove(ManifestPathFor(path_a));
  std::filesystem::remove(path_b);
  std::filesystem::remove(ManifestPathFor(path_b));
}

// The micro-batched request path holds exactly one snapshot pin per batch
// instead of one per request; hot swaps under batched load must stay
// zero-downtime all the same, and batch slots may never mix snapshots
// mid-batch (the pin is taken once and shared).
TEST(IndexSwapTest, BatchedTrafficSurvivesHotSwaps) {
  const Dataset train_a = MakeDataset(41);
  const Dataset train_b = MakeDataset(42);
  const std::string path_a = TempPath("batched_a.index");
  const std::string path_b = TempPath("batched_b.index");
  ASSERT_TRUE(WriteIndexWithManifest(path_a,
                                     SessionIndex::Build(train_a, 500),
                                     IndexManifest{})
                  .ok());
  ASSERT_TRUE(WriteIndexWithManifest(path_b,
                                     SessionIndex::Build(train_b, 500),
                                     IndexManifest{})
                  .ok());

  auto manager = IndexManager::CreateFromFile(path_a);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  ServiceConfig config;
  config.knn.m = 500;
  config.knn.k = 100;
  auto service = SerenadeService::Create(
      std::move(manager).value(), GenerateCatalog(train_a.num_items(), 5),
      config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  ServerConfig server_config;
  server_config.batch.max_batch_size = 8;
  server_config.batch.max_delay_us = 1000;
  server_config.batch.num_workers = 2;
  SerenadeServer server(std::move(service).value(), server_config);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect(server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Alternate single requests and client-side batches so both
        // executor entry points run concurrently with the swaps.
        if (i % 2 == 0) {
          auto response = client.Get(
              "/v1/recommend?session_id=single-" + std::to_string(t) +
              "&item_id=" + std::to_string((t * 13 + i) % 200));
          if (!response.ok() || response->status != 200) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          requests.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::string body = "{\"requests\":[";
          for (int j = 0; j < 4; ++j) {
            if (j > 0) body += ',';
            body += "{\"session_id\":\"batch-" + std::to_string(t) +
                    "\",\"item_id\":" +
                    std::to_string(1 + (t * 29 + i + j) % 200) + "}";
          }
          body += "]}";
          auto response = client.Post("/v1/recommend:batch", body);
          if (!response.ok() || response->status != 200) {
            failures.fetch_add(1, std::memory_order_relaxed);
          } else {
            auto doc = ParseJson(response->body);
            if (!doc.ok()) {
              failures.fetch_add(1, std::memory_order_relaxed);
            } else {
              for (const JsonValue& slot : doc->Find("results")->AsArray()) {
                if (slot.Find("items") == nullptr) {
                  failures.fetch_add(1, std::memory_order_relaxed);
                }
              }
            }
          }
          requests.fetch_add(4, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }

  HttpClient admin;
  ASSERT_TRUE(admin.Connect(server.port()).ok());
  for (int swap = 0; swap < 6; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const std::string& target = (swap % 2 == 0) ? path_b : path_a;
    auto response = admin.Post("/v1/admin/reload?path=" + target, "");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200) << response->body;
  }
  stop.store(true);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(requests.load(), 100u);
  EXPECT_GT(server.executor().batches_executed(), 0u);

  server.Stop();
  std::filesystem::remove(path_a);
  std::filesystem::remove(ManifestPathFor(path_a));
  std::filesystem::remove(path_b);
  std::filesystem::remove(ManifestPathFor(path_b));
}

}  // namespace
}  // namespace serenade
