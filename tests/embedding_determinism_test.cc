// Training determinism for the second retrieval family (mirrors
// index_determinism_test): nightly embedding rollouts trust that the same
// (clicks, seed) reproduce the same artifact, or CRC validation and
// cross-pod artifact comparison mean nothing. Pinned at three levels:
//   * item2vec training is byte-identical across thread counts (the
//     frozen-batch SGD scheme in baselines/item2vec.h),
//   * repeated WriteEmbeddingsWithManifest runs with pinned provenance
//     yield byte-identical files and equal manifest CRCs,
//   * the HNSW graph rebuilt from the same vectors and seed has the same
//     digest — the serving-side half of artifact reproducibility.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "baselines/item2vec.h"
#include "core/embedding.h"
#include "core/hnsw.h"
#include "data/synthetic.h"
#include "index/embedding_format.h"
#include "index/snapshot.h"

namespace serenade {
namespace {

Dataset TrainingSet() {
  SyntheticConfig config;
  config.seed = 1234;
  config.num_items = 200;
  config.num_sessions = 800;
  return GenerateDataset(config);
}

Item2VecConfig SmallTrainer(size_t num_threads) {
  Item2VecConfig config;
  config.dim = 16;
  config.epochs = 2;
  config.seed = 99;
  config.num_threads = num_threads;
  return config;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(EmbeddingDeterminismTest, TrainingIsByteIdenticalAcrossThreadCounts) {
  const Dataset train = TrainingSet();
  double reference_loss = 0.0;
  auto reference = TrainItemEmbeddings(train, SmallTrainer(1),
                                       &reference_loss);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::string reference_bytes = SerializeEmbeddings(*reference);
  ASSERT_FALSE(reference_bytes.empty());

  for (size_t threads : {2, 4}) {
    double loss = 0.0;
    auto parallel = TrainItemEmbeddings(train, SmallTrainer(threads), &loss);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(SerializeEmbeddings(*parallel), reference_bytes)
        << "num_threads=" << threads
        << " diverged from the single-threaded reference";
    EXPECT_EQ(loss, reference_loss)
        << "even the training loss must be thread-count independent";
  }
}

TEST(EmbeddingDeterminismTest, SameSeedSameBytesDifferentSeedDifferent) {
  const Dataset train = TrainingSet();
  auto first = TrainItemEmbeddings(train, SmallTrainer(2));
  auto second = TrainItemEmbeddings(train, SmallTrainer(2));
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(SerializeEmbeddings(*first), SerializeEmbeddings(*second));

  Item2VecConfig other_seed = SmallTrainer(2);
  other_seed.seed = 100;
  auto third = TrainItemEmbeddings(train, other_seed);
  ASSERT_TRUE(third.ok());
  EXPECT_NE(SerializeEmbeddings(*first), SerializeEmbeddings(*third))
      << "a different seed must actually change the model";
}

TEST(EmbeddingDeterminismTest, RebuildWritesByteIdenticalArtifacts) {
  const Dataset train = TrainingSet();
  const std::string dir = testing::TempDir() + "/embedding-determinism";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Provenance pinned: rollout metadata, not a function of the data.
  IndexManifest stamp;
  stamp.version = 3;
  stamp.build_id = "determinism-check";
  stamp.source = "synthetic-1234";
  stamp.built_unix = 1700000000;

  std::string paths[2];
  IndexManifest manifests[2];
  for (int run = 0; run < 2; ++run) {
    paths[run] = dir + "/run" + std::to_string(run) + ".emb";
    auto trained = TrainItemEmbeddings(train, SmallTrainer(run + 1));
    ASSERT_TRUE(trained.ok()) << trained.status().ToString();
    auto manifest = WriteEmbeddingsWithManifest(paths[run], *trained, stamp);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    manifests[run] = *manifest;
  }

  EXPECT_EQ(ReadFileBytes(paths[0]), ReadFileBytes(paths[1]))
      << "rebuild produced a different artifact";
  EXPECT_EQ(manifests[0].index_crc32, manifests[1].index_crc32);
  EXPECT_EQ(manifests[0].index_bytes, manifests[1].index_bytes);
  EXPECT_EQ(ReadFileBytes(ManifestPathFor(paths[0])),
            ReadFileBytes(ManifestPathFor(paths[1])))
      << "manifest sidecars diverged";
}

TEST(EmbeddingDeterminismTest, HnswRebuildHasStableDigest) {
  const Dataset train = TrainingSet();
  auto trained = TrainItemEmbeddings(train, SmallTrainer(2));
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();

  HnswConfig hnsw;
  hnsw.seed = 20260806;
  const HnswIndex first(&*trained, hnsw);
  const HnswIndex second(&*trained, hnsw);
  EXPECT_EQ(first.GraphDigest(), second.GraphDigest())
      << "same vectors + same seed must rebuild the same graph";

  HnswConfig other = hnsw;
  other.seed = 1;
  const HnswIndex reseeded(&*trained, other);
  EXPECT_NE(first.GraphDigest(), reseeded.GraphDigest())
      << "the level draw must actually depend on the seed";
}

}  // namespace
}  // namespace serenade
