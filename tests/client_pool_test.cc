// Unit tests for HttpClientPool: the bounded keep-alive shelf the
// gateway (and health prober) park pod connections on between requests.
#include "serving/client_pool.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serving/http.h"

namespace serenade {
namespace {

HttpResponse OkHandler(const HttpRequest&) {
  HttpResponse response;
  response.body = "ok";
  response.content_type = "text/plain";
  return response;
}

class ClientPoolTest : public testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<HttpServer>(OkHandler);
    ASSERT_TRUE(server_->Start(0).ok());
  }
  void TearDown() override { server_->Stop(); }
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ClientPoolTest, ReleaseThenAcquireReusesConnection) {
  HttpClientPool pool(HttpClientPoolConfig{});
  auto first = pool.Acquire(server_->port());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE((*first)->Get("/a").ok());
  pool.Release(server_->port(), std::move(*first), /*reusable=*/true);
  EXPECT_EQ(pool.IdleCount(server_->port()), 1u);

  auto second = pool.Acquire(server_->port());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE((*second)->Get("/b").ok());
  EXPECT_EQ(pool.IdleCount(server_->port()), 0u);
  EXPECT_EQ(pool.reuses_total(), 1u);
  EXPECT_EQ(pool.acquires_total(), 2u);
  EXPECT_DOUBLE_EQ(pool.ReuseRatio(), 0.5);
  // One TCP connection served both requests.
  EXPECT_LE(server_->stats().accepted, 1u);
}

TEST_F(ClientPoolTest, NonReusableReleaseDiscards) {
  HttpClientPool pool(HttpClientPoolConfig{});
  auto client = pool.Acquire(server_->port());
  ASSERT_TRUE(client.ok());
  pool.Release(server_->port(), std::move(*client), /*reusable=*/false);
  EXPECT_EQ(pool.IdleCount(server_->port()), 0u);
  EXPECT_EQ(pool.discards_total(), 1u);
}

TEST_F(ClientPoolTest, ShelfIsBoundedPerEndpoint) {
  HttpClientPoolConfig config;
  config.max_idle_per_endpoint = 2;
  HttpClientPool pool(config);
  std::vector<std::unique_ptr<HttpClient>> clients;
  for (int i = 0; i < 4; ++i) {
    auto client = pool.Acquire(server_->port());
    ASSERT_TRUE(client.ok());
    clients.push_back(std::move(*client));
  }
  for (auto& client : clients) {
    pool.Release(server_->port(), std::move(client), /*reusable=*/true);
  }
  EXPECT_EQ(pool.IdleCount(server_->port()), 2u);  // overflow dropped
  EXPECT_EQ(pool.discards_total(), 2u);
}

TEST_F(ClientPoolTest, EndpointsDoNotShareShelves) {
  HttpServer other(OkHandler);
  ASSERT_TRUE(other.Start(0).ok());
  HttpClientPool pool(HttpClientPoolConfig{});
  auto a = pool.Acquire(server_->port());
  auto b = pool.Acquire(other.port());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  pool.Release(server_->port(), std::move(*a), /*reusable=*/true);
  pool.Release(other.port(), std::move(*b), /*reusable=*/true);
  EXPECT_EQ(pool.IdleCount(server_->port()), 1u);
  EXPECT_EQ(pool.IdleCount(other.port()), 1u);
  other.Stop();
}

TEST_F(ClientPoolTest, AcquireFailsWhenNothingListens) {
  uint16_t dead_port = 0;
  {
    HttpServer ephemeral(OkHandler);
    ASSERT_TRUE(ephemeral.Start(0).ok());
    dead_port = ephemeral.port();
    ephemeral.Stop();
  }
  HttpClientPoolConfig config;
  config.client.connect_timeout_ms = 200;
  HttpClientPool pool(config);
  auto client = pool.Acquire(dead_port);
  EXPECT_FALSE(client.ok());
}

TEST_F(ClientPoolTest, ConcurrentAcquireReleaseKeepsInvariants) {
  HttpClientPoolConfig config;
  config.max_idle_per_endpoint = 4;
  HttpClientPool pool(config);
  constexpr int kThreads = 4, kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        auto client = pool.Acquire(server_->port());
        if (!client.ok() || !(*client)->Get("/c").ok()) {
          failures.fetch_add(1);
          continue;
        }
        pool.Release(server_->port(), std::move(*client), /*reusable=*/true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(pool.IdleCount(server_->port()), 4u);
  EXPECT_EQ(pool.acquires_total(),
            static_cast<uint64_t>(kThreads * kRounds));
}

}  // namespace
}  // namespace serenade
