#include <unordered_map>

#include <gtest/gtest.h>

#include "benchutil/load_generator.h"
#include "benchutil/workload.h"
#include "data/synthetic.h"
#include "serving/server.h"

namespace serenade {
namespace {

Dataset SmallSessions() {
  SyntheticConfig config;
  config.seed = 303;
  config.num_items = 100;
  config.num_sessions = 200;
  config.num_days = 2;
  return GenerateDataset(config);
}

TEST(RateProfileTest, Shapes) {
  EXPECT_DOUBLE_EQ(RateProfile::Constant(100).RateAt(0.0), 100.0);
  EXPECT_DOUBLE_EQ(RateProfile::Constant(100).RateAt(1.0), 100.0);

  const RateProfile ramp = RateProfile::Ramp(100, 300);
  EXPECT_DOUBLE_EQ(ramp.RateAt(0.0), 100.0);
  EXPECT_DOUBLE_EQ(ramp.RateAt(0.5), 200.0);
  EXPECT_DOUBLE_EQ(ramp.RateAt(1.0), 300.0);

  const RateProfile diurnal = RateProfile::Diurnal(200, 600, 1.0);
  EXPECT_NEAR(diurnal.RateAt(0.0), 200.0, 1.0);   // trough
  EXPECT_NEAR(diurnal.RateAt(0.5), 600.0, 1.0);   // peak
  for (double f = 0.0; f <= 1.0; f += 0.05) {
    EXPECT_GE(diurnal.RateAt(f), 199.0);
    EXPECT_LE(diurnal.RateAt(f), 601.0);
  }
}

TEST(WorkloadTest, EventCountTracksRate) {
  WorkloadOptions options;
  options.duration_seconds = 10.0;
  const auto events =
      BuildWorkload(SmallSessions(), RateProfile::Constant(200), options);
  EXPECT_NEAR(static_cast<double>(events.size()), 2000.0, 30.0);
}

TEST(WorkloadTest, EventsAreTimeOrderedAndInRange) {
  WorkloadOptions options;
  options.duration_seconds = 5.0;
  const auto events =
      BuildWorkload(SmallSessions(), RateProfile::Ramp(50, 400), options);
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].due_micros, events[i - 1].due_micros);
  }
  EXPECT_LE(events.back().due_micros, 5100000u);
}

TEST(WorkloadTest, SessionClicksStayOrdered) {
  Dataset sessions = SmallSessions();
  WorkloadOptions options;
  options.duration_seconds = 20.0;
  const auto events =
      BuildWorkload(sessions, RateProfile::Constant(100), options);

  // Per visitor key, the emitted items must be a prefix of some session's
  // click sequence, in order.
  std::unordered_map<std::string, std::vector<ItemId>> per_visitor;
  for (const LoadEvent& event : events) {
    per_visitor[event.session_key].push_back(event.item);
  }
  size_t checked = 0;
  for (const auto& [key, items] : per_visitor) {
    const size_t dash = key.find('-');
    const size_t session_index = std::stoul(key.substr(1, dash - 1));
    const auto& original = sessions.sessions()[session_index].items;
    ASSERT_LE(items.size(), original.size()) << key;
    for (size_t i = 0; i < items.size(); ++i) {
      ASSERT_EQ(items[i], original[i]) << key << " position " << i;
    }
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(WorkloadTest, ConsentFractionRespected) {
  WorkloadOptions options;
  options.duration_seconds = 20.0;
  options.no_consent_fraction = 0.25;
  const auto events =
      BuildWorkload(SmallSessions(), RateProfile::Constant(200), options);
  size_t without_consent = 0;
  for (const LoadEvent& event : events) {
    if (!event.consent) ++without_consent;
  }
  EXPECT_NEAR(static_cast<double>(without_consent) / events.size(), 0.25,
              0.03);
}

TEST(WorkloadTest, Deterministic) {
  WorkloadOptions options;
  options.duration_seconds = 3.0;
  const auto a =
      BuildWorkload(SmallSessions(), RateProfile::Constant(100), options);
  const auto b =
      BuildWorkload(SmallSessions(), RateProfile::Constant(100), options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].session_key, b[i].session_key);
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].due_micros, b[i].due_micros);
  }
}

TEST(LoadGeneratorTest, EndToEndAgainstRealServer) {
  // Small but real: one serving machine, ~150 requests over 1.5 seconds.
  Dataset train = SmallSessions();
  auto index = std::make_shared<SessionIndex>(SessionIndex::Build(train, 100));
  ServiceConfig config;
  config.knn.m = 100;
  config.knn.k = 50;
  auto service = SerenadeService::Create(
      index, GenerateCatalog(train.num_items(), 1), config);
  ASSERT_TRUE(service.ok());
  SerenadeServer server(std::move(service).value(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  WorkloadOptions workload_options;
  workload_options.duration_seconds = 1.5;
  const auto events =
      BuildWorkload(train, RateProfile::Constant(100), workload_options);

  LoadGeneratorOptions load_options;
  load_options.connections_per_server = 4;
  load_options.bucket_seconds = 0.5;
  const LoadResult result = RunLoad(events, {server.port()}, load_options);

  EXPECT_EQ(result.total_requests, events.size());
  EXPECT_EQ(result.total_errors, 0u);
  EXPECT_GT(result.total_latency_micros.count(), 0u);
  EXPECT_FALSE(result.buckets.empty());
  EXPECT_FALSE(result.FormatTable().empty());
  server.Stop();
}

TEST(LoadGeneratorTest, ProcessCpuSecondsMonotone) {
  const double before = ProcessCpuSeconds();
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i * 0.5;
  EXPECT_GE(ProcessCpuSeconds(), before);
}

}  // namespace
}  // namespace serenade
