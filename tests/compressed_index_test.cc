#include "core/compressed_index.h"

#include <gtest/gtest.h>

#include "core/vmis_knn.h"
#include "data/synthetic.h"

namespace serenade {
namespace {

Dataset MakeData(uint64_t seed = 71) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_items = 500;
  config.num_sessions = 4000;
  config.num_days = 7;
  return GenerateDataset(config);
}

TEST(CompressedIndexTest, DecodesIdenticalContent) {
  Dataset dataset = MakeData();
  SessionIndex flat = SessionIndex::Build(dataset, 100);
  CompressedSessionIndex compressed = CompressedSessionIndex::FromIndex(flat);

  ASSERT_EQ(compressed.num_items(), flat.num_items());
  ASSERT_EQ(compressed.num_sessions(), flat.num_sessions());
  ASSERT_EQ(compressed.max_sessions_per_item(), flat.max_sessions_per_item());

  std::vector<SessionId> postings_scratch;
  std::vector<ItemId> items_scratch;
  for (ItemId item = 0; item < flat.num_items(); ++item) {
    const auto expected = flat.SessionsForItem(item);
    const auto actual = compressed.SessionsForItem(item, &postings_scratch);
    ASSERT_EQ(std::vector<SessionId>(actual.begin(), actual.end()),
              std::vector<SessionId>(expected.begin(), expected.end()))
        << "item " << item;
    ASSERT_FLOAT_EQ(compressed.Idf(item), flat.Idf(item));
  }
  for (SessionId s = 0; s < flat.num_sessions(); ++s) {
    const auto expected = flat.ItemsForSession(s);
    const auto actual = compressed.ItemsForSession(s, &items_scratch);
    ASSERT_EQ(std::vector<ItemId>(actual.begin(), actual.end()),
              std::vector<ItemId>(expected.begin(), expected.end()))
        << "session " << s;
    ASSERT_EQ(compressed.SessionTimestamp(s), flat.SessionTimestamp(s));
  }
}

TEST(CompressedIndexTest, CompressesMeaningfully) {
  Dataset dataset = MakeData(72);
  SessionIndex flat = SessionIndex::Build(dataset, 500);
  CompressedSessionIndex compressed = CompressedSessionIndex::FromIndex(flat);
  EXPECT_LT(compressed.MemoryBytes(), flat.MemoryBytes());
}

TEST(CompressedIndexTest, EmptyIndex) {
  SessionIndex flat = SessionIndex::Build(Dataset(), 10);
  CompressedSessionIndex compressed = CompressedSessionIndex::FromIndex(flat);
  EXPECT_EQ(compressed.num_items(), 0u);
  EXPECT_EQ(compressed.num_sessions(), 0u);
  std::vector<SessionId> scratch;
  EXPECT_TRUE(compressed.SessionsForItem(0, &scratch).empty());
}

TEST(CompressedIndexTest, UnknownIdsAreEmpty) {
  Dataset dataset = MakeData(73);
  CompressedSessionIndex compressed =
      CompressedSessionIndex::FromIndex(SessionIndex::Build(dataset, 50));
  std::vector<SessionId> postings_scratch;
  EXPECT_TRUE(compressed.SessionsForItem(999999, &postings_scratch).empty());
  EXPECT_DOUBLE_EQ(compressed.Idf(999999), 0.0);
}

// The headline property for the future-work experiment: Algorithm 2 over
// the compressed index returns exactly what it returns over the flat one.
class CompressedEquivalenceTest : public testing::TestWithParam<size_t> {};

TEST_P(CompressedEquivalenceTest, QueriesMatchFlatIndex) {
  const size_t m = GetParam();
  Dataset dataset = MakeData(74);
  SessionIndex flat = SessionIndex::Build(dataset, m);
  CompressedSessionIndex compressed = CompressedSessionIndex::FromIndex(flat);

  KnnConfig config;
  config.m = m;
  config.k = std::min<size_t>(100, m);
  VmisKnn flat_model(&flat, config);
  VmisKnnT<CompressedSessionIndex> compressed_model(&compressed, config);

  SyntheticConfig query_config;
  query_config.seed = 75;
  query_config.num_items = 500;
  query_config.num_sessions = 50;
  query_config.num_days = 1;
  Dataset queries = GenerateDataset(query_config);

  for (const SessionData& query : queries.sessions()) {
    EvolvingSession evolving;
    for (ItemId item : query.items) {
      evolving.push_back(item);
      const auto a = flat_model.RecommendNext(evolving, 21);
      const auto b = compressed_model.RecommendNext(evolving, 21);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].item, b[i].item) << "rank " << i;
        ASSERT_FLOAT_EQ(a[i].score, b[i].score);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VariousM, CompressedEquivalenceTest,
                         testing::Values(5, 50, 500));

}  // namespace
}  // namespace serenade
