// Versioned index snapshots: manifest sidecar round trips, IndexManager
// load/validate/publish semantics, RCU pin lifetimes, and the shared
// knn.m compatibility validation that guards both service construction
// and hot-swap reloads.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "index/index_format.h"
#include "index/snapshot.h"

namespace serenade {
namespace {

SessionIndex BuildIndex(uint64_t seed, size_t m = 100) {
  SyntheticConfig config;
  config.seed = seed;
  config.num_items = 150;
  config.num_sessions = 800;
  config.num_days = 3;
  return SessionIndex::Build(GenerateDataset(config), m);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(IndexManifestTest, SidecarRoundTrip) {
  IndexManifest manifest;
  manifest.version = 42;
  manifest.build_id = "nightly-2026-08-06";
  manifest.built_unix = 1780000000;
  manifest.source = "clicks-2026-08-05.csv";
  manifest.max_sessions_per_item = 500;
  manifest.num_sessions = 123;
  manifest.num_items = 45;
  manifest.num_postings = 678;
  manifest.index_bytes = 9012;
  manifest.index_crc32 = 0xDEADBEEF;

  const std::string path = TempPath("roundtrip.manifest");
  ASSERT_TRUE(WriteManifestFile(path, manifest).ok());
  auto read = ReadManifestFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->version, 42u);
  EXPECT_EQ(read->build_id, "nightly-2026-08-06");
  EXPECT_EQ(read->built_unix, 1780000000u);
  EXPECT_EQ(read->source, "clicks-2026-08-05.csv");
  EXPECT_EQ(read->max_sessions_per_item, 500u);
  EXPECT_EQ(read->num_sessions, 123u);
  EXPECT_EQ(read->num_items, 45u);
  EXPECT_EQ(read->num_postings, 678u);
  EXPECT_EQ(read->index_bytes, 9012u);
  EXPECT_EQ(read->index_crc32, 0xDEADBEEFu);
  std::filesystem::remove(path);
}

TEST(IndexManifestTest, MissingSidecarIsNotFound) {
  auto read = ReadManifestFile(TempPath("does-not-exist.manifest"));
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(IndexManifestTest, WriteIndexWithManifestStampsArtifactFacts) {
  const SessionIndex index = BuildIndex(1);
  const std::string path = TempPath("stamped.index");
  IndexManifest manifest;
  manifest.version = 7;
  manifest.build_id = "b7";
  manifest.source = "synthetic";
  auto written = WriteIndexWithManifest(path, index, manifest);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written->num_sessions, index.num_sessions());
  EXPECT_EQ(written->num_items, index.num_items());
  EXPECT_EQ(written->num_postings, index.num_postings());
  EXPECT_EQ(written->max_sessions_per_item, index.max_sessions_per_item());
  EXPECT_GT(written->index_bytes, 0u);

  // The artifact itself must stay loadable by the plain reader.
  auto loaded = ReadIndexFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_sessions(), index.num_sessions());

  // And the sidecar matches what WriteIndexWithManifest returned.
  auto sidecar = ReadManifestFile(ManifestPathFor(path));
  ASSERT_TRUE(sidecar.ok());
  EXPECT_EQ(sidecar->version, 7u);
  EXPECT_EQ(sidecar->index_bytes, written->index_bytes);
  EXPECT_EQ(sidecar->index_crc32, written->index_crc32);
  std::filesystem::remove(path);
  std::filesystem::remove(ManifestPathFor(path));
}

TEST(IndexManagerTest, BootsFromFileWithManifestVersion) {
  const std::string path = TempPath("boot.index");
  IndexManifest manifest;
  manifest.version = 12;
  manifest.build_id = "boot-build";
  ASSERT_TRUE(WriteIndexWithManifest(path, BuildIndex(2), manifest).ok());

  auto manager = IndexManager::CreateFromFile(path);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_EQ((*manager)->current_version(), 12u);
  EXPECT_EQ((*manager)->Current()->manifest().build_id, "boot-build");
  EXPECT_EQ((*manager)->source_path(), path);
  EXPECT_EQ((*manager)->reloads_total(), 0u);
  std::filesystem::remove(path);
  std::filesystem::remove(ManifestPathFor(path));
}

TEST(IndexManagerTest, BootsFromUnversionedArtifactAsVersionOne) {
  const std::string path = TempPath("unversioned.index");
  ASSERT_TRUE(WriteIndexFile(path, BuildIndex(3)).ok());
  auto manager = IndexManager::CreateFromFile(path);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_EQ((*manager)->current_version(), 1u);
  std::filesystem::remove(path);
}

TEST(IndexManagerTest, ReloadPublishesNewVersionAndOldPinSurvives) {
  const std::string path_a = TempPath("swap_a.index");
  const std::string path_b = TempPath("swap_b.index");
  IndexManifest manifest_a;
  manifest_a.version = 1;
  IndexManifest manifest_b;
  manifest_b.version = 2;
  const SessionIndex index_a = BuildIndex(4);
  ASSERT_TRUE(WriteIndexWithManifest(path_a, index_a, manifest_a).ok());
  ASSERT_TRUE(WriteIndexWithManifest(path_b, BuildIndex(5), manifest_b).ok());

  auto manager = IndexManager::CreateFromFile(path_a);
  ASSERT_TRUE(manager.ok());
  auto pinned = (*manager)->Current();
  EXPECT_EQ(pinned->version(), 1u);

  ASSERT_TRUE((*manager)->ReloadFromFile(path_b).ok());
  EXPECT_EQ((*manager)->current_version(), 2u);
  EXPECT_EQ((*manager)->reloads_total(), 1u);
  EXPECT_EQ((*manager)->source_path(), path_b);

  // The pre-swap pin still reads the old index (RCU semantics): its data
  // is untouched by the swap and retires only when the pin drops.
  EXPECT_EQ(pinned->version(), 1u);
  EXPECT_EQ(pinned->index().num_sessions(), index_a.num_sessions());
  EXPECT_GT(pinned->index().SessionsForItem(0).size() +
                pinned->index().num_postings(),
            0u);

  // Empty path re-reads the current source and force-bumps the version so
  // the rollout stays observable.
  ASSERT_TRUE((*manager)->ReloadFromFile().ok());
  EXPECT_EQ((*manager)->current_version(), 3u);

  std::filesystem::remove(path_a);
  std::filesystem::remove(ManifestPathFor(path_a));
  std::filesystem::remove(path_b);
  std::filesystem::remove(ManifestPathFor(path_b));
}

TEST(IndexManagerTest, FailedReloadKeepsCurrentSnapshot) {
  auto manager = IndexManager::CreateFromIndex(
      std::make_shared<const SessionIndex>(BuildIndex(6)), 5);
  EXPECT_EQ(manager->current_version(), 5u);

  // Nonexistent path.
  EXPECT_EQ(manager->ReloadFromFile(TempPath("nope.index")).code(),
            StatusCode::kIoError);
  EXPECT_EQ(manager->current_version(), 5u);
  EXPECT_EQ(manager->reload_failures_total(), 1u);

  // Corrupt artifact: truncate a valid file.
  const std::string path = TempPath("corrupt.index");
  ASSERT_TRUE(WriteIndexFile(path, BuildIndex(7)).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(manager->ReloadFromFile(path).code(), StatusCode::kCorruption);
  EXPECT_EQ(manager->current_version(), 5u);
  EXPECT_EQ(manager->reload_failures_total(), 2u);
  std::filesystem::remove(path);
}

TEST(IndexManagerTest, TornRolloutDetectedByManifestCrc) {
  // Stamp a manifest for index A, then overwrite the artifact with index B
  // without restamping — the load must refuse the mismatched pair.
  const std::string path = TempPath("torn.index");
  ASSERT_TRUE(
      WriteIndexWithManifest(path, BuildIndex(8), IndexManifest{}).ok());
  ASSERT_TRUE(WriteIndexFile(path, BuildIndex(9)).ok());

  auto manager = IndexManager::CreateFromFile(path);
  EXPECT_EQ(manager.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
  std::filesystem::remove(ManifestPathFor(path));
}

TEST(IndexManagerTest, KnnCompatibilityGuardsBootAndReload) {
  const SessionIndex small = BuildIndex(10, /*m=*/50);
  auto manager = IndexManager::CreateFromIndex(
      std::make_shared<const SessionIndex>(BuildIndex(10, /*m=*/500)));

  // Registering a requirement the current snapshot satisfies succeeds …
  ASSERT_TRUE(manager->RequireKnnCompatibility(200).ok());

  // … and from then on an incompatible artifact cannot be published.
  const Status rejected = manager->Publish(
      std::make_shared<const SessionIndex>(small), IndexManifest{});
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(rejected.message(), ValidateIndexForKnn(small, 200).message());
  EXPECT_EQ(manager->reload_failures_total(), 1u);

  // Registering an unsatisfiable requirement fails with the same message.
  const Status too_big = manager->RequireKnnCompatibility(10000);
  EXPECT_EQ(too_big.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(too_big.message(),
            ValidateIndexForKnn(manager->Current()->index(), 10000).message());
}

TEST(IndexManagerTest, PublishAutoAssignsNextVersion) {
  auto manager = IndexManager::CreateFromIndex(
      std::make_shared<const SessionIndex>(BuildIndex(11)), 3);
  ASSERT_TRUE(manager
                  ->Publish(std::make_shared<const SessionIndex>(BuildIndex(12)),
                            IndexManifest{})
                  .ok());
  EXPECT_EQ(manager->current_version(), 4u);
  EXPECT_EQ(manager->Current()->manifest().source, "in-memory");
  EXPECT_EQ(manager->reloads_total(), 1u);
}

}  // namespace
}  // namespace serenade
