#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "obs/trace.h"

namespace serenade {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, CounterExposition) {
  MetricsRegistry registry;
  MetricCounter& hits = registry.AddCounter("test_hits_total", "test hits");
  hits.Increment();
  hits.Increment(41);

  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "# HELP test_hits_total test hits\n"));
  EXPECT_TRUE(Contains(text, "# TYPE test_hits_total counter\n"));
  EXPECT_TRUE(Contains(text, "test_hits_total 42\n"));
}

TEST(MetricsRegistryTest, GaugeExposition) {
  MetricsRegistry registry;
  MetricGauge& depth = registry.AddGauge("test_queue_depth", "queue depth");
  depth.Set(7);
  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "# TYPE test_queue_depth gauge\n"));
  EXPECT_TRUE(Contains(text, "test_queue_depth 7\n"));
}

TEST(MetricsRegistryTest, LabeledFamilyRendersEveryMember) {
  MetricsRegistry registry;
  MetricCounter& a =
      registry.AddCounter("test_reqs_total", "reqs", "backend", "pod-0");
  MetricCounter& b =
      registry.AddCounter("test_reqs_total", "reqs", "backend", "pod-1");
  a.Increment(3);
  b.Increment(5);

  const std::string text = registry.RenderPrometheus();
  // One header for the family, one sample line per member.
  const std::string type_line = "# TYPE test_reqs_total counter\n";
  EXPECT_EQ(text.find(type_line), text.rfind(type_line));
  EXPECT_TRUE(Contains(text, type_line));
  EXPECT_TRUE(Contains(text, "test_reqs_total{backend=\"pod-0\"} 3\n"));
  EXPECT_TRUE(Contains(text, "test_reqs_total{backend=\"pod-1\"} 5\n"));
}

TEST(MetricsRegistryTest, ReregistrationReturnsSameHandle) {
  MetricsRegistry registry;
  MetricCounter& first = registry.AddCounter("test_total", "help");
  MetricCounter& second = registry.AddCounter("test_total", "help");
  EXPECT_EQ(&first, &second);
  first.Increment();
  EXPECT_EQ(second.value(), 1u);

  MetricCounter& labeled_a =
      registry.AddCounter("test_fam_total", "h", "k", "v");
  MetricCounter& labeled_b =
      registry.AddCounter("test_fam_total", "h", "k", "v");
  EXPECT_EQ(&labeled_a, &labeled_b);
}

TEST(MetricsRegistryTest, HistogramRendersSummary) {
  MetricsRegistry registry;
  MetricHistogram& latency =
      registry.AddHistogram("test_latency_microseconds", "latency");
  for (uint64_t v = 1; v <= 100; ++v) latency.Record(v);

  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "# TYPE test_latency_microseconds summary\n"));
  EXPECT_TRUE(Contains(text, "test_latency_microseconds{quantile=\"0.5\"}"));
  EXPECT_TRUE(Contains(text, "test_latency_microseconds{quantile=\"0.99\"}"));
  EXPECT_TRUE(Contains(text, "test_latency_microseconds_count 100\n"));
  EXPECT_TRUE(Contains(text, "test_latency_microseconds_sum"));
}

TEST(MetricsRegistryTest, LabeledHistogramQuantileJoinsLabels) {
  MetricsRegistry registry;
  MetricHistogram& stage = registry.AddHistogram(
      "test_stage_microseconds", "stage latency", "stage", "knn_retrieve");
  stage.Record(10);

  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(
      text,
      "test_stage_microseconds{stage=\"knn_retrieve\",quantile=\"0.9\"}"));
  EXPECT_TRUE(
      Contains(text, "test_stage_microseconds_count{stage=\"knn_retrieve\"}"));
}

TEST(MetricsRegistryTest, CallbackSampledAtScrapeTime) {
  MetricsRegistry registry;
  uint64_t live = 3;
  registry.AddCallback("test_live", "live things", MetricType::kGauge, "",
                       [&live]() -> std::vector<MetricSample> {
                         return {{"", live}};
                       });
  EXPECT_TRUE(Contains(registry.RenderPrometheus(), "test_live 3\n"));
  live = 9;
  EXPECT_TRUE(Contains(registry.RenderPrometheus(), "test_live 9\n"));
}

TEST(MetricsRegistryTest, CallbackFamilyRendersLabeledSamples) {
  MetricsRegistry registry;
  registry.AddCallback("test_healthy", "health", MetricType::kGauge, "backend",
                       []() -> std::vector<MetricSample> {
                         return {{"pod-0", 1}, {"pod-1", 0}};
                       });
  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "test_healthy{backend=\"pod-0\"} 1\n"));
  EXPECT_TRUE(Contains(text, "test_healthy{backend=\"pod-1\"} 0\n"));
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.AddCounter("test_esc_total", "h", "path", "a\"b\\c\nd");
  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "test_esc_total{path=\"a\\\"b\\\\c\\nd\"} 0\n"));
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsLossless) {
  MetricsRegistry registry;
  MetricCounter& counter = registry.AddCounter("test_conc_total", "h");
  MetricHistogram& histogram =
      registry.AddHistogram("test_conc_microseconds", "h");

  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kIterations; ++i) {
        counter.Increment();
        histogram.Record(static_cast<uint64_t>(i % 100) + 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(histogram.Merged().count(),
            static_cast<uint64_t>(kThreads) * kIterations);
  // A scrape concurrent with recording must render the final totals.
  EXPECT_TRUE(Contains(registry.RenderPrometheus(),
                       "test_conc_microseconds_count 80000\n"));
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndScrape) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    // Races scrapes against registration; TSan (and asserts below) catch
    // torn state.
    while (!stop.load()) {
      volatile size_t length = registry.RenderPrometheus().size();
      (void)length;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        registry
            .AddCounter("test_dyn_total", "h", "writer",
                        std::to_string(t) + "-" + std::to_string(i % 10))
            .Increment();
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true);
  scraper.join();

  const std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "test_dyn_total{writer=\"0-0\"} 20\n"));
}

// ---------------------------------------------------------------------------
// Trace / Span

TEST(TraceTest, GeneratedIdsAreValidAndUnique) {
  std::vector<std::string> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(GenerateTraceId());
  for (const std::string& id : ids) {
    EXPECT_EQ(id.size(), 16u);
    EXPECT_TRUE(IsValidTraceId(id)) << id;
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "trace ids must be process-unique";
}

TEST(TraceTest, IdValidation) {
  EXPECT_TRUE(IsValidTraceId("0123456789abcdef"));
  EXPECT_TRUE(IsValidTraceId("ABCDEF"));
  EXPECT_TRUE(IsValidTraceId("f"));
  EXPECT_FALSE(IsValidTraceId(""));
  EXPECT_FALSE(IsValidTraceId("xyz"));
  EXPECT_FALSE(IsValidTraceId("deadbeef "));
  EXPECT_FALSE(IsValidTraceId(std::string(65, 'a')));
}

TEST(TraceTest, AdoptedIdIsKept) {
  Trace trace("cafebabe");
  EXPECT_EQ(trace.id(), "cafebabe");
}

TEST(TraceTest, SpanRecordsElapsedTime) {
  Trace trace;
  {
    Span span(&trace, TraceStage::kKnnRetrieve);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(trace.StageCount(TraceStage::kKnnRetrieve), 1u);
  EXPECT_GE(trace.StageMicros(TraceStage::kKnnRetrieve), 1000u);
  // Total request time covers every stage within it.
  EXPECT_GE(trace.TotalMicros(),
            trace.StageMicros(TraceStage::kKnnRetrieve));
}

TEST(TraceTest, SpanEndIsIdempotent) {
  Trace trace;
  Span span(&trace, TraceStage::kRank);
  span.End();
  span.End();  // destructor will call End() a third time
  EXPECT_EQ(trace.StageCount(TraceStage::kRank), 1u);
}

TEST(TraceTest, NullTraceSpanIsNoOp) {
  Span span(nullptr, TraceStage::kParse);
  span.End();  // must not crash
}

TEST(TraceTest, RepeatedStagesAccumulate) {
  Trace trace;
  trace.Record(TraceStage::kStoreGet, 10);
  trace.Record(TraceStage::kStoreGet, 5);
  EXPECT_EQ(trace.StageMicros(TraceStage::kStoreGet), 15u);
  EXPECT_EQ(trace.StageCount(TraceStage::kStoreGet), 2u);
}

TEST(TraceTest, NestedSpansAreMonotone) {
  Trace trace;
  {
    Span outer(&trace, TraceStage::kKnnRetrieve);
    {
      Span inner(&trace, TraceStage::kStoreGet);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The enclosing span covers at least the nested one.
  EXPECT_GE(trace.StageMicros(TraceStage::kKnnRetrieve),
            trace.StageMicros(TraceStage::kStoreGet));
}

TEST(TraceTest, DescribeListsIdTotalAndUsedStagesOnly) {
  Trace trace("abc123");
  trace.Record(TraceStage::kParse, 7);
  trace.Record(TraceStage::kKnnRetrieve, 250);
  const std::string line = trace.Describe();
  EXPECT_TRUE(Contains(line, "trace_id=abc123"));
  EXPECT_TRUE(Contains(line, "total_us="));
  EXPECT_TRUE(Contains(line, "parse_us=7"));
  EXPECT_TRUE(Contains(line, "knn_retrieve_us=250"));
  EXPECT_FALSE(Contains(line, "serialize_us="));
}

// ---------------------------------------------------------------------------
// SlowRequestLogger

class CapturedLog {
 public:
  CapturedLog() {
    SetLogSink([this](LogLevel, const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(line);
    });
  }
  ~CapturedLog() { SetLogSink({}); }

  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> lines_;
};

TEST(SlowRequestLoggerTest, DisabledThresholdNeverLogs) {
  CapturedLog log;
  SlowRequestLogger logger(TraceConfig{});  // threshold 0 = disabled
  Trace trace;
  trace.Record(TraceStage::kParse, 1000000);
  EXPECT_FALSE(logger.MaybeLog(trace, "pod", "/recommend", 200));
  EXPECT_EQ(logger.slow_requests_seen(), 0u);
  EXPECT_TRUE(log.lines().empty());
}

TEST(SlowRequestLoggerTest, LogsRequestsOverThreshold) {
  CapturedLog log;
  TraceConfig config;
  config.slow_request_micros = 1;  // everything is slow
  SlowRequestLogger logger(config);

  Trace trace("feed5eed");
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(logger.MaybeLog(trace, "gateway", "/recommend", 200));
  EXPECT_EQ(logger.slow_requests_seen(), 1u);
  EXPECT_EQ(logger.slow_requests_logged(), 1u);

  const auto lines = log.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(Contains(lines[0], "slow_request"));
  EXPECT_TRUE(Contains(lines[0], "tier=gateway"));
  EXPECT_TRUE(Contains(lines[0], "path=/recommend"));
  EXPECT_TRUE(Contains(lines[0], "status=200"));
  EXPECT_TRUE(Contains(lines[0], "trace_id=feed5eed"));
}

TEST(SlowRequestLoggerTest, SamplingLogsEveryNth) {
  CapturedLog log;
  TraceConfig config;
  config.slow_request_micros = 1;
  config.sample_every_n = 3;
  SlowRequestLogger logger(config);

  int logged = 0;
  for (int i = 0; i < 9; ++i) {
    Trace trace;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    if (logger.MaybeLog(trace, "pod", "/recommend", 200)) ++logged;
  }
  EXPECT_EQ(logger.slow_requests_seen(), 9u);
  EXPECT_EQ(logger.slow_requests_logged(), 3u);
  EXPECT_EQ(logged, 3);
  EXPECT_EQ(log.lines().size(), 3u);
}

TEST(SlowRequestLoggerTest, FastRequestsAreNotSlow) {
  TraceConfig config;
  config.slow_request_micros = 60UL * 1000 * 1000;  // one minute
  SlowRequestLogger logger(config);
  Trace trace;
  EXPECT_FALSE(logger.MaybeLog(trace, "pod", "/recommend", 200));
  EXPECT_EQ(logger.slow_requests_seen(), 0u);
}

}  // namespace
}  // namespace serenade
