// Seeded WAL crash torture for the session store. The durability
// contract under attack:
//   * an acknowledged write survives any crash that happens after the
//     ack (100 seeded truncate-at-a-random-byte rounds),
//   * recovery after a *mid-record* truncation leaves a log that is
//     safe to append to (the torn tail is cut off before reopening —
//     without that, the next replay reads garbage mid-file),
//   * a torn write — the process dying inside fwrite — fails the
//     request, and recovery falls back to exactly the acked prefix,
//   * keys that expired before the crash stay dead after it,
//   * an injected replay short-read degrades to a clean prefix of the
//     acked history, never to corruption.
#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "store/session_store.h"
#include "testing/fault_injection.h"

namespace serenade {
namespace {

struct ManualClock {
  uint64_t now = 1000;
  ClockFn Fn() {
    return [this] { return now; };
  }
};

std::string TortureTempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

// One randomly generated store operation and the WAL size observed
// right after it was acknowledged.
struct AckedOp {
  bool is_delete = false;
  std::string key;
  std::string value;
  uint64_t wal_bytes_after = 0;
};

std::string RandomValue(Rng& rng) {
  std::string value;
  const size_t length = rng.Below(24);
  value.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    value.push_back(static_cast<char>('a' + rng.Below(26)));
  }
  return value;
}

std::string KeyFromPool(Rng& rng) {
  return "session-" + std::to_string(rng.Below(8));
}

// The model: the store's expected contents after a prefix of ops.
using Model = std::map<std::string, std::string>;

Model FoldOps(const std::vector<AckedOp>& ops, size_t count) {
  Model model;
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].is_delete) {
      model.erase(ops[i].key);
    } else {
      model[ops[i].key] = ops[i].value;
    }
  }
  return model;
}

void ExpectStoreMatchesModel(SessionStore& store, const Model& model,
                             const std::string& context) {
  for (size_t k = 0; k < 8; ++k) {
    const std::string key = "session-" + std::to_string(k);
    auto value = store.Get(key);
    auto expected = model.find(key);
    if (expected == model.end()) {
      EXPECT_EQ(value.status().code(), StatusCode::kNotFound)
          << context << ": resurrected key " << key;
    } else {
      ASSERT_TRUE(value.ok())
          << context << ": lost acked write to " << key << ": "
          << value.status().ToString();
      EXPECT_EQ(*value, expected->second) << context << ": stale " << key;
    }
  }
}

// Applies `count` seeded ops, asserting every ack, and records the WAL
// size after each (sync_every_write pushes bytes to the OS per op).
std::vector<AckedOp> ApplyOps(SessionStore& store, const std::string& wal,
                              Rng& rng, size_t count) {
  std::vector<AckedOp> ops;
  ops.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AckedOp op;
    op.is_delete = rng.Bernoulli(0.2);
    op.key = KeyFromPool(rng);
    if (op.is_delete) {
      EXPECT_TRUE(store.Delete(op.key).ok());
    } else {
      op.value = RandomValue(rng);
      EXPECT_TRUE(store.Put(op.key, op.value).ok());
    }
    op.wal_bytes_after = std::filesystem::file_size(wal);
    ops.push_back(std::move(op));
  }
  return ops;
}

TEST(WalTortureTest, HundredTruncateAndReplayRoundsLoseNoAckedWrite) {
  for (uint64_t round = 0; round < 100; ++round) {
    SCOPED_TRACE("round seed " + std::to_string(round));
    Rng rng(9000 + round);
    ManualClock clock;
    const std::string wal =
        TortureTempPath("torture-" + std::to_string(round) + ".wal");
    SessionStoreOptions options;
    options.wal_path = wal;
    options.sync_every_write = true;
    options.clock = clock.Fn();

    std::vector<AckedOp> ops;
    {
      auto store = SessionStore::Open(options);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      ops = ApplyOps(**store, wal, rng, 20);
    }  // clean close; the "crash" is the truncation below

    // Chop the log at a random byte — possibly mid-record. Every op whose
    // record ended at or before the cut must survive; later ones are the
    // un-synced tail a real crash would have lost anyway.
    const uint64_t full_size = std::filesystem::file_size(wal);
    const uint64_t cut = rng.Below(full_size + 1);
    std::filesystem::resize_file(wal, cut);
    size_t durable_ops = 0;
    while (durable_ops < ops.size() &&
           ops[durable_ops].wal_bytes_after <= cut) {
      ++durable_ops;
    }
    const Model expected = FoldOps(ops, durable_ops);

    auto recovered = SessionStore::Open(options);
    ASSERT_TRUE(recovered.ok())
        << "cut at byte " << cut << " of " << full_size << ": "
        << recovered.status().ToString();
    ExpectStoreMatchesModel(**recovered, expected,
                            "after cut at " + std::to_string(cut));

    // Regression for the torn-tail fix: recovery truncated the garbage
    // tail, so appending and replaying again must stay clean. Without
    // the fix this second replay hits a CRC mismatch mid-file.
    ASSERT_TRUE((*recovered)->Put("post-crash", "alive").ok());
    recovered->reset();
    auto reopened = SessionStore::Open(options);
    ASSERT_TRUE(reopened.ok())
        << "append-after-recovery corrupted the log: "
        << reopened.status().ToString();
    auto post = (*reopened)->Get("post-crash");
    ASSERT_TRUE(post.ok());
    EXPECT_EQ(*post, "alive");
    ExpectStoreMatchesModel(**reopened, expected, "after reopen");
  }
}

TEST(WalTortureTest, TornWriteFailsTheRequestAndRecoversTheAckedPrefix) {
  for (uint64_t round = 0; round < 20; ++round) {
    SCOPED_TRACE("round seed " + std::to_string(round));
    Rng rng(7700 + round);
    ManualClock clock;
    const std::string wal =
        TortureTempPath("torn-" + std::to_string(round) + ".wal");
    SessionStoreOptions options;
    options.wal_path = wal;
    options.sync_every_write = true;
    options.clock = clock.Fn();

    std::vector<AckedOp> ops;
    {
      auto store = SessionStore::Open(options);
      ASSERT_TRUE(store.ok());
      ops = ApplyOps(**store, wal, rng, 1 + rng.Below(10));

      // The crash itself: the process dies inside fwrite, leaving a
      // random prefix of the record on disk. The write must NOT ack.
      ScopedFaultInjector injector(7700 + round);
      injector->Arm(FaultSite::kWalTornWrite, FaultRule{1.0, 1, 0});
      const Status torn = (*store)->Put(KeyFromPool(rng), "never-acked");
      EXPECT_EQ(torn.code(), StatusCode::kIoError);
      EXPECT_EQ(injector->fires(FaultSite::kWalTornWrite), 1u);
    }

    const Model expected = FoldOps(ops, ops.size());
    auto recovered = SessionStore::Open(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ExpectStoreMatchesModel(**recovered, expected, "after torn write");
  }
}

TEST(WalTortureTest, FailedAppendAcksNothingAndLaterWritesSurvive) {
  ManualClock clock;
  const std::string wal = TortureTempPath("append-fail.wal");
  SessionStoreOptions options;
  options.wal_path = wal;
  options.sync_every_write = true;
  options.clock = clock.Fn();
  {
    auto store = SessionStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("before", "1").ok());
    ScopedFaultInjector injector(5);
    injector->Arm(FaultSite::kWalAppendFail, FaultRule{1.0, 1, 0});
    EXPECT_EQ((*store)->Put("dropped", "x").code(), StatusCode::kIoError);
    // Unlike a torn write, a failed append leaves no partial bytes, so
    // the store keeps running and later writes are durable.
    ASSERT_TRUE((*store)->Put("after", "2").ok());
  }
  auto recovered = SessionStore::Open(options);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*(*recovered)->Get("before"), "1");
  EXPECT_EQ(*(*recovered)->Get("after"), "2");
  EXPECT_EQ((*recovered)->Get("dropped").status().code(),
            StatusCode::kNotFound);
}

TEST(WalTortureTest, ExpiredKeysAreNotResurrectedByRecovery) {
  ManualClock clock;
  const std::string wal = TortureTempPath("expiry-recovery.wal");
  SessionStoreOptions options;
  options.wal_path = wal;
  options.ttl_seconds = 60;
  options.sync_every_write = true;
  options.clock = clock.Fn();
  {
    auto store = SessionStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("stale", "old-session").ok());
    clock.now += 120;  // past the TTL
    ASSERT_TRUE((*store)->Put("fresh", "live-session").ok());
  }
  auto recovered = SessionStore::Open(options);
  ASSERT_TRUE(recovered.ok());
  // Replay sees the stale record in the log but must drop it: its TTL
  // ran out before the crash.
  EXPECT_EQ((*recovered)->Get("stale").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(*(*recovered)->Get("fresh"), "live-session");
  EXPECT_EQ((*recovered)->Stats().live_entries, 1u);
}

TEST(WalTortureTest, ReplayShortReadDegradesToAnAckedPrefix) {
  Rng rng(4242);
  ManualClock clock;
  const std::string wal = TortureTempPath("short-read.wal");
  SessionStoreOptions options;
  options.wal_path = wal;
  options.sync_every_write = true;
  options.clock = clock.Fn();

  std::vector<AckedOp> ops;
  {
    auto store = SessionStore::Open(options);
    ASSERT_TRUE(store.ok());
    ops = ApplyOps(**store, wal, rng, 12);
  }

  // A transient short read during replay must not corrupt recovery: the
  // store opens with *some prefix* of the acked history (this is the one
  // degraded mode that may drop acked-but-unread tail records).
  std::unique_ptr<SessionStore> recovered;
  {
    ScopedFaultInjector injector(4242);
    injector->Arm(FaultSite::kWalReplayShortRead, FaultRule{1.0, 1, 0});
    auto opened = SessionStore::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ(injector->fires(FaultSite::kWalReplayShortRead), 1u);
    recovered = std::move(opened).value();
  }
  bool matches_a_prefix = false;
  for (size_t count = 0; count <= ops.size() && !matches_a_prefix; ++count) {
    const Model model = FoldOps(ops, count);
    matches_a_prefix = true;
    for (size_t k = 0; k < 8 && matches_a_prefix; ++k) {
      const std::string key = "session-" + std::to_string(k);
      auto value = recovered->Get(key);
      auto expected = model.find(key);
      matches_a_prefix = expected == model.end()
                             ? !value.ok()
                             : value.ok() && *value == expected->second;
    }
  }
  EXPECT_TRUE(matches_a_prefix)
      << "short-read recovery produced a state that is no prefix of the "
         "acked history";

  // And the degraded store still accepts and persists new writes.
  ASSERT_TRUE(recovered->Put("recovered", "yes").ok());
  recovered.reset();
  auto reopened = SessionStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("recovered"), "yes");
}

}  // namespace
}  // namespace serenade
