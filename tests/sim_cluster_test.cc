// Crash/recovery torture on the simulated cluster (testing/sim_cluster.h):
// a real ClusterGateway fronting real SerenadeServer pods over loopback,
// combined with the fault injector. The invariants under attack:
//   * the gateway keeps answering while a pod is down (failover) and
//     readmits it after restart,
//   * a restarted pod recovers every session its WAL acknowledged,
//   * a torn WAL write (crash mid-fwrite) fails the request and recovery
//     falls back to the acked prefix,
//   * sessions that expired before a crash stay dead after it,
//   * reported index versions never move backwards across a restart,
//   * the health prober refuses a truncated /v1/healthz body even though
//     the status line says 200 (regression: it used to trust the status
//     line alone).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/hash_ring.h"
#include "cluster/health.h"
#include "serving/json.h"
#include "data/click_log.h"
#include "serving/http.h"
#include "serving/server.h"
#include "serving/service.h"
#include "testing/fault_injection.h"
#include "testing/sim_cluster.h"

namespace serenade {
namespace {

Dataset SmallTrainingSet() {
  std::vector<Click> clicks;
  Timestamp now = 1;
  for (SessionId s = 0; s < 40; ++s) {
    for (size_t i = 0; i < 5; ++i) {
      clicks.push_back(
          Click{s, static_cast<ItemId>(1 + (s * 3 + i * 7) % 30), now++});
    }
  }
  return Dataset::FromClicks(std::move(clicks), /*min_session_length=*/2);
}

std::string FreshWorkDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SimClusterConfig TortureConfig(const std::string& work_dir) {
  SimClusterConfig config;
  config.num_pods = 2;
  config.train = SmallTrainingSet();
  config.knn.m = 50;
  config.knn.k = 10;
  config.work_dir = work_dir;
  config.store.sync_every_write = true;
  // Micro-batching on, so pod kills land mid-batch-window, not only
  // between requests.
  config.batch.max_batch_size = 4;
  config.batch.max_delay_us = 300;
  config.batch.num_workers = 2;
  config.gateway.health.probe_interval_ms = 20;
  config.gateway.health.probe_timeout_ms = 250;
  config.gateway.health.failures_to_eject = 2;
  config.gateway.health.successes_to_readmit = 2;
  config.gateway.forward_timeout_ms = 1000;
  return config;
}

// Polls the cluster's health checker for one backend's state.
bool AwaitBackendHealth(SimCluster& cluster, const std::string& name,
                        bool want_healthy, uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (cluster.health().IsHealthy(name) != want_healthy) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

StatusOr<int> SendClick(uint16_t port, const std::string& session,
                        ItemId item) {
  HttpClient client;
  SERENADE_RETURN_IF_ERROR(client.Connect(port));
  auto response = client.Get("/v1/recommend?session_id=" + session +
                             "&item_id=" + std::to_string(item));
  SERENADE_RETURN_IF_ERROR(response.status());
  return response->status;
}

TEST(SimClusterTest, GatewayFailsOverAndRestartedPodRecoversItsSessions) {
  auto cluster =
      SimCluster::Start(TortureConfig(FreshWorkDir("simcluster-failover")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  // Phase 1: traffic through the front door; every click must be acked.
  const std::vector<ItemId> clicks = {3, 4, 5};
  for (int u = 0; u < 10; ++u) {
    for (ItemId item : clicks) {
      auto status = SendClick(sim.gateway().port(),
                              "user-" + std::to_string(u), item);
      ASSERT_TRUE(status.ok()) << status.status().ToString();
      EXPECT_EQ(*status, 200);
    }
  }

  // Record which sessions pod 0 owns and what it acked for them.
  std::map<std::string, EvolvingSession> pod0_sessions;
  for (int u = 0; u < 10; ++u) {
    const std::string key = "user-" + std::to_string(u);
    auto session = sim.pod(0)->service().GetSession(key);
    if (session.ok()) pod0_sessions[key] = *session;
  }
  ASSERT_FALSE(pod0_sessions.empty())
      << "the ring routed every test session to pod 1; enlarge the user set";
  const uint64_t version_before = sim.health().IndexVersion(sim.pod_name(0));
  EXPECT_GT(version_before, 0u);

  // Phase 2: pod 0 goes down; the prober ejects it and the gateway fails
  // over — the client keeps seeing nothing but 200s.
  sim.KillPod(0);
  ASSERT_TRUE(AwaitBackendHealth(sim, sim.pod_name(0), false, 5000));
  for (int u = 0; u < 10; ++u) {
    auto status =
        SendClick(sim.gateway().port(), "user-" + std::to_string(u), 6);
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    EXPECT_EQ(*status, 200);
  }

  // Phase 3: restart on the original port; readmission plus recovery.
  ASSERT_TRUE(sim.RestartPod(0).ok());
  ASSERT_TRUE(AwaitBackendHealth(sim, sim.pod_name(0), true, 5000));
  for (const auto& [key, expected] : pod0_sessions) {
    auto recovered = sim.pod(0)->service().GetSession(key);
    ASSERT_TRUE(recovered.ok())
        << key << " lost across restart: " << recovered.status().ToString();
    EXPECT_EQ(*recovered, expected) << key;
  }
  // Index versions are monotone across the crash (same artifact here, so
  // equal; a rollback would trip this).
  EXPECT_GE(sim.health().IndexVersion(sim.pod_name(0)), version_before);

  // And the restarted pod serves traffic again.
  auto status = SendClick(sim.pod_port(0), "post-restart", 7);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status, 200);
}

TEST(SimClusterTest, TornWalWriteFailsTheClickAndRecoveryKeepsAckedPrefix) {
  auto cluster =
      SimCluster::Start(TortureConfig(FreshWorkDir("simcluster-torn")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  // Five acked clicks straight at pod 0 (bypassing the gateway pins the
  // session to the pod whose WAL we are about to tear).
  const std::string key = "crash-session";
  for (ItemId item = 1; item <= 5; ++item) {
    auto status = SendClick(sim.pod_port(0), key, item);
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    ASSERT_EQ(*status, 200);
  }

  // The sixth click dies inside the WAL fwrite: a record prefix lands on
  // disk and the request must NOT be acknowledged.
  {
    ScopedFaultInjector injector(616);
    injector->Arm(FaultSite::kWalTornWrite, FaultRule{1.0, 1, 0});
    auto status = SendClick(sim.pod_port(0), key, 6);
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    EXPECT_NE(*status, 200);
    EXPECT_EQ(injector->fires(FaultSite::kWalTornWrite), 1u);
  }

  // Crash + restart: replay truncates the torn tail and recovers exactly
  // the acked prefix — clicks 1..5, never the unacked 6.
  sim.KillPod(0);
  ASSERT_TRUE(sim.RestartPod(0).ok());
  auto recovered = sim.pod(0)->service().GetSession(key);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, (EvolvingSession{1, 2, 3, 4, 5}));

  // The repaired WAL keeps accepting writes (regression for the
  // append-after-garbage bug).
  auto status = SendClick(sim.pod_port(0), key, 7);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status, 200);
  auto extended = sim.pod(0)->service().GetSession(key);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(*extended, (EvolvingSession{1, 2, 3, 4, 5, 7}));
}

TEST(SimClusterTest, ExpiredSessionsStayDeadAcrossPodRestart) {
  auto clock = std::make_shared<std::atomic<uint64_t>>(1000);
  SimClusterConfig config =
      TortureConfig(FreshWorkDir("simcluster-expiry"));
  config.store.ttl_seconds = 60;
  config.store.clock = [clock] { return clock->load(); };
  auto cluster = SimCluster::Start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;

  auto status = SendClick(sim.pod_port(0), "old-session", 2);
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(*status, 200);
  clock->fetch_add(120);  // the old session's TTL runs out
  status = SendClick(sim.pod_port(0), "new-session", 3);
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(*status, 200);

  sim.KillPod(0);
  ASSERT_TRUE(sim.RestartPod(0).ok());
  // Recovery replays both sessions from the WAL but must drop the one
  // whose TTL had already expired — a crash is not a resurrection.
  EXPECT_EQ(sim.pod(0)->service().GetSession("old-session").status().code(),
            StatusCode::kNotFound);
  auto fresh = sim.pod(0)->service().GetSession("new-session");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, (EvolvingSession{3}));
}

// Regression for the health-prober fix: a dying pod (or middlebox) that
// delivers "200 OK" and then cuts the body short used to be counted as
// healthy. The prober must demand a complete JSON document that itself
// says "ok".
TEST(SimClusterTest, HealthProberRejectsTruncatedHealthzBody) {
  Dataset train = SmallTrainingSet();
  auto index =
      std::make_shared<const SessionIndex>(SessionIndex::Build(train, 50));
  ItemCatalog catalog;
  catalog.available.assign(train.num_items(), true);
  catalog.adult.assign(train.num_items(), false);
  ServiceConfig service_config;
  service_config.knn.m = 50;
  service_config.knn.k = 10;
  auto service = SerenadeService::Create(index, catalog, service_config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  SerenadeServer pod(std::move(service).value(), ServerConfig{});
  ASSERT_TRUE(pod.Start().ok());

  HealthCheckerConfig config;
  config.failures_to_eject = 2;
  config.successes_to_readmit = 2;
  HealthChecker checker({BackendEndpoint{"pod", pod.port()}}, config);
  // No Start(): probes run synchronously so every transition is explicit.

  checker.ProbeAllOnce();
  ASSERT_TRUE(checker.IsHealthy("pod"));
  EXPECT_GT(checker.IndexVersion("pod"), 0u);

  {
    ScopedFaultInjector injector(200);
    injector->Arm(FaultSite::kHttpTruncateBody, 1.0);
    // Transport succeeds, the status line says 200, the body is a strict
    // prefix of the health document. Two such probes must eject the pod.
    checker.ProbeAllOnce();
    checker.ProbeAllOnce();
    EXPECT_FALSE(checker.IsHealthy("pod"));
  }

  // Intact bodies readmit it.
  checker.ProbeAllOnce();
  checker.ProbeAllOnce();
  EXPECT_TRUE(checker.IsHealthy("pod"));
  pod.Stop();
}

// --- elastic fleet: replication + /v1/admin/cluster control plane ----------

SimClusterConfig ElasticConfig(const std::string& work_dir) {
  SimClusterConfig config = TortureConfig(work_dir);
  config.replication.enabled = true;
  config.replication.pod.ship_interval_ms = 5;
  return config;
}

// Looks up the pod index owning `key` on the live ring; asserts the owner
// is a known, running pod.
size_t OwnerIndex(SimCluster& sim, const std::string& key) {
  const std::string owner = sim.gateway().OwnerOf(key);
  EXPECT_FALSE(owner.empty());
  for (size_t i = 0; i < sim.num_pods(); ++i) {
    if (sim.pod_name(i) == owner) {
      EXPECT_NE(sim.pod(i), nullptr) << owner << " owns " << key
                                     << " but is down";
      return i;
    }
  }
  ADD_FAILURE() << "ring owner " << owner << " is not a known pod";
  return 0;
}

TEST(SimClusterTest, RemoveDeadPodPromotesItsReplicaOnTheSuccessor) {
  auto cluster =
      SimCluster::Start(ElasticConfig(FreshWorkDir("simcluster-promote")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  std::map<std::string, EvolvingSession> expected;
  for (int u = 0; u < 15; ++u) {
    const std::string key = "rm-" + std::to_string(u);
    for (ItemId item : {3, 4, 5}) {
      auto status = SendClick(sim.gateway().port(), key, item);
      ASSERT_TRUE(status.ok()) << status.status().ToString();
      ASSERT_EQ(*status, 200);
    }
    expected[key] = EvolvingSession{3, 4, 5};
  }

  // Pod 0 dies for good. Its graceful shutdown flushed the WAL shipper,
  // so pod 1 holds a complete replica before the death is even noticed.
  sim.KillPod(0);
  ASSERT_TRUE(AwaitBackendHealth(sim, sim.pod_name(0), false, 5000));

  // The operator declares it dead: the gateway promotes the replica on
  // the ring successor, flips the ring, and bumps the epoch.
  ASSERT_TRUE(sim.RemovePodFromRing(0).ok());
  auto epoch = sim.FetchRingEpoch();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 2u);
  EXPECT_EQ(sim.pod_repl(1)->promotions_total(), 1u);

  // Every acknowledged click survives on the promoted survivor.
  for (const auto& [key, session] : expected) {
    EXPECT_EQ(sim.gateway().OwnerOf(key), sim.pod_name(1));
    auto recovered = sim.pod(1)->service().GetSession(key);
    ASSERT_TRUE(recovered.ok())
        << key << " lost across promotion: " << recovered.status().ToString();
    EXPECT_EQ(*recovered, session) << key;
  }

  // And the fleet keeps taking writes through the front door.
  auto status = SendClick(sim.gateway().port(), "rm-0", 6);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status, 200);
}

TEST(SimClusterTest, StaleEpochMutationIsFencedWith409AndEnvelope) {
  auto cluster =
      SimCluster::Start(ElasticConfig(FreshWorkDir("simcluster-epoch")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  HttpClient client;
  ASSERT_TRUE(client.Connect(sim.gateway().port()).ok());

  // A mutation fenced with yesterday's epoch must bounce with the JSON
  // error envelope, the current epoch, and the epoch response header —
  // and must not touch the membership.
  auto stale = client.Post("/v1/admin/cluster/drain",
                           "{\"epoch\":999,\"name\":\"pod-1\"}");
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_EQ(stale->status, 409);
  EXPECT_EQ(stale->Header("X-Serenade-Ring-Epoch"), "1");
  auto doc = ParseJson(stale->body);
  ASSERT_TRUE(doc.ok()) << stale->body;
  const JsonValue* error = doc->Find("error");
  ASSERT_NE(error, nullptr) << stale->body;
  ASSERT_NE(error->Find("code"), nullptr);
  ASSERT_NE(error->Find("message"), nullptr);
  ASSERT_NE(error->Find("trace_id"), nullptr);
  const JsonValue* current = doc->Find("current_epoch");
  ASSERT_NE(current, nullptr) << stale->body;
  EXPECT_EQ(current->AsInt(), 1);

  // A mutation with no epoch at all is a 400 (the fence is mandatory).
  auto missing =
      client.Post("/v1/admin/cluster/drain", "{\"name\":\"pod-1\"}");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 400);

  // Nothing moved: same epoch, same two members.
  auto epoch = sim.FetchRingEpoch();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);
  EXPECT_EQ(sim.gateway().Members().size(), 2u);
}

// Regression: the gateway used to resolve primary/secondary once per
// request, so a membership change between attempts sent the retry to a
// stale owner. Now every retry re-resolves against the live ring.
TEST(SimClusterTest, RetryReresolvesOwnershipAgainstTheLiveRing) {
  SimClusterConfig config =
      TortureConfig(FreshWorkDir("simcluster-reresolve"));
  // Keep the dead pod marked healthy: ejection would mask the stale-
  // resolution bug by removing it from the candidate chain anyway.
  config.gateway.health.probe_interval_ms = 1000;
  config.gateway.health.failures_to_eject = 1000;
  auto cluster = SimCluster::Start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;

  // A key owned by pod-0 in the 2-ring whose ownership moves to the
  // brand-new pod-2 once it joins the 3-ring.
  HashRing two(128), three(128);
  for (const char* name : {"pod-0", "pod-1"}) two.AddNode(name);
  for (const char* name : {"pod-0", "pod-1", "pod-2"}) three.AddNode(name);
  std::string key;
  for (int i = 0; i < 500 && key.empty(); ++i) {
    const std::string candidate = "rr-" + std::to_string(i);
    if (two.NodeFor(candidate) == "pod-0" &&
        three.NodeFor(candidate) == "pod-2") {
      key = candidate;
    }
  }
  ASSERT_FALSE(key.empty()) << "no key moves pod-0 -> pod-2; widen search";

  // Pod 0 is dead but still marked healthy, so attempt 0 targets it and
  // fails on connect. Between attempts the hook joins pod-2 — the retry
  // must re-resolve and land on the NEW owner, not the stale secondary.
  sim.KillPod(0);
  std::atomic<bool> joined{false};
  StatusOr<size_t> added = Status::Internal("join never ran");
  sim.gateway().set_pre_retry_hook([&] {
    if (joined.exchange(true)) return;
    added = sim.AddPod();
  });

  auto status = SendClick(sim.gateway().port(), key, 5);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(*status, 200);
  ASSERT_TRUE(joined.load()) << "the forward never retried";
  ASSERT_TRUE(added.ok()) << added.status().ToString();

  // The click landed on the post-join owner (pod-2), nowhere else.
  EXPECT_EQ(sim.gateway().OwnerOf(key), "pod-2");
  auto on_new = sim.pod(*added)->service().GetSession(key);
  ASSERT_TRUE(on_new.ok()) << on_new.status().ToString();
  EXPECT_EQ(*on_new, (EvolvingSession{5}));
  EXPECT_EQ(sim.pod(1)->service().GetSession(key).status().code(),
            StatusCode::kNotFound)
      << "retry fell back to the pre-join secondary";
}

// The elastic torture round the control plane is judged by: seeded
// kill/join/drain/remove cycles under live traffic, with the invariant
// that every acknowledged click is always readable on the key's current
// ring owner.
TEST(SimClusterTest, ElasticTortureNeverLosesAckedClicks) {
  auto cluster =
      SimCluster::Start(ElasticConfig(FreshWorkDir("simcluster-elastic")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  std::mt19937 rng(20260807);
  std::vector<size_t> ring = {0, 1};  // pod indices currently in the ring
  std::map<std::string, EvolvingSession> acked;
  uint64_t epoch_bumps = 0;  // joins/drains/removes (restarts don't bump)

  auto verify_all = [&](const char* when) {
    for (const auto& [key, session] : acked) {
      const size_t owner = OwnerIndex(sim, key);
      auto recovered = sim.pod(owner)->service().GetSession(key);
      ASSERT_TRUE(recovered.ok())
          << key << " lost (" << when << "): "
          << recovered.status().ToString();
      ASSERT_EQ(*recovered, session) << key << " diverged (" << when << ")";
    }
  };

  const int kCycles = 100;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    // Traffic burst: five clicks at random sessions through the front
    // door; a 200 is an ack and joins the expected history.
    for (int c = 0; c < 5; ++c) {
      const std::string key =
          "t-" + std::to_string(rng() % 30);
      const ItemId item = static_cast<ItemId>(1 + rng() % 7);
      auto status = SendClick(sim.gateway().port(), key, item);
      ASSERT_TRUE(status.ok()) << status.status().ToString();
      if (*status == 200) acked[key].push_back(item);
    }

    // One seeded membership mutation per cycle. The fleet stays between
    // two and four members; the drained/removed pod is torn down, a
    // restarted pod recovers from its own WAL.
    enum { kJoin, kDrain, kRemove, kRestart };
    std::vector<int> moves;
    if (ring.size() < 4) moves.push_back(kJoin);
    if (ring.size() > 2) {
      moves.push_back(kDrain);
      moves.push_back(kRemove);
    }
    moves.push_back(kRestart);
    switch (moves[rng() % moves.size()]) {
      case kJoin: {
        auto added = sim.AddPod();
        ASSERT_TRUE(added.ok())
            << "cycle " << cycle << ": " << added.status().ToString();
        ring.push_back(*added);
        ++epoch_bumps;
        ASSERT_TRUE(AwaitBackendHealth(sim, sim.pod_name(*added), true, 5000));
        break;
      }
      case kDrain: {
        const size_t victim = ring[rng() % ring.size()];
        ASSERT_TRUE(sim.DrainPod(victim).ok()) << "cycle " << cycle;
        ++epoch_bumps;
        ring.erase(std::find(ring.begin(), ring.end(), victim));
        sim.KillPod(victim);
        break;
      }
      case kRemove: {
        const size_t victim = ring[rng() % ring.size()];
        sim.KillPod(victim);
        ASSERT_TRUE(
            AwaitBackendHealth(sim, sim.pod_name(victim), false, 5000));
        ASSERT_TRUE(sim.RemovePodFromRing(victim).ok())
            << "cycle " << cycle;
        ++epoch_bumps;
        ring.erase(std::find(ring.begin(), ring.end(), victim));
        break;
      }
      case kRestart: {
        const size_t victim = ring[rng() % ring.size()];
        sim.KillPod(victim);
        ASSERT_TRUE(sim.RestartPod(victim).ok()) << "cycle " << cycle;
        ASSERT_TRUE(
            AwaitBackendHealth(sim, sim.pod_name(victim), true, 5000));
        break;
      }
    }
    // Traffic only flows once the whole ring is routable again, so every
    // ack lands on the key's true owner.
    ASSERT_TRUE(sim.AwaitHealthy(ring.size(), 5000))
        << "cycle " << cycle << ": fleet never became whole again";

    if (cycle % 10 == 9) verify_all("mid-torture");
  }
  verify_all("final");

  // The epoch counted every membership mutation exactly once.
  auto epoch = sim.FetchRingEpoch();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u + epoch_bumps);
}

}  // namespace
}  // namespace serenade
