// Crash/recovery torture on the simulated cluster (testing/sim_cluster.h):
// a real ClusterGateway fronting real SerenadeServer pods over loopback,
// combined with the fault injector. The invariants under attack:
//   * the gateway keeps answering while a pod is down (failover) and
//     readmits it after restart,
//   * a restarted pod recovers every session its WAL acknowledged,
//   * a torn WAL write (crash mid-fwrite) fails the request and recovery
//     falls back to the acked prefix,
//   * sessions that expired before a crash stay dead after it,
//   * reported index versions never move backwards across a restart,
//   * the health prober refuses a truncated /v1/healthz body even though
//     the status line says 200 (regression: it used to trust the status
//     line alone).
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/health.h"
#include "data/click_log.h"
#include "serving/http.h"
#include "serving/server.h"
#include "serving/service.h"
#include "testing/fault_injection.h"
#include "testing/sim_cluster.h"

namespace serenade {
namespace {

Dataset SmallTrainingSet() {
  std::vector<Click> clicks;
  Timestamp now = 1;
  for (SessionId s = 0; s < 40; ++s) {
    for (size_t i = 0; i < 5; ++i) {
      clicks.push_back(
          Click{s, static_cast<ItemId>(1 + (s * 3 + i * 7) % 30), now++});
    }
  }
  return Dataset::FromClicks(std::move(clicks), /*min_session_length=*/2);
}

std::string FreshWorkDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SimClusterConfig TortureConfig(const std::string& work_dir) {
  SimClusterConfig config;
  config.num_pods = 2;
  config.train = SmallTrainingSet();
  config.knn.m = 50;
  config.knn.k = 10;
  config.work_dir = work_dir;
  config.store.sync_every_write = true;
  // Micro-batching on, so pod kills land mid-batch-window, not only
  // between requests.
  config.batch.max_batch_size = 4;
  config.batch.max_delay_us = 300;
  config.batch.num_workers = 2;
  config.gateway.health.probe_interval_ms = 20;
  config.gateway.health.probe_timeout_ms = 250;
  config.gateway.health.failures_to_eject = 2;
  config.gateway.health.successes_to_readmit = 2;
  config.gateway.forward_timeout_ms = 1000;
  return config;
}

// Polls the cluster's health checker for one backend's state.
bool AwaitBackendHealth(SimCluster& cluster, const std::string& name,
                        bool want_healthy, uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (cluster.health().IsHealthy(name) != want_healthy) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

StatusOr<int> SendClick(uint16_t port, const std::string& session,
                        ItemId item) {
  HttpClient client;
  SERENADE_RETURN_IF_ERROR(client.Connect(port));
  auto response = client.Get("/v1/recommend?session_id=" + session +
                             "&item_id=" + std::to_string(item));
  SERENADE_RETURN_IF_ERROR(response.status());
  return response->status;
}

TEST(SimClusterTest, GatewayFailsOverAndRestartedPodRecoversItsSessions) {
  auto cluster =
      SimCluster::Start(TortureConfig(FreshWorkDir("simcluster-failover")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  // Phase 1: traffic through the front door; every click must be acked.
  const std::vector<ItemId> clicks = {3, 4, 5};
  for (int u = 0; u < 10; ++u) {
    for (ItemId item : clicks) {
      auto status = SendClick(sim.gateway().port(),
                              "user-" + std::to_string(u), item);
      ASSERT_TRUE(status.ok()) << status.status().ToString();
      EXPECT_EQ(*status, 200);
    }
  }

  // Record which sessions pod 0 owns and what it acked for them.
  std::map<std::string, EvolvingSession> pod0_sessions;
  for (int u = 0; u < 10; ++u) {
    const std::string key = "user-" + std::to_string(u);
    auto session = sim.pod(0)->service().GetSession(key);
    if (session.ok()) pod0_sessions[key] = *session;
  }
  ASSERT_FALSE(pod0_sessions.empty())
      << "the ring routed every test session to pod 1; enlarge the user set";
  const uint64_t version_before = sim.health().IndexVersion(sim.pod_name(0));
  EXPECT_GT(version_before, 0u);

  // Phase 2: pod 0 goes down; the prober ejects it and the gateway fails
  // over — the client keeps seeing nothing but 200s.
  sim.KillPod(0);
  ASSERT_TRUE(AwaitBackendHealth(sim, sim.pod_name(0), false, 5000));
  for (int u = 0; u < 10; ++u) {
    auto status =
        SendClick(sim.gateway().port(), "user-" + std::to_string(u), 6);
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    EXPECT_EQ(*status, 200);
  }

  // Phase 3: restart on the original port; readmission plus recovery.
  ASSERT_TRUE(sim.RestartPod(0).ok());
  ASSERT_TRUE(AwaitBackendHealth(sim, sim.pod_name(0), true, 5000));
  for (const auto& [key, expected] : pod0_sessions) {
    auto recovered = sim.pod(0)->service().GetSession(key);
    ASSERT_TRUE(recovered.ok())
        << key << " lost across restart: " << recovered.status().ToString();
    EXPECT_EQ(*recovered, expected) << key;
  }
  // Index versions are monotone across the crash (same artifact here, so
  // equal; a rollback would trip this).
  EXPECT_GE(sim.health().IndexVersion(sim.pod_name(0)), version_before);

  // And the restarted pod serves traffic again.
  auto status = SendClick(sim.pod_port(0), "post-restart", 7);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status, 200);
}

TEST(SimClusterTest, TornWalWriteFailsTheClickAndRecoveryKeepsAckedPrefix) {
  auto cluster =
      SimCluster::Start(TortureConfig(FreshWorkDir("simcluster-torn")));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;
  ASSERT_TRUE(sim.AwaitHealthy(2, 5000));

  // Five acked clicks straight at pod 0 (bypassing the gateway pins the
  // session to the pod whose WAL we are about to tear).
  const std::string key = "crash-session";
  for (ItemId item = 1; item <= 5; ++item) {
    auto status = SendClick(sim.pod_port(0), key, item);
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    ASSERT_EQ(*status, 200);
  }

  // The sixth click dies inside the WAL fwrite: a record prefix lands on
  // disk and the request must NOT be acknowledged.
  {
    ScopedFaultInjector injector(616);
    injector->Arm(FaultSite::kWalTornWrite, FaultRule{1.0, 1, 0});
    auto status = SendClick(sim.pod_port(0), key, 6);
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    EXPECT_NE(*status, 200);
    EXPECT_EQ(injector->fires(FaultSite::kWalTornWrite), 1u);
  }

  // Crash + restart: replay truncates the torn tail and recovers exactly
  // the acked prefix — clicks 1..5, never the unacked 6.
  sim.KillPod(0);
  ASSERT_TRUE(sim.RestartPod(0).ok());
  auto recovered = sim.pod(0)->service().GetSession(key);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, (EvolvingSession{1, 2, 3, 4, 5}));

  // The repaired WAL keeps accepting writes (regression for the
  // append-after-garbage bug).
  auto status = SendClick(sim.pod_port(0), key, 7);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status, 200);
  auto extended = sim.pod(0)->service().GetSession(key);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(*extended, (EvolvingSession{1, 2, 3, 4, 5, 7}));
}

TEST(SimClusterTest, ExpiredSessionsStayDeadAcrossPodRestart) {
  auto clock = std::make_shared<std::atomic<uint64_t>>(1000);
  SimClusterConfig config =
      TortureConfig(FreshWorkDir("simcluster-expiry"));
  config.store.ttl_seconds = 60;
  config.store.clock = [clock] { return clock->load(); };
  auto cluster = SimCluster::Start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SimCluster& sim = **cluster;

  auto status = SendClick(sim.pod_port(0), "old-session", 2);
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(*status, 200);
  clock->fetch_add(120);  // the old session's TTL runs out
  status = SendClick(sim.pod_port(0), "new-session", 3);
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(*status, 200);

  sim.KillPod(0);
  ASSERT_TRUE(sim.RestartPod(0).ok());
  // Recovery replays both sessions from the WAL but must drop the one
  // whose TTL had already expired — a crash is not a resurrection.
  EXPECT_EQ(sim.pod(0)->service().GetSession("old-session").status().code(),
            StatusCode::kNotFound);
  auto fresh = sim.pod(0)->service().GetSession("new-session");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, (EvolvingSession{3}));
}

// Regression for the health-prober fix: a dying pod (or middlebox) that
// delivers "200 OK" and then cuts the body short used to be counted as
// healthy. The prober must demand a complete JSON document that itself
// says "ok".
TEST(SimClusterTest, HealthProberRejectsTruncatedHealthzBody) {
  Dataset train = SmallTrainingSet();
  auto index =
      std::make_shared<const SessionIndex>(SessionIndex::Build(train, 50));
  ItemCatalog catalog;
  catalog.available.assign(train.num_items(), true);
  catalog.adult.assign(train.num_items(), false);
  ServiceConfig service_config;
  service_config.knn.m = 50;
  service_config.knn.k = 10;
  auto service = SerenadeService::Create(index, catalog, service_config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  SerenadeServer pod(std::move(service).value(), ServerConfig{});
  ASSERT_TRUE(pod.Start().ok());

  HealthCheckerConfig config;
  config.failures_to_eject = 2;
  config.successes_to_readmit = 2;
  HealthChecker checker({BackendEndpoint{"pod", pod.port()}}, config);
  // No Start(): probes run synchronously so every transition is explicit.

  checker.ProbeAllOnce();
  ASSERT_TRUE(checker.IsHealthy("pod"));
  EXPECT_GT(checker.IndexVersion("pod"), 0u);

  {
    ScopedFaultInjector injector(200);
    injector->Arm(FaultSite::kHttpTruncateBody, 1.0);
    // Transport succeeds, the status line says 200, the body is a strict
    // prefix of the health document. Two such probes must eject the pod.
    checker.ProbeAllOnce();
    checker.ProbeAllOnce();
    EXPECT_FALSE(checker.IsHealthy("pod"));
  }

  // Intact bodies readmit it.
  checker.ProbeAllOnce();
  checker.ProbeAllOnce();
  EXPECT_TRUE(checker.IsHealthy("pod"));
  pod.Stop();
}

}  // namespace
}  // namespace serenade
