// Bit-identity of the SIMD kernels (core/knn_kernels.h) against their
// scalar references at the alignment and remainder edges where vector
// code goes wrong: lengths 0, 1, width-1, width, width+1, 2*width+1 and
// id arrays starting at every offset 0..3 from the allocation base. Each
// kernel runs once per level on identical inputs; outputs (return
// values, slot bytes, touched lists) must match exactly — the contract
// the differential oracle holds end-to-end, pinned here at kernel
// granularity so a divergence names the kernel directly.
//
// On builds or machines without a vector level (SERENADE_SIMD=OFF, or no
// AVX2), both runs take the scalar path and the suite degenerates to a
// self-consistency check — kept running rather than skipped so the
// harness itself stays covered in the scalar CI job.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "core/knn_kernels.h"

namespace serenade {
namespace {

using simd::Level;

// Lengths around the 8-lane block width, plus 0/1 and a multi-block+tail
// shape. Mask kernels and FillRun cap at kBlockLanes; the loop kernels
// take them all.
constexpr size_t kEdgeLengths[] = {0, 1, 7, 8, 9, 16, 17, 33};
constexpr size_t kMaxOffset = 4;  // unaligned bases 0..3
constexpr uint32_t kEpoch = 7;

struct KernelCase {
  std::vector<SessionId> ids;       // distinct ids, kMaxOffset slack ahead
  std::vector<Timestamp> times;     // parallel to ids
  std::vector<simd::SessionSlot> session_slots;
  std::vector<simd::ItemScoreSlot> score_slots;
  std::vector<simd::ItemPositionSlot> position_slots;
  std::vector<float> idf;
};

// A universe of 160 ids with ~half the slots live at kEpoch, scores and
// timestamps drawn small enough to collide often (ties are the hard
// part of the Beats* predicates). ids is a permutation of the whole
// universe, so every window — any offset, any edge length — holds
// distinct ids, the precondition all the run kernels share.
KernelCase MakeCase(uint64_t seed) {
  Rng rng(seed);
  KernelCase c;
  const size_t universe = 160;
  c.ids.resize(universe);
  for (size_t i = 0; i < c.ids.size(); ++i) {
    c.ids[i] = static_cast<SessionId>(i);
  }
  // Shuffle so adjacent lanes hit scattered slots.
  for (size_t i = c.ids.size(); i > 1; --i) {
    std::swap(c.ids[i - 1], c.ids[rng.Below(i)]);
  }
  c.times.resize(c.ids.size());
  for (auto& t : c.times) t = 100 + rng.Below(50);

  c.session_slots.resize(universe);
  c.score_slots.resize(universe);
  c.position_slots.resize(universe);
  c.idf.resize(universe);
  for (size_t i = 0; i < universe; ++i) {
    const bool live = rng.Bernoulli(0.5);
    c.session_slots[i] =
        simd::SessionSlot{live ? kEpoch : kEpoch - 1,
                          0.25f * static_cast<float>(rng.Below(8)),
                          100 + rng.Below(50)};
    c.score_slots[i] = simd::ItemScoreSlot{
        rng.Bernoulli(0.5) ? kEpoch : 0u,
        0.25f * static_cast<float>(rng.Below(8))};
    c.position_slots[i] = simd::ItemPositionSlot{
        rng.Bernoulli(0.5) ? kEpoch : 0u,
        static_cast<uint32_t>(1 + rng.Below(10))};
    c.idf[i] = 0.1f * static_cast<float>(1 + rng.Below(30));
  }
  return c;
}

bool SameBytes(const void* a, const void* b, size_t bytes) {
  return std::memcmp(a, b, bytes) == 0;
}

// Every seed × length × offset combination for one kernel body.
template <typename Fn>
void ForEachEdge(Fn&& fn) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (const size_t length : kEdgeLengths) {
      for (size_t offset = 0; offset < kMaxOffset; ++offset) {
        fn(seed, length, offset);
      }
    }
  }
}

TEST(SimdKernelsTest, LevelsAreEngageable) {
  ASSERT_TRUE(simd::SetActiveLevel(Level::kScalar));
  ASSERT_TRUE(simd::SetActiveLevel(simd::BestSupportedLevel()));
}

TEST(SimdKernelsTest, ConsumeMemberRunMatchesScalarAtEdges) {
  ForEachEdge([](uint64_t seed, size_t length, size_t offset) {
    const KernelCase base = MakeCase(seed);
    // Arrange a member prefix of every possible length within the run by
    // stamping the first `prefix` ids live and the next one dead.
    for (size_t prefix : {size_t{0}, size_t{1}, length / 2, length}) {
      if (prefix > length) continue;
      KernelCase c = base;
      for (size_t i = 0; i < length; ++i) {
        c.session_slots[c.ids[offset + i]].stamp =
            i < prefix ? kEpoch : kEpoch - 1;
      }
      auto scalar_slots = c.session_slots;
      auto simd_slots = c.session_slots;
      size_t scalar_n, simd_n;
      {
        simd::ScopedLevel level(Level::kScalar);
        scalar_n = simd::ConsumeMemberRun(c.ids.data() + offset, length,
                                          0.375f, scalar_slots.data(), kEpoch);
      }
      {
        simd::ScopedLevel level(simd::BestSupportedLevel());
        simd_n = simd::ConsumeMemberRun(c.ids.data() + offset, length, 0.375f,
                                        simd_slots.data(), kEpoch);
      }
      ASSERT_EQ(scalar_n, simd_n)
          << "seed=" << seed << " len=" << length << " off=" << offset
          << " prefix=" << prefix;
      ASSERT_TRUE(SameBytes(scalar_slots.data(), simd_slots.data(),
                            scalar_slots.size() * sizeof(simd::SessionSlot)));
    }
  });
}

TEST(SimdKernelsTest, FillRunMatchesScalarAtEdges) {
  ForEachEdge([](uint64_t seed, size_t length, size_t offset) {
    if (length > simd::kBlockLanes) return;  // contract: one block max
    const KernelCase c = MakeCase(seed);
    auto scalar_slots = c.session_slots;
    auto simd_slots = c.session_slots;
    std::vector<SessionId> scalar_touched, simd_touched;
    std::vector<simd::RecencyKey> scalar_keys, simd_keys;
    size_t scalar_n, simd_n;
    {
      simd::ScopedLevel level(Level::kScalar);
      scalar_n = simd::FillRun(c.ids.data() + offset, c.times.data() + offset,
                               length, 0.5f, kEpoch, scalar_slots.data(),
                               &scalar_touched, &scalar_keys);
    }
    {
      simd::ScopedLevel level(simd::BestSupportedLevel());
      simd_n = simd::FillRun(c.ids.data() + offset, c.times.data() + offset,
                             length, 0.5f, kEpoch, simd_slots.data(),
                             &simd_touched, &simd_keys);
    }
    ASSERT_EQ(scalar_n, simd_n)
        << "seed=" << seed << " len=" << length << " off=" << offset;
    ASSERT_EQ(scalar_touched, simd_touched);
    ASSERT_EQ(scalar_keys.size(), simd_keys.size());
    for (size_t i = 0; i < scalar_keys.size(); ++i) {
      ASSERT_TRUE(scalar_keys[i] == simd_keys[i]) << "key " << i;
    }
    ASSERT_TRUE(SameBytes(scalar_slots.data(), simd_slots.data(),
                          scalar_slots.size() * sizeof(simd::SessionSlot)));
  });
}

TEST(SimdKernelsTest, MaxSharedPositionMatchesScalarAtEdges) {
  ForEachEdge([](uint64_t seed, size_t length, size_t offset) {
    const KernelCase c = MakeCase(seed);
    uint32_t scalar_r, simd_r;
    {
      simd::ScopedLevel level(Level::kScalar);
      scalar_r = simd::MaxSharedPosition(c.ids.data() + offset, length,
                                         c.position_slots.data(), kEpoch);
    }
    {
      simd::ScopedLevel level(simd::BestSupportedLevel());
      simd_r = simd::MaxSharedPosition(c.ids.data() + offset, length,
                                       c.position_slots.data(), kEpoch);
    }
    ASSERT_EQ(scalar_r, simd_r)
        << "seed=" << seed << " len=" << length << " off=" << offset;
  });
}

TEST(SimdKernelsTest, AccumulateItemScoresMatchesScalarAtEdges) {
  for (const IdfWeighting mode :
       {IdfWeighting::kNone, IdfWeighting::kLog, IdfWeighting::kOnePlusLog}) {
    ForEachEdge([mode](uint64_t seed, size_t length, size_t offset) {
      const KernelCase c = MakeCase(seed);
      auto scalar_slots = c.score_slots;
      auto simd_slots = c.score_slots;
      std::vector<ItemId> scalar_touched, simd_touched;
      {
        simd::ScopedLevel level(Level::kScalar);
        simd::AccumulateItemScores(c.ids.data() + offset, length, 0.625f,
                                   mode, c.idf.data(), kEpoch,
                                   scalar_slots.data(), &scalar_touched);
      }
      {
        simd::ScopedLevel level(simd::BestSupportedLevel());
        simd::AccumulateItemScores(c.ids.data() + offset, length, 0.625f,
                                   mode, c.idf.data(), kEpoch,
                                   simd_slots.data(), &simd_touched);
      }
      ASSERT_EQ(scalar_touched, simd_touched)
          << "seed=" << seed << " len=" << length << " off=" << offset;
      ASSERT_TRUE(SameBytes(scalar_slots.data(), simd_slots.data(),
                            scalar_slots.size() *
                                sizeof(simd::ItemScoreSlot)));
    });
  }
}

TEST(SimdKernelsTest, BeatsNeighborMaskMatchesScalarAtEdges) {
  ForEachEdge([](uint64_t seed, size_t length, size_t offset) {
    if (length > simd::kBlockLanes) return;
    const KernelCase c = MakeCase(seed);
    // Thresholds drawn from the same quantized score/time universe so
    // equality branches actually fire.
    Rng rng(seed * 31 + 5);
    for (int t = 0; t < 8; ++t) {
      const float weakest_score = 0.25f * static_cast<float>(rng.Below(8));
      const Timestamp weakest_time = 100 + rng.Below(50);
      const SessionId weakest_session = static_cast<SessionId>(rng.Below(128));
      uint32_t scalar_m, simd_m;
      {
        simd::ScopedLevel level(Level::kScalar);
        scalar_m = simd::BeatsNeighborMask(
            c.ids.data() + offset, length, c.session_slots.data(), kEpoch,
            weakest_score, weakest_time, weakest_session);
      }
      {
        simd::ScopedLevel level(simd::BestSupportedLevel());
        simd_m = simd::BeatsNeighborMask(
            c.ids.data() + offset, length, c.session_slots.data(), kEpoch,
            weakest_score, weakest_time, weakest_session);
      }
      ASSERT_EQ(scalar_m, simd_m)
          << "seed=" << seed << " len=" << length << " off=" << offset
          << " score=" << weakest_score << " time=" << weakest_time
          << " session=" << weakest_session;
    }
  });
}

TEST(SimdKernelsTest, BeatsItemMaskMatchesScalarAtEdges) {
  ForEachEdge([](uint64_t seed, size_t length, size_t offset) {
    if (length > simd::kBlockLanes) return;
    const KernelCase c = MakeCase(seed);
    Rng rng(seed * 17 + 3);
    for (int t = 0; t < 8; ++t) {
      const float weakest_score = 0.25f * static_cast<float>(rng.Below(8));
      const ItemId weakest_item = static_cast<ItemId>(rng.Below(128));
      uint32_t scalar_m, simd_m;
      {
        simd::ScopedLevel level(Level::kScalar);
        scalar_m = simd::BeatsItemMask(c.ids.data() + offset, length,
                                       c.score_slots.data(), weakest_score,
                                       weakest_item);
      }
      {
        simd::ScopedLevel level(simd::BestSupportedLevel());
        simd_m = simd::BeatsItemMask(c.ids.data() + offset, length,
                                     c.score_slots.data(), weakest_score,
                                     weakest_item);
      }
      ASSERT_EQ(scalar_m, simd_m)
          << "seed=" << seed << " len=" << length << " off=" << offset;
    }
  });
}

}  // namespace
}  // namespace serenade
