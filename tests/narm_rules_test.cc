#include <gtest/gtest.h>

#include "baselines/narm.h"
#include "baselines/rules.h"
#include "data/synthetic.h"

namespace serenade {
namespace {

// --- NARM -------------------------------------------------------------------

Dataset DeterministicPairs() {
  // Item 2i is always followed by 2i+1 (two interleaved transition types
  // so in-batch softmax sees negatives).
  std::vector<Click> clicks;
  SessionId session = 0;
  for (int repeat = 0; repeat < 120; ++repeat) {
    for (ItemId pair = 0; pair < 6; ++pair) {
      clicks.push_back({session, 2 * pair, 1000u + session * 10u});
      clicks.push_back({session, 2 * pair + 1, 1000u + session * 10u + 5u});
      ++session;
    }
  }
  return Dataset::FromClicks(clicks);
}

TEST(NarmTest, LossDecreasesAndLearnsDeterministicTransitions) {
  Dataset train = DeterministicPairs();
  NarmConfig config;
  config.embedding_dim = 16;
  config.hidden_dim = 16;
  config.epochs = 1;
  config.seed = 5;

  Narm one_epoch(12, config);
  const float loss_after_one = one_epoch.Train(train);

  config.epochs = 8;
  Narm many_epochs(12, config);
  const float loss_after_many = many_epochs.Train(train);
  EXPECT_LT(loss_after_many, loss_after_one);

  size_t correct = 0;
  for (ItemId pair = 0; pair < 6; ++pair) {
    const auto recs = many_epochs.RecommendNext({2 * pair}, 1);
    ASSERT_FALSE(recs.empty());
    if (recs[0].item == 2 * pair + 1) ++correct;
  }
  EXPECT_GE(correct, 5u);
}

TEST(NarmTest, DeterministicForSeed) {
  Dataset train = DeterministicPairs();
  NarmConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  config.epochs = 2;
  Narm a(12, config), b(12, config);
  a.Train(train);
  b.Train(train);
  const auto ra = a.RecommendNext({0, 1, 2}, 5);
  const auto rb = b.RecommendNext({0, 1, 2}, 5);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].item, rb[i].item);
    EXPECT_FLOAT_EQ(ra[i].score, rb[i].score);
  }
}

TEST(NarmTest, HandlesUnknownItemsAndEmptySession) {
  NarmConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  Narm model(10, config);
  EXPECT_TRUE(model.RecommendNext({}, 5).empty());
  EXPECT_TRUE(model.RecommendNext({999}, 5).empty());
  EXPECT_LE(model.RecommendNext({999, 2}, 5).size(), 5u);
}

// --- AR / SR ------------------------------------------------------------------

Dataset RuleToyData() {
  // Sessions: [1,2,3], [1,3], [2,1].
  std::vector<Click> clicks = {
      {1, 1, 10}, {1, 2, 20}, {1, 3, 30},
      {2, 1, 40}, {2, 3, 50},
      {3, 2, 60}, {3, 1, 70},
  };
  return Dataset::FromClicks(clicks);
}

TEST(AssociationRulesTest, CountsUnorderedCoOccurrence) {
  AssociationRules model(RuleToyData(), RulesConfig{});
  // Item 1 co-occurs with 2 (sessions 1 and 3) and 3 (sessions 1 and 2).
  const auto& rules = model.RulesFor(1);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_FLOAT_EQ(rules[0].score, 2.0f);
  EXPECT_FLOAT_EQ(rules[1].score, 2.0f);
}

TEST(AssociationRulesTest, SymmetricWeights) {
  AssociationRules model(RuleToyData(), RulesConfig{});
  auto weight_of = [&](ItemId a, ItemId b) -> float {
    for (const ScoredItem& rule : model.RulesFor(a)) {
      if (rule.item == b) return rule.score;
    }
    return -1.0f;
  };
  EXPECT_FLOAT_EQ(weight_of(1, 2), weight_of(2, 1));
  EXPECT_FLOAT_EQ(weight_of(1, 3), weight_of(3, 1));
}

TEST(SequentialRulesTest, ForwardOnlyAndDiscounted) {
  SequentialRules model(RuleToyData(), RulesConfig{});
  // 1 -> 2 occurs once at distance 1 (weight 1); 1 -> 3 at distance 2
  // (weight 0.5) plus distance 1 in session 2 (weight 1) = 1.5.
  const auto& rules = model.RulesFor(1);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].item, 3u);
  EXPECT_FLOAT_EQ(rules[0].score, 1.5f);
  EXPECT_EQ(rules[1].item, 2u);
  EXPECT_FLOAT_EQ(rules[1].score, 1.0f);

  // 3 is never followed by anything.
  EXPECT_TRUE(model.RulesFor(3).empty());
}

TEST(SequentialRulesTest, MaxDistanceRespected) {
  std::vector<Click> clicks;
  for (ItemId i = 0; i < 15; ++i) clicks.push_back({1, i, 10u + i});
  clicks.push_back({2, 0, 100});
  clicks.push_back({2, 1, 110});
  RulesConfig config;
  config.max_distance = 3;
  SequentialRules model(Dataset::FromClicks(clicks), config);
  for (const ScoredItem& rule : model.RulesFor(0)) {
    EXPECT_LE(rule.item, 3u);  // nothing farther than 3 steps ahead
  }
}

TEST(RulesTest, RecommendUsesLastItemOnly) {
  SequentialRules model(RuleToyData(), RulesConfig{});
  const auto from_last = model.RecommendNext({3, 1}, 5);
  const auto direct = model.RecommendNext({1}, 5);
  ASSERT_EQ(from_last.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(from_last[i].item, direct[i].item);
  }
}

TEST(RulesTest, EmptyAndUnknown) {
  AssociationRules ar(RuleToyData(), RulesConfig{});
  SequentialRules sr(RuleToyData(), RulesConfig{});
  EXPECT_TRUE(ar.RecommendNext({}, 5).empty());
  EXPECT_TRUE(sr.RecommendNext({}, 5).empty());
  EXPECT_TRUE(ar.RecommendNext({12345}, 5).empty());
  EXPECT_TRUE(sr.RecommendNext({12345}, 5).empty());
}

TEST(RulesTest, RulesPerItemCapRespected) {
  SyntheticConfig config;
  config.seed = 55;
  config.num_items = 200;
  config.num_sessions = 2000;
  config.num_days = 3;
  Dataset dataset = GenerateDataset(config);
  RulesConfig rules_config;
  rules_config.rules_per_item = 5;
  AssociationRules ar(dataset, rules_config);
  SequentialRules sr(dataset, rules_config);
  for (ItemId item = 0; item < 200; ++item) {
    EXPECT_LE(ar.RulesFor(item).size(), 5u);
    EXPECT_LE(sr.RulesFor(item).size(), 5u);
  }
}

}  // namespace
}  // namespace serenade
