#include <atomic>
#include <filesystem>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "serving/business_rules.h"
#include "serving/json.h"
#include "serving/router.h"
#include "serving/server.h"
#include "serving/service.h"
#include "data/synthetic.h"

namespace serenade {
namespace {

// --- business rules ---------------------------------------------------------

ItemCatalog SmallCatalog() {
  ItemCatalog catalog;
  catalog.available = {true, false, true, true, true};
  catalog.adult = {false, false, true, false, false};
  return catalog;
}

std::vector<ScoredItem> Candidates() {
  return {{0, 5.0f}, {1, 4.0f}, {2, 3.0f}, {3, 2.0f}, {4, 1.0f}, {99, 0.5f}};
}

TEST(BusinessRulesTest, FiltersUnavailableAndAdult) {
  const auto filtered =
      ApplyBusinessRules(Candidates(), SmallCatalog(), BusinessRulesConfig{});
  std::set<ItemId> items;
  for (const ScoredItem& item : filtered) items.insert(item.item);
  EXPECT_EQ(items, (std::set<ItemId>{0, 3, 4}));
}

TEST(BusinessRulesTest, OutOfCatalogDropped) {
  const auto filtered =
      ApplyBusinessRules(Candidates(), SmallCatalog(), BusinessRulesConfig{});
  for (const ScoredItem& item : filtered) EXPECT_LT(item.item, 5u);
}

TEST(BusinessRulesTest, RespectsMaxItemsAndOrder) {
  BusinessRulesConfig config;
  config.max_items = 2;
  const auto filtered =
      ApplyBusinessRules(Candidates(), SmallCatalog(), config);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].item, 0u);
  EXPECT_EQ(filtered[1].item, 3u);
}

TEST(BusinessRulesTest, FiltersCanBeDisabled) {
  BusinessRulesConfig config;
  config.filter_unavailable = false;
  config.filter_adult = false;
  const auto filtered =
      ApplyBusinessRules(Candidates(), SmallCatalog(), config);
  ASSERT_EQ(filtered.size(), 5u);  // only the out-of-catalog item dropped
}

// --- session codec ----------------------------------------------------------

TEST(SessionCodecTest, RoundTrip) {
  const EvolvingSession session = {1, 22, 333, 4444};
  EXPECT_EQ(DecodeSession(EncodeSession(session)), session);
  EXPECT_EQ(EncodeSession({}), "");
  EXPECT_TRUE(DecodeSession("").empty());
}

TEST(SessionCodecTest, MalformedTokensSkipped) {
  EXPECT_EQ(DecodeSession("1,x,3"), (EvolvingSession{1, 3}));
  EXPECT_EQ(DecodeSession(",,5"), (EvolvingSession{5}));
}

TEST(SessionCodecTest, EmptyAndSeparatorOnlyInputs) {
  EXPECT_TRUE(DecodeSession("").empty());
  EXPECT_TRUE(DecodeSession(",").empty());
  EXPECT_TRUE(DecodeSession(",,,").empty());
}

TEST(SessionCodecTest, StrayCommasAroundValidTokens) {
  EXPECT_EQ(DecodeSession("7,"), (EvolvingSession{7}));    // trailing
  EXPECT_EQ(DecodeSession(",7"), (EvolvingSession{7}));    // leading
  EXPECT_EQ(DecodeSession("7,,8"), (EvolvingSession{7, 8}));  // double
}

TEST(SessionCodecTest, OverflowTokenDropped) {
  // 99999999999 exceeds uint32_t; it must be skipped, not wrapped, so a
  // corrupt store entry cannot alias a real item id.
  EXPECT_TRUE(DecodeSession("99999999999").empty());
  EXPECT_EQ(DecodeSession("1,99999999999,2"), (EvolvingSession{1, 2}));
  EXPECT_EQ(DecodeSession("4294967295"),
            (EvolvingSession{4294967295u}));  // uint32_t max still fits
}

TEST(SessionCodecTest, MaxLengthStoredSessionRoundTrips) {
  EvolvingSession session(ServiceConfig{}.max_stored_session_length);
  for (size_t i = 0; i < session.size(); ++i) {
    session[i] = static_cast<ItemId>(i * 2654435761u);  // spread digits
  }
  EXPECT_EQ(DecodeSession(EncodeSession(session)), session);
}

// --- router -----------------------------------------------------------------

TEST(RouterTest, StableAssignment) {
  StickySessionRouter router(4);
  for (const std::string key : {"user-a", "user-b", "x"}) {
    const size_t first = router.ServerFor(key);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(router.ServerFor(key), first);
    EXPECT_LT(first, 4u);
  }
}

TEST(RouterTest, ReasonablyBalanced) {
  StickySessionRouter router(4);
  std::vector<size_t> counts(4, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[router.ServerFor("session-" + std::to_string(i))];
  }
  for (size_t count : counts) {
    EXPECT_GT(count, 9000u);
    EXPECT_LT(count, 11000u);
  }
}

// --- service ----------------------------------------------------------------

class ServiceTest : public testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig data_config;
    data_config.seed = 99;
    data_config.num_items = 300;
    data_config.num_sessions = 3000;
    data_config.num_days = 5;
    train_ = GenerateDataset(data_config);
    index_ = std::make_shared<SessionIndex>(SessionIndex::Build(train_, 500));
    catalog_ = GenerateCatalog(train_.num_items(), 5);

    ServiceConfig config;
    config.knn.m = 500;
    config.knn.k = 100;
    auto service = SerenadeService::Create(index_, catalog_, config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(service).value();
  }

  Dataset train_;
  std::shared_ptr<SessionIndex> index_;
  ItemCatalog catalog_;
  std::unique_ptr<SerenadeService> service_;
};

TEST_F(ServiceTest, UpdateAccumulatesSessionState) {
  for (ItemId item : {5u, 6u, 7u}) {
    auto result = service_->HandleUpdateAndRecommend(
        RecommendRequest{"visitor-1", item, true});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  auto session = service_->GetSession("visitor-1");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(*session, (EvolvingSession{5, 6, 7}));
}

TEST_F(ServiceTest, RecommendationsRespectBusinessRules) {
  auto result = service_->HandleUpdateAndRecommend(
      RecommendRequest{"visitor-2", 1, true});
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->size(), 21u);
  for (const ScoredItem& item : *result) {
    ASSERT_LT(item.item, catalog_.num_items());
    EXPECT_TRUE(catalog_.available[item.item]);
    EXPECT_FALSE(catalog_.adult[item.item]);
  }
}

TEST_F(ServiceTest, DepersonalisedUsesOnlyCurrentItem) {
  // Build up history, then issue a no-consent request for a fresh item;
  // the result must equal a fresh session seeing only that item.
  for (ItemId item : {10u, 11u, 12u}) {
    ASSERT_TRUE(service_
                    ->HandleUpdateAndRecommend(
                        RecommendRequest{"consenting", item, true})
                    .ok());
  }
  auto depersonalised = service_->HandleUpdateAndRecommend(
      RecommendRequest{"consenting", 42, false});
  auto fresh = service_->HandleUpdateAndRecommend(
      RecommendRequest{"brand-new-visitor", 42, true});
  ASSERT_TRUE(depersonalised.ok());
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(depersonalised->size(), fresh->size());
  for (size_t i = 0; i < fresh->size(); ++i) {
    EXPECT_EQ((*depersonalised)[i].item, (*fresh)[i].item);
  }
}

TEST_F(ServiceTest, InvalidRequestsRejected) {
  EXPECT_FALSE(
      service_->HandleUpdateAndRecommend(RecommendRequest{"", 1, true}).ok());
  EXPECT_FALSE(service_
                   ->HandleUpdateAndRecommend(
                       RecommendRequest{"x", kInvalidItem, true})
                   .ok());
}

TEST_F(ServiceTest, RejectsMLargerThanIndex) {
  ServiceConfig config;
  config.knn.m = 10000;  // index built with 500
  config.knn.k = 100;
  auto service = SerenadeService::Create(index_, catalog_, config);
  EXPECT_FALSE(service.ok());
}

TEST_F(ServiceTest, StoredSessionLengthCapped) {
  ServiceConfig config;
  config.knn.m = 500;
  config.knn.k = 100;
  config.max_stored_session_length = 5;
  auto service = SerenadeService::Create(index_, catalog_, config);
  ASSERT_TRUE(service.ok());
  for (ItemId item = 0; item < 20; ++item) {
    ASSERT_TRUE((*service)
                    ->HandleUpdateAndRecommend(
                        RecommendRequest{"chatty", item, true})
                    .ok());
  }
  auto session = (*service)->GetSession("chatty");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(*session, (EvolvingSession{15, 16, 17, 18, 19}));
}

TEST_F(ServiceTest, SessionsSurviveServiceRestartWithWal) {
  // The paper deliberately accepts session loss on pod failure; the store
  // nevertheless supports WAL durability, which this test exercises
  // through the service facade (restart -> evolving session intact).
  const std::string wal_path = testing::TempDir() + "/service_sessions.wal";
  std::filesystem::remove(wal_path);

  ServiceConfig config;
  config.knn.m = 500;
  config.knn.k = 100;
  config.store.wal_path = wal_path;
  {
    auto service = SerenadeService::Create(index_, catalog_, config);
    ASSERT_TRUE(service.ok());
    for (ItemId item : {8u, 9u, 10u}) {
      ASSERT_TRUE((*service)
                      ->HandleUpdateAndRecommend(
                          RecommendRequest{"durable", item, true})
                      .ok());
    }
  }  // service (and store) destroyed: flushes the WAL

  auto restarted = SerenadeService::Create(index_, catalog_, config);
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  auto session = (*restarted)->GetSession("durable");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(*session, (EvolvingSession{8, 9, 10}));

  // The restored session keeps evolving seamlessly.
  ASSERT_TRUE((*restarted)
                  ->HandleUpdateAndRecommend(
                      RecommendRequest{"durable", 11, true})
                  .ok());
  EXPECT_EQ(*(*restarted)->GetSession("durable"),
            (EvolvingSession{8, 9, 10, 11}));
  std::filesystem::remove(wal_path);
}

// --- end-to-end over HTTP ----------------------------------------------------

TEST_F(ServiceTest, EndToEndOverHttp) {
  ServiceConfig config;
  config.knn.m = 500;
  config.knn.k = 100;
  auto service = SerenadeService::Create(index_, catalog_, config);
  ASSERT_TRUE(service.ok());
  SerenadeServer server(std::move(service).value(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  // Health check.
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);

  // Three clicks in one session; responses must be valid JSON with <= 21
  // items and matching scores arrays.
  for (ItemId item : {3u, 4u, 5u}) {
    auto response = client.Get("/recommend?session_id=web-1&item_id=" +
                               std::to_string(item));
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200) << response->body;
    auto doc = ParseJson(response->body);
    ASSERT_TRUE(doc.ok()) << response->body;
    const JsonValue* items = doc->Find("items");
    const JsonValue* scores = doc->Find("scores");
    ASSERT_NE(items, nullptr);
    ASSERT_NE(scores, nullptr);
    EXPECT_LE(items->AsArray().size(), 21u);
    EXPECT_EQ(items->AsArray().size(), scores->AsArray().size());
  }

  // The server kept session state across requests.
  EXPECT_EQ(server.service().GetSession("web-1")->size(), 3u);

  // Bad requests.
  EXPECT_EQ(client.Get("/recommend")->status, 400);
  EXPECT_EQ(client.Get("/recommend?session_id=x&item_id=abc")->status, 400);
  EXPECT_EQ(client.Get("/nope")->status, 404);

  // Stats endpoint reports traffic.
  auto stats = client.Get("/stats");
  ASSERT_TRUE(stats.ok());
  auto stats_doc = ParseJson(stats->body);
  ASSERT_TRUE(stats_doc.ok());
  EXPECT_GE(stats_doc->Find("requests_served")->AsInt(), 7);

  server.Stop();
}

TEST_F(ServiceTest, MetricsEndpointExposesPrometheusFormat) {
  ServiceConfig config;
  config.knn.m = 500;
  config.knn.k = 100;
  auto service = SerenadeService::Create(index_, catalog_, config);
  ASSERT_TRUE(service.ok());
  SerenadeServer server(std::move(service).value(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Get("/recommend?session_id=m&item_id=3").ok());
  }
  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->content_type.find("text/plain"), std::string::npos);
  // Prometheus exposition basics: TYPE lines, counters and the latency
  // summary with quantile labels.
  EXPECT_NE(metrics->body.find("# TYPE serenade_requests_total counter"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("serenade_store_writes_total 5"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("serenade_live_sessions 1"),
            std::string::npos);
  EXPECT_NE(metrics->body.find(
                "serenade_recommend_latency_microseconds{quantile=\"0.9\"}"),
            std::string::npos);
  EXPECT_NE(metrics->body.find(
                "serenade_recommend_latency_microseconds_count 5"),
            std::string::npos);
  // Per-stage latency attribution: every pod stage that ran surfaces as
  // a labeled member of the stage-duration family.
  EXPECT_NE(metrics->body.find("# TYPE serenade_stage_duration_microseconds "
                               "summary"),
            std::string::npos);
  for (const char* stage :
       {"parse", "store_put", "snapshot_pin", "knn_retrieve", "rank",
        "serialize"}) {
    EXPECT_NE(
        metrics->body.find("serenade_stage_duration_microseconds_count{stage"
                           "=\"" +
                           std::string(stage) + "\"} 5"),
        std::string::npos)
        << "missing stage " << stage << " in:\n"
        << metrics->body;
  }
  server.Stop();
}

TEST_F(ServiceTest, RecommendEchoesTraceId) {
  ServiceConfig config;
  config.knn.m = 500;
  config.knn.k = 100;
  auto service = SerenadeService::Create(index_, catalog_, config);
  ASSERT_TRUE(service.ok());
  SerenadeServer server(std::move(service).value(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());

  // No inbound id: the pod mints one and echoes it.
  auto minted = client.Get("/recommend?session_id=t&item_id=3");
  ASSERT_TRUE(minted.ok());
  EXPECT_TRUE(IsValidTraceId(minted->Header("X-Serenade-Trace-Id")))
      << "'" << minted->Header("X-Serenade-Trace-Id") << "'";

  // Inbound id (as stamped by the gateway): adopted verbatim.
  auto adopted = client.Get("/recommend?session_id=t&item_id=4",
                            {{"X-Serenade-Trace-Id", "abad1dea00000001"}});
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ(adopted->Header("X-Serenade-Trace-Id"), "abad1dea00000001");
  server.Stop();
}

TEST_F(ServiceTest, ConsentFlagOverHttp) {
  ServiceConfig config;
  config.knn.m = 500;
  config.knn.k = 100;
  auto service = SerenadeService::Create(index_, catalog_, config);
  ASSERT_TRUE(service.ok());
  SerenadeServer server(std::move(service).value(), ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  auto response =
      client.Get("/recommend?session_id=p&item_id=7&consent=false");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  server.Stop();
}

// --- versioned /v1 API -------------------------------------------------------

class V1ApiTest : public ServiceTest {
 protected:
  void StartServer(ServerConfig server_config = {}) {
    ServiceConfig config;
    config.knn.m = 500;
    config.knn.k = 100;
    auto service = SerenadeService::Create(index_, catalog_, config);
    ASSERT_TRUE(service.ok());
    server_ = std::make_unique<SerenadeServer>(std::move(service).value(),
                                               server_config);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect(server_->port()).ok());
  }
  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<SerenadeServer> server_;
  HttpClient client_;
};

TEST_F(V1ApiTest, LegacyAliasIsByteIdenticalPlusDeprecationHeader) {
  StartServer();
  // Two sessions with identical histories: the /v1 and legacy paths must
  // produce byte-identical success bodies, differing only in the
  // Deprecation response header.
  auto v1 = client_.Get("/v1/recommend?session_id=a&item_id=7");
  auto legacy = client_.Get("/recommend?session_id=b&item_id=7");
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(v1->status, 200);
  EXPECT_EQ(legacy->status, 200);
  EXPECT_EQ(legacy->body, v1->body);
  EXPECT_EQ(legacy->Header("Deprecation"), "true");
  EXPECT_EQ(v1->Header("Deprecation"), "");

  // The same holds for healthz / stats shape and the other aliases.
  EXPECT_EQ(client_.Get("/v1/healthz")->Header("Deprecation"), "");
  EXPECT_EQ(client_.Get("/healthz")->Header("Deprecation"), "true");

  // Deprecated traffic is counted (2 legacy requests so far).
  auto metrics = client_.Get("/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(
      metrics->body.find("serenade_http_deprecated_requests_total 2"),
      std::string::npos)
      << metrics->body;
}

TEST_F(V1ApiTest, PostRecommendMatchesGet) {
  StartServer();
  auto get = client_.Get("/v1/recommend?session_id=g&item_id=9");
  auto post = client_.Post("/v1/recommend",
                           "{\"session_id\":\"p\",\"item_id\":9}");
  ASSERT_TRUE(get.ok());
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 200);
  EXPECT_EQ(post->body, get->body);
}

TEST_F(V1ApiTest, ErrorEnvelopeShapes) {
  StartServer();
  // 400: missing parameter on the GET form.
  auto missing = client_.Get("/v1/recommend?item_id=3");
  EXPECT_EQ(missing->status, 400);
  EXPECT_NE(missing->body.find("\"code\":\"bad_request\""),
            std::string::npos);
  // Every envelope from a routed request carries the echoed trace id.
  auto doc = ParseJson(missing->body);
  ASSERT_TRUE(doc.ok()) << missing->body;
  const JsonValue* error = doc->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("trace_id")->AsString(),
            missing->Header("X-Serenade-Trace-Id"));

  // 400: malformed JSON body.
  auto garbage = client_.Post("/v1/recommend", "{not json");
  EXPECT_EQ(garbage->status, 400);
  EXPECT_NE(garbage->body.find("\"error\""), std::string::npos);

  // 404: unknown route.
  auto unknown = client_.Get("/v2/recommend");
  EXPECT_EQ(unknown->status, 404);
  EXPECT_NE(unknown->body.find("\"code\":\"not_found\""), std::string::npos);

  // 405: wrong method, with Allow.
  auto wrong = client_.Post("/v1/healthz", "{}");
  EXPECT_EQ(wrong->status, 405);
  EXPECT_EQ(wrong->Header("Allow"), "GET");
}

TEST_F(V1ApiTest, BatchEndpointPreservesOrderAndIsolatesFailures) {
  StartServer();
  const std::string body =
      "{\"requests\":["
      "{\"session_id\":\"b1\",\"item_id\":3},"
      "{\"item_id\":4},"  // missing session_id -> per-slot error
      "{\"session_id\":\"b2\",\"item_id\":\"x\"},"  // bad item -> error
      "{\"session_id\":\"b3\",\"item_id\":5}"
      "]}";
  auto response = client_.Post("/v1/recommend:batch", body);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200) << response->body;
  auto doc = ParseJson(response->body);
  ASSERT_TRUE(doc.ok()) << response->body;
  const JsonValue* results = doc->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->AsArray().size(), 4u);

  const auto& slots = results->AsArray();
  EXPECT_NE(slots[0].Find("items"), nullptr);
  ASSERT_NE(slots[1].Find("error"), nullptr);
  EXPECT_EQ(slots[1].Find("error")->Find("code")->AsString(), "bad_request");
  ASSERT_NE(slots[2].Find("error"), nullptr);
  EXPECT_NE(slots[3].Find("items"), nullptr);

  // The good slots updated their sessions; the bad ones created none.
  EXPECT_TRUE(server_->service().GetSession("b1").ok());
  EXPECT_TRUE(server_->service().GetSession("b3").ok());
  EXPECT_FALSE(server_->service().GetSession("b2").ok());
}

TEST_F(V1ApiTest, OversizedBatchGets413) {
  ServerConfig server_config;
  server_config.max_batch_items = 2;
  StartServer(server_config);
  const std::string body =
      "{\"requests\":["
      "{\"session_id\":\"a\",\"item_id\":1},"
      "{\"session_id\":\"b\",\"item_id\":2},"
      "{\"session_id\":\"c\",\"item_id\":3}"
      "]}";
  auto response = client_.Post("/v1/recommend:batch", body);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 413);
  EXPECT_NE(response->body.find("\"code\":\"payload_too_large\""),
            std::string::npos);
}

TEST_F(V1ApiTest, MicroBatchingServerServesConcurrentLoad) {
  ServerConfig server_config;
  server_config.batch.max_batch_size = 8;
  server_config.batch.max_delay_us = 2000;
  server_config.batch.num_workers = 2;
  StartServer(server_config);

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 10;
  std::atomic<size_t> errors{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect(server_->port()).ok()) {
        errors.fetch_add(kPerThread);
        return;
      }
      for (size_t i = 0; i < kPerThread; ++i) {
        auto response =
            client.Get("/v1/recommend?session_id=load-" + std::to_string(t) +
                       "&item_id=" + std::to_string(1 + (i % 50)));
        if (!response.ok() || response->status != 200) errors.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(server_->executor().requests_executed(), kThreads * kPerThread);

  // Batch-path metrics surfaced on /v1/metrics.
  auto metrics = client_.Get("/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  for (const char* family :
       {"serenade_batches_total", "serenade_batch_requests_total",
        "serenade_batch_coalescing_factor_x100",
        "serenade_batch_queue_wait_microseconds"}) {
    EXPECT_NE(metrics->body.find(family), std::string::npos)
        << "missing " << family;
  }
  // queue_wait joined the per-stage latency families.
  EXPECT_NE(metrics->body.find("stage=\"queue_wait\""), std::string::npos);
}

}  // namespace
}  // namespace serenade
