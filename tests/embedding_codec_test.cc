// Embedding artifact codec torture (index/embedding_format.h) — the ANN
// retrieval family's deployable gets the same treatment as the index and
// delta codecs. Pinned invariants:
//   * serialization is deterministic and round-trips losslessly,
//   * any truncation and trailing garbage are rejected as corruption,
//   * bit flips are caught by section CRCs (or decode to the identical
//     artifact when they land in redundant framing bytes — never to a
//     *different* accepted artifact),
//   * structurally invalid vectors (zero dim, count mismatch, non-finite
//     values) never load,
//   * WriteEmbeddingsWithManifest stamps a kind="embedding" sidecar whose
//     CRC matches the artifact bytes,
//   * a failed EmbeddingManager reload (truncated read via the
//     load_embedding_truncate fault site) leaves the published snapshot
//     untouched and counts into reload_failures_total.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/embedding.h"
#include "index/embedding_format.h"
#include "index/embedding_store.h"
#include "index/snapshot.h"
#include "testing/fault_injection.h"

namespace serenade {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

ItemEmbeddings SmallEmbeddings(size_t num_items = 12, size_t dim = 4) {
  ItemEmbeddings embeddings;
  embeddings.num_items = num_items;
  embeddings.dim = dim;
  embeddings.values.resize(num_items * dim);
  for (size_t i = 0; i < num_items; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      embeddings.values[i * dim + d] =
          0.25f * static_cast<float>((i * 7 + d * 3) % 9) - 1.0f;
    }
  }
  NormalizeRows(&embeddings);
  return embeddings;
}

TEST(EmbeddingCodecTest, RoundTripsLosslesslyAndDeterministically) {
  const ItemEmbeddings embeddings = SmallEmbeddings();
  const std::string bytes = SerializeEmbeddings(embeddings);
  EXPECT_EQ(bytes, SerializeEmbeddings(embeddings))
      << "serialization must be stable";

  auto decoded = DeserializeEmbeddings(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_items, embeddings.num_items);
  EXPECT_EQ(decoded->dim, embeddings.dim);
  EXPECT_TRUE(*decoded == embeddings);
  EXPECT_EQ(SerializeEmbeddings(*decoded), bytes);
}

TEST(EmbeddingCodecTest, EveryTruncationIsRejected) {
  const std::string bytes = SerializeEmbeddings(SmallEmbeddings());
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = DeserializeEmbeddings(bytes.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes accepted";
  }
  // Trailing garbage is corruption too, not silently ignored.
  EXPECT_FALSE(DeserializeEmbeddings(bytes + "x").ok());
}

TEST(EmbeddingCodecTest, BitFlipsAreCaughtBySectionCrcs) {
  const std::string clean = SerializeEmbeddings(SmallEmbeddings());
  // Flip one bit in every byte past the magic; each flip must either be
  // rejected or decode back to the identical artifact — never to a
  // *different* accepted one.
  for (size_t pos = 8; pos < clean.size(); ++pos) {
    std::string bytes = clean;
    bytes[pos] ^= 0x01;
    auto decoded = DeserializeEmbeddings(bytes);
    if (decoded.ok()) {
      EXPECT_EQ(SerializeEmbeddings(*decoded), clean)
          << "flip at byte " << pos << " decoded to a different artifact";
    }
  }
}

TEST(EmbeddingCodecTest, WrongMagicAndVersionAreRejected) {
  const std::string clean = SerializeEmbeddings(SmallEmbeddings());
  std::string wrong_magic = clean;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(DeserializeEmbeddings(wrong_magic).ok());
  std::string wrong_version = clean;
  wrong_version[8] = 9;  // u32 version little-endian low byte
  EXPECT_FALSE(DeserializeEmbeddings(wrong_version).ok());
}

TEST(EmbeddingCodecTest, StructurallyInvalidVectorsNeverLoad) {
  // Non-finite payloads carry valid CRCs (the codec frames whatever it
  // is given) — the structural validator must refuse them at load.
  ItemEmbeddings nan_embeddings = SmallEmbeddings();
  nan_embeddings.values[5] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(DeserializeEmbeddings(SerializeEmbeddings(nan_embeddings)).ok());

  ItemEmbeddings inf_embeddings = SmallEmbeddings();
  inf_embeddings.values[0] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(DeserializeEmbeddings(SerializeEmbeddings(inf_embeddings)).ok());

  // The validator itself rejects the structural lies the serializer
  // cannot produce (a hand-rolled artifact could).
  ItemEmbeddings zero_dim;
  zero_dim.num_items = 3;
  zero_dim.dim = 0;
  EXPECT_FALSE(ValidateEmbeddings(zero_dim).ok());

  ItemEmbeddings count_mismatch = SmallEmbeddings();
  count_mismatch.values.pop_back();
  EXPECT_FALSE(ValidateEmbeddings(count_mismatch).ok());
}

TEST(EmbeddingCodecTest, DifferentArtifactsGetDifferentManifestCrcs) {
  // Regression pin: a raw per-section CRC stored right after its payload
  // makes the *whole-file* CRC a constant of the framing (the CRC
  // residue property — linear over GF(2)), so every same-shaped artifact
  // would collide in the manifest's index_crc32 and rebuild-determinism
  // checks would pass vacuously. The codec masks section CRCs to break
  // that; two different artifacts must get different manifest CRCs.
  ItemEmbeddings a = SmallEmbeddings(16, 8);
  ItemEmbeddings b = a;
  b.values[3] += 0.25f;
  NormalizeRows(&b);
  ASSERT_FALSE(a == b);

  IndexManifest stamp;
  auto manifest_a =
      WriteEmbeddingsWithManifest(TempPath("crc-a.emb"), a, stamp);
  auto manifest_b =
      WriteEmbeddingsWithManifest(TempPath("crc-b.emb"), b, stamp);
  ASSERT_TRUE(manifest_a.ok() && manifest_b.ok());
  EXPECT_EQ(manifest_a->index_bytes, manifest_b->index_bytes)
      << "same shape must frame to the same size for this pin to bite";
  EXPECT_NE(manifest_a->index_crc32, manifest_b->index_crc32);
}

TEST(EmbeddingCodecTest, ManifestSidecarStampsEmbeddingProvenance) {
  const ItemEmbeddings embeddings = SmallEmbeddings(20, 8);
  const std::string path = TempPath("codec-manifest.emb");

  IndexManifest stamp;
  stamp.version = 4;
  stamp.build_id = "codec-test";
  stamp.source = "unit";
  stamp.built_unix = 1700000000;
  auto written = WriteEmbeddingsWithManifest(path, embeddings, stamp);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written->kind, "embedding");
  EXPECT_EQ(written->version, 4u);
  EXPECT_EQ(written->num_items, embeddings.num_items);
  EXPECT_EQ(written->embedding_dim, embeddings.dim);

  auto sidecar = ReadManifestFile(ManifestPathFor(path));
  ASSERT_TRUE(sidecar.ok()) << sidecar.status().ToString();
  EXPECT_EQ(sidecar->kind, "embedding");
  EXPECT_EQ(sidecar->index_crc32, written->index_crc32);
  EXPECT_EQ(sidecar->embedding_dim, embeddings.dim);

  auto loaded = ReadEmbeddingsFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == embeddings);
}

TEST(EmbeddingCodecTest, ManagerRejectsArtifactManifestMismatch) {
  const ItemEmbeddings embeddings = SmallEmbeddings();
  const std::string path = TempPath("codec-mismatch.emb");
  IndexManifest stamp;
  stamp.version = 2;
  auto written = WriteEmbeddingsWithManifest(path, embeddings, stamp);
  ASSERT_TRUE(written.ok()) << written.status().ToString();

  // Corrupt the artifact under the sidecar's feet: the CRC check at boot
  // must refuse to publish it.
  {
    std::ofstream out(path, std::ios::binary | std::ios::in);
    out.seekp(16);
    out.put('\x7f');
  }
  EXPECT_FALSE(EmbeddingManager::CreateFromFile(path).ok());
}

TEST(EmbeddingCodecTest, FailedReloadKeepsCurrentSnapshotAndCounts) {
  const ItemEmbeddings embeddings = SmallEmbeddings(24, 8);
  const std::string path = TempPath("codec-reload.emb");
  IndexManifest stamp;
  stamp.version = 1;
  ASSERT_TRUE(WriteEmbeddingsWithManifest(path, embeddings, stamp).ok());

  auto manager = EmbeddingManager::CreateFromFile(path);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  const auto before = (*manager)->Current();
  ASSERT_NE(before, nullptr);

  // Every reload read is truncated to a random prefix: each must fail
  // cleanly (length/CRC checks), leave the published snapshot pinned, and
  // count into reload_failures_total.
  {
    ScopedFaultInjector faults(20260807);
    faults->Arm(FaultSite::kEmbeddingLoadTruncate, 1.0);
    auto pinned = before;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const Status reloaded = (*manager)->ReloadFromFile(path);
      // RandBelow(size + 1) may occasionally keep the full artifact; a
      // full read legitimately succeeds, every shorter prefix must not.
      if (!reloaded.ok()) {
        EXPECT_EQ((*manager)->Current().get(), pinned.get())
            << "failed reload must not disturb the published snapshot";
      } else {
        pinned = (*manager)->Current();
      }
    }
    EXPECT_GT((*manager)->reload_failures_total(), 0u);
  }

  // Disarmed, the same path loads fine and bumps the version.
  const uint64_t version_before = (*manager)->current_version();
  ASSERT_TRUE((*manager)->ReloadFromFile(path).ok());
  EXPECT_GT((*manager)->current_version(), version_before);
  EXPECT_TRUE((*manager)->Current()->embeddings() == embeddings);
}

}  // namespace
}  // namespace serenade
