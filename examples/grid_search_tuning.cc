// Hyperparameter tuning walkthrough: runs the (k, m) grid search the
// paper uses to tune VMIS-kNN per dataset and metric (Section 5.1.2) and
// prints the MRR@20 / Prec@20 heatmaps.
//
//   $ ./grid_search_tuning
#include <cstdio>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/grid_search.h"

using namespace serenade;

int main() {
  SyntheticConfig data_config;
  data_config.seed = 21;
  data_config.num_items = 3000;
  data_config.num_sessions = 20000;
  data_config.num_days = 8;
  Dataset dataset = GenerateDataset(data_config);
  TrainTestSplit split = SplitLastDays(dataset, 1);
  std::printf("train %zu sessions, test %zu sessions\n",
              split.train.num_sessions(), split.test.num_sessions());

  GridSearchOptions options;
  options.k_values = {50, 100, 500, 1000};
  options.m_values = {20, 100, 500, 2500};
  options.max_test_sessions = 800;
  const auto cells = GridSearch(split.train, split.test, options);

  std::printf("\nMRR@20 heatmap (rows k, columns m):\n%s",
              FormatGrid(cells, "mrr").c_str());
  std::printf("\nPrec@20 heatmap (rows k, columns m):\n%s",
              FormatGrid(cells, "precision").c_str());

  const GridCell* best = &cells[0];
  for (const GridCell& cell : cells) {
    if (cell.mrr > best->mrr) best = &cell;
  }
  std::printf("\nbest MRR@20: %.4f at k=%zu, m=%zu\n", best->mrr, best->k,
              best->m);
  return 0;
}
