// Future-work features walkthrough (Section 7 of the paper): running the
// identical VMIS-kNN computation on (a) a compressed in-memory index and
// (b) an incrementally maintained index that absorbs fresh sessions —
// including sessions for items that did not exist at batch-build time.
//
//   $ ./incremental_and_compressed
#include <cstdio>

#include "core/compressed_index.h"
#include "core/vmis_knn.h"
#include "data/synthetic.h"
#include "index/updatable_index.h"

using namespace serenade;

int main() {
  SyntheticConfig data_config;
  data_config.seed = 99;
  data_config.num_items = 6000;
  data_config.num_sessions = 30000;
  data_config.num_days = 14;
  Dataset historical = GenerateDataset(data_config);

  KnnConfig config;
  config.m = 500;
  config.k = 100;

  // --- (a) compressed index: same results, smaller footprint ---
  SessionIndex flat = SessionIndex::Build(historical, config.m);
  CompressedSessionIndex compressed = CompressedSessionIndex::FromIndex(flat);
  std::printf("flat index:       %8.2f MB\n", flat.MemoryBytes() / 1e6);
  std::printf("compressed index: %8.2f MB (%.2fx smaller)\n",
              compressed.MemoryBytes() / 1e6,
              static_cast<double>(flat.MemoryBytes()) /
                  compressed.MemoryBytes());

  VmisKnn flat_model(&flat, config);
  VmisKnnT<CompressedSessionIndex> compressed_model(&compressed, config);
  const EvolvingSession session = {10, 25, 400};
  const auto from_flat = flat_model.RecommendNext(session, 5);
  const auto from_compressed = compressed_model.RecommendNext(session, 5);
  std::printf("\ntop-5 for session {10, 25, 400} (flat vs compressed):\n");
  for (size_t i = 0; i < from_flat.size(); ++i) {
    std::printf("  %u (%.3f)  |  %u (%.3f)%s\n", from_flat[i].item,
                from_flat[i].score, from_compressed[i].item,
                from_compressed[i].score,
                from_flat[i].item == from_compressed[i].item
                    ? ""
                    : "   <-- MISMATCH");
  }

  // --- (b) incremental maintenance: fresh sessions, brand-new items ---
  UpdatableSessionIndex live(SessionIndex::Build(historical, config.m));
  const ItemId new_item = static_cast<ItemId>(historical.num_items() + 7);
  std::printf("\ningesting 50 fresh sessions pairing new item %u with item "
              "10...\n", new_item);
  for (int i = 0; i < 50; ++i) {
    live.Ingest({10, new_item}, historical.max_timestamp() + 60 + i);
  }
  VmisKnnT<UpdatableSessionIndex> live_model(&live, config);
  const auto recs = live_model.RecommendNext({10}, 5);
  std::printf("top-5 after item 10 (no nightly rebuild needed):\n");
  for (const ScoredItem& rec : recs) {
    std::printf("  item %-8u score %.3f%s\n", rec.item, rec.score,
                rec.item == new_item ? "   <-- the brand-new item" : "");
  }
  return 0;
}
