// Offline evaluation walkthrough: chronological train/test split, several
// recommenders (VMIS-kNN, VS-kNN, item-kNN, Markov, popularity), and the
// paper's ranking metrics @20 — a miniature of the Section 5.1.1
// prediction-quality experiment.
//
//   $ ./offline_evaluation
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/item_knn.h"
#include "baselines/popularity.h"
#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "core/vs_knn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

using namespace serenade;

int main() {
  // Clickstream with co-browsing structure; last day held out for testing.
  SyntheticConfig data_config;
  data_config.seed = 7;
  data_config.num_items = 4000;
  data_config.num_sessions = 25000;
  data_config.num_days = 10;
  data_config.cluster_size = 80;
  Dataset dataset = GenerateDataset(data_config);
  TrainTestSplit split = SplitLastDays(dataset, 1);
  std::printf("train: %zu sessions | test: %zu sessions\n",
              split.train.num_sessions(), split.test.num_sessions());

  // Index-backed kNN recommenders.
  KnnConfig knn_config;
  knn_config.m = 500;
  knn_config.k = 100;
  SessionIndex index = SessionIndex::Build(split.train, knn_config.m);
  VmisKnn vmis(&index, knn_config);
  VsKnn vs(split.train, knn_config);

  // Classical baselines.
  PopularityRecommender popularity(split.train);
  MarkovRecommender markov(split.train);
  ItemKnnRecommender item_knn(split.train, ItemKnnConfig{});

  EvalOptions options;
  options.cutoff = 20;
  options.max_sessions = 1500;

  std::printf("\n%-18s %8s %8s %8s %8s %8s\n", "model", "MRR@20", "HR@20",
              "P@20", "R@20", "MAP@20");
  std::vector<Recommender*> models = {&vmis, &vs, &item_knn, &markov,
                                      &popularity};
  for (Recommender* model : models) {
    const EvalResult result =
        EvaluateRecommender(*model, split.test, options);
    std::printf("%-18s %8.4f %8.4f %8.4f %8.4f %8.4f\n",
                model->Name().c_str(), result.metrics.Mrr(),
                result.metrics.HitRate(), result.metrics.Precision(),
                result.metrics.Recall(), result.metrics.Map());
  }
  std::printf(
      "\nExpected ordering (paper, Section 5.1.1): the VS-kNN family ranks "
      "first,\nahead of item-to-item CF and the popularity floor.\n");
  return 0;
}
