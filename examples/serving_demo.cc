// Serving demo: the full Figure 1 pipeline in one process. Builds the
// index offline (parallel builder + binary index file), starts two
// stateful recommendation servers, routes requests with sticky sessions,
// and talks to them over HTTP exactly like the shop frontend would.
//
//   $ ./serving_demo
#include <cstdio>
#include <memory>

#include "data/synthetic.h"
#include "index/index_builder.h"
#include "index/index_format.h"
#include "serving/http.h"
#include "serving/json.h"
#include "serving/router.h"
#include "serving/server.h"

using namespace serenade;

int main() {
  // --- offline component (Figure 1, left): index generation ---
  SyntheticConfig data_config;
  data_config.seed = 11;
  data_config.num_items = 8000;
  data_config.num_sessions = 40000;
  data_config.num_days = 14;
  Dataset historical = GenerateDataset(data_config);

  IndexBuilderOptions builder_options;
  builder_options.max_sessions_per_item = 500;
  SessionIndex built = BuildIndexParallel(historical, builder_options);

  // Persist and reload — the replication path to the serving machines.
  const std::string index_path = "/tmp/serenade_demo.index";
  if (Status status = WriteIndexFile(index_path, built); !status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto loaded = ReadIndexFile(index_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  auto index = std::make_shared<SessionIndex>(std::move(loaded).value());
  std::printf("index replicated from %s (%zu postings)\n", index_path.c_str(),
              index->num_postings());

  // --- online component (Figure 1, right): two stateful serving pods ---
  const ItemCatalog catalog = GenerateCatalog(historical.num_items(), 3);
  ServiceConfig service_config;
  service_config.knn.m = 500;
  service_config.knn.k = 100;

  std::vector<std::unique_ptr<SerenadeServer>> servers;
  std::vector<uint16_t> ports;
  for (int pod = 0; pod < 2; ++pod) {
    auto service = SerenadeService::Create(index, catalog, service_config);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    servers.push_back(std::make_unique<SerenadeServer>(
        std::move(service).value(), ServerConfig{}));
    if (Status status = servers.back()->Start(); !status.ok()) {
      std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
      return 1;
    }
    ports.push_back(servers.back()->port());
    std::printf("serving pod %d listening on 127.0.0.1:%u\n", pod,
                servers.back()->port());
  }

  // --- the shop frontend: sticky-session routed requests ---
  StickySessionRouter router(ports.size());
  for (const std::string visitor : {"alice", "bob"}) {
    const size_t pod = router.ServerFor(visitor);
    HttpClient client;
    if (!client.Connect(ports[pod]).ok()) return 1;
    std::printf("\nvisitor %s -> pod %zu\n", visitor.c_str(), pod);
    for (ItemId item : {100u, 101u, 350u}) {
      auto response = client.Get("/recommend?session_id=" + visitor +
                                 "&item_id=" + std::to_string(item));
      if (!response.ok() || response->status != 200) {
        std::fprintf(stderr, "request failed\n");
        return 1;
      }
      auto doc = ParseJson(response->body);
      const auto& items = doc->Find("items")->AsArray();
      std::printf("  clicked %-6u -> %zu recommendations:", item,
                  items.size());
      for (size_t i = 0; i < std::min<size_t>(items.size(), 5); ++i) {
        std::printf(" %lld", static_cast<long long>(items[i].AsInt()));
      }
      std::printf("%s\n", items.size() > 5 ? " ..." : "");
    }
  }

  for (auto& server : servers) {
    std::printf("pod on port %u served %llu requests\n", server->port(),
                static_cast<unsigned long long>(server->requests_served()));
    server->Stop();
  }
  return 0;
}
