// Quickstart: build a session similarity index from click data and ask
// VMIS-kNN for next-item recommendations — the minimal end-to-end use of
// the library's public API.
//
//   $ ./quickstart
#include <cstdio>

#include "core/session_index.h"
#include "core/vmis_knn.h"
#include "data/synthetic.h"

using namespace serenade;

int main() {
  // 1. Click data. Real deployments read a CSV click log with
  //    ReadClicksCsv(path); here we synthesise a small e-commerce-like
  //    dataset (Zipf popularity, clustered co-browsing).
  SyntheticConfig data_config;
  data_config.seed = 42;
  data_config.num_items = 5000;
  data_config.num_sessions = 20000;
  data_config.num_days = 14;
  Dataset historical = GenerateDataset(data_config);
  std::printf("historical data: %zu sessions, %zu clicks, %zu items\n",
              historical.num_sessions(), historical.num_clicks(),
              historical.num_items());

  // 2. Build the VMIS-kNN index (M, t): for every item, the m most recent
  //    sessions containing it.
  const size_t m = 500;
  SessionIndex index = SessionIndex::Build(historical, m);
  std::printf("index: %zu postings, %.1f MB in memory\n",
              index.num_postings(),
              static_cast<double>(index.MemoryBytes()) / (1024 * 1024));

  // 3. Configure the recommender (hyperparameters per the paper's A/B
  //    test: m=500, k=500; we use k=100 here).
  KnnConfig config;
  config.m = m;
  config.k = 100;
  VmisKnn recommender(&index, config);

  // 4. An evolving session: the user browsed three items; what next?
  const EvolvingSession evolving = {17, 42, 108};
  const auto recommendations = recommender.RecommendNext(evolving, 10);

  std::printf("\nuser browsed items: 17, 42, 108\n");
  std::printf("top-%zu next-item recommendations:\n", recommendations.size());
  for (size_t i = 0; i < recommendations.size(); ++i) {
    std::printf("  %2zu. item %-8u (score %.3f)\n", i + 1,
                recommendations[i].item, recommendations[i].score);
  }
  return 0;
}
